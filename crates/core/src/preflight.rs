//! Campaign preflight: static model verification before any instance
//! starts.
//!
//! A malformed pit, a contradictory configuration, or a bad partition
//! used to surface *mid-campaign* — as a wasted session, a boot-time
//! `ConfigConflict`, or an instance silently burning its whole budget.
//! [`preflight_campaign`] runs the `cmfuzz-analyze` checks over
//! everything a campaign is about to execute and
//! `try_run_campaign` aborts with `CampaignError::Preflight` when any
//! finding is error-severity (opt out via
//! `CampaignOptions::skip_preflight`).
//!
//! The pass is entirely RNG-free — it parses, extracts, and evaluates
//! constraints but never draws from any campaign stream — so enabling it
//! cannot perturb campaign determinism.

use std::collections::{BTreeMap, BTreeSet};

use cmfuzz_analyze::{
    analyze_graph, analyze_models, analyze_partitions, analyze_reachability, analyze_resolved,
    analyze_session_plans, Diagnostic, GraphView, PartitionView, ReachAnalysis, ReachSpace, Report,
    Severity,
};
use cmfuzz_config_model::{extract_model, ConfigValue};
use cmfuzz_coverage::Ticks;
use cmfuzz_fuzzer::pit::{self, PitDefinition};
use cmfuzz_fuzzer::Target;
use cmfuzz_protocols::ProtocolSpec;
use cmfuzz_telemetry::Telemetry;

use crate::campaign::InstanceSetup;
use crate::graph::RelationGraph;
use crate::schedule::Schedule;

/// Statically verifies everything a campaign over `spec` with `setups`
/// is about to execute: the parsed pit, the extracted configuration
/// model against the target's declared startup constraints, each
/// instance's initial configuration (`CM014`), session plans (`CM040`),
/// and the adaptive-entity partitions (`CM03x`).
///
/// Instances with no adaptive entities are intentionally-fixed baselines
/// (Peach/SPFuzz run this way), so they are not flagged as empty
/// partitions; [`analyze_schedule`] applies the stricter rule to
/// scheduler output, which should always assign work.
///
/// Every diagnostic increments a telemetry counter `analyze.<code>`,
/// plus severity totals (`analyze.errors` / `analyze.warnings` /
/// `analyze.lints`), so warnings stay observable even when the campaign
/// proceeds.
#[must_use]
pub fn preflight_campaign(
    spec: &ProtocolSpec,
    pit: &PitDefinition,
    setups: &[InstanceSetup],
    telemetry: &Telemetry,
) -> Report {
    let target = (spec.build)();
    let model = extract_model(&target.config_space());
    let constraints = target.config_constraints();

    let mut report = analyze_models(spec.name, pit, &model, &constraints);
    for (i, setup) in setups.iter().enumerate() {
        report.merge(analyze_resolved(
            spec.name,
            &format!("instance:{i}:initial-config"),
            &setup.initial_config,
            &constraints,
        ));
        report.merge(analyze_session_plans(spec.name, pit, &setup.session_plans));
    }
    let partitions: Vec<PartitionView> = setups
        .iter()
        .enumerate()
        .filter(|(_, setup)| !setup.adaptive_entities.is_empty())
        .map(|(index, setup)| PartitionView {
            index,
            entities: setup
                .adaptive_entities
                .iter()
                .map(|(name, _)| name.clone())
                .collect(),
        })
        .collect();
    report.merge(analyze_partitions(spec.name, &partitions, &model));
    report.merge(analyze_reachability_for(spec, setups).into_report());
    report.sort();
    record(&report, telemetry);
    report
}

/// A campaign's reachability verdicts: one partition-space analysis per
/// instance setup, plus the campaign-level dead set.
///
/// A branch is dead *for the campaign* only when it is proven dead in
/// **every** instance's partition — any single instance able to reach it
/// keeps it in play for the union coverage the campaign reports.
#[derive(Debug, Clone)]
pub struct CampaignReach {
    subject: String,
    branch_count: usize,
    instances: Vec<ReachAnalysis>,
}

impl CampaignReach {
    /// The subject analyzed.
    #[must_use]
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The subject's total branch count.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.branch_count
    }

    /// Per-instance analyses, indexed like the campaign's setups.
    #[must_use]
    pub fn instances(&self) -> &[ReachAnalysis] {
        &self.instances
    }

    /// Branches proven dead in every instance partition (sorted). Empty
    /// when the campaign has no setups — nothing can be claimed.
    #[must_use]
    pub fn dead_branches(&self) -> Vec<u32> {
        let mut iter = self.instances.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut dead: BTreeSet<u32> = first.dead_branches().into_iter().collect();
        for analysis in iter {
            let these: BTreeSet<u32> = analysis.dead_branches().into_iter().collect();
            dead = dead.intersection(&these).copied().collect();
        }
        dead.into_iter().collect()
    }

    /// Upper bound on the branches this campaign can ever cover.
    #[must_use]
    pub fn reachable_branch_count(&self) -> usize {
        self.branch_count - self.dead_branches().len()
    }

    /// Of `covered`, the branches this analysis proved dead — any entry
    /// here is a reachability-soundness violation (a guard or the solver
    /// claimed something false).
    #[must_use]
    pub fn dead_covered(&self, covered: &[u32]) -> Vec<u32> {
        let dead: BTreeSet<u32> = self.dead_branches().into_iter().collect();
        let hits: BTreeSet<u32> = covered
            .iter()
            .copied()
            .filter(|b| dead.contains(b))
            .collect();
        hits.into_iter().collect()
    }

    /// All per-instance diagnostics, merged and sorted.
    #[must_use]
    pub fn into_report(self) -> Report {
        let mut report = Report::new();
        for analysis in self.instances {
            report.merge(analysis.into_report());
        }
        report.sort();
        report
    }
}

/// Proves, per instance setup, which guarded branches the campaign's
/// partitions can ever reach.
///
/// Each instance's space is its `initial_config` plus, for every adaptive
/// entity, the set of values `mutate_instance_config` can ever set (the
/// scheduler's typical values, plus the initial binding — or unbound when
/// the initial configuration leaves the key unset). Like the rest of the
/// preflight the pass is RNG-free.
#[must_use]
pub fn analyze_reachability_for(spec: &ProtocolSpec, setups: &[InstanceSetup]) -> CampaignReach {
    let target = (spec.build)();
    let guards = target.branch_guards();
    let model = extract_model(&target.config_space());
    let constraints = target.config_constraints();
    let branch_count = target.branch_count();
    let instances = setups
        .iter()
        .map(|setup| {
            analyze_reachability(
                spec.name,
                &guards,
                &constraints,
                &model,
                branch_count,
                &partition_space(setup),
            )
        })
        .collect();
    CampaignReach {
        subject: spec.name.to_owned(),
        branch_count,
        instances,
    }
}

/// The reachable configuration space of one instance setup.
fn partition_space(setup: &InstanceSetup) -> ReachSpace {
    let mut domains: BTreeMap<String, Vec<Option<ConfigValue>>> = BTreeMap::new();
    for (name, values) in &setup.adaptive_entities {
        let mut candidates: Vec<Option<ConfigValue>> = Vec::new();
        candidates.push(setup.initial_config.get(name).cloned());
        for value in values {
            let candidate = Some(value.clone());
            if !candidates.contains(&candidate) {
                candidates.push(candidate);
            }
        }
        domains.insert(name.clone(), candidates);
    }
    ReachSpace::Partition {
        base: setup.initial_config.clone(),
        domains,
    }
}

/// Statically verifies a scheduler's output: the relation graph against
/// the schedule's configuration model (`CM02x`) and every instance plan
/// as a partition (`CM03x` — here an empty plan *is* flagged, because a
/// scheduler that assigns an instance nothing wastes its whole budget).
#[must_use]
pub fn analyze_schedule(subject: &str, schedule: &Schedule) -> Report {
    let mut report = analyze_graph(subject, &graph_view(&schedule.graph), &schedule.model);
    let partitions: Vec<PartitionView> = schedule
        .plans
        .iter()
        .map(|plan| PartitionView {
            index: plan.index,
            entities: plan.entities.clone(),
        })
        .collect();
    report.merge(analyze_partitions(subject, &partitions, &schedule.model));
    report.sort();
    report
}

/// One planned fleet campaign as [`analyze_fleet_schedule`] sees it.
#[derive(Debug)]
pub struct FleetEntryView<'a> {
    /// Campaign label, unique within the fleet (also the telemetry
    /// `campaign` label and the checkpoint key).
    pub id: &'a str,
    /// Subject the campaign fuzzes.
    pub spec: &'a ProtocolSpec,
    /// The campaign's total virtual-tick budget.
    pub budget: Ticks,
    /// Instance setups; session plans are checked against the subject's
    /// pit.
    pub setups: &'a [InstanceSetup],
}

/// Statically verifies a fleet schedule before any campaign boots:
/// duplicate campaign ids (`CM050`), zero-budget entries (`CM051`),
/// subjects whose pit does not parse (`CM052`), and session plans
/// referencing data models absent from their subject's pit (`CM040`).
///
/// `bench_fleet` and `run_fleet` run this as their preflight; like
/// [`preflight_campaign`] the pass is RNG-free, so it cannot perturb
/// fleet determinism.
#[must_use]
pub fn analyze_fleet_schedule(entries: &[FleetEntryView<'_>]) -> Report {
    let mut report = Report::new();
    let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (index, entry) in entries.iter().enumerate() {
        let path = format!("fleet:{index}:{}", entry.id);
        if let Some(first) = seen.insert(entry.id, index) {
            report.push(Diagnostic::new(
                "CM050",
                Severity::Error,
                entry.spec.name,
                &path,
                &format!(
                    "duplicate campaign id `{}` (first used by entry {first})",
                    entry.id
                ),
                "give every fleet campaign a unique id so checkpoints and telemetry labels stay attributable",
            ));
        }
        if entry.budget == Ticks::ZERO {
            report.push(Diagnostic::new(
                "CM051",
                Severity::Warn,
                entry.spec.name,
                &path,
                "campaign budget is zero: the scheduler will never lease it a slot",
                "drop the entry or give it a positive budget",
            ));
        }
        match pit::parse(entry.spec.pit_document) {
            Err(error) => report.push(Diagnostic::new(
                "CM052",
                Severity::Error,
                entry.spec.name,
                &path,
                &format!("subject pit does not parse: {error}"),
                "fix the registry pit document before scheduling the campaign",
            )),
            Ok(parsed) => {
                for setup in entry.setups {
                    report.merge(analyze_session_plans(
                        entry.spec.name,
                        &parsed,
                        &setup.session_plans,
                    ));
                }
            }
        }
    }
    report.sort();
    report
}

/// Reduces a [`RelationGraph`] to the name-only view the analyzer
/// consumes (the analyzer must not depend on this crate).
#[must_use]
pub fn graph_view(graph: &RelationGraph) -> GraphView {
    GraphView {
        nodes: graph.node_names().to_vec(),
        edges: graph
            .edges()
            .iter()
            .map(|e| (graph.name_of(e.a).to_owned(), graph.name_of(e.b).to_owned()))
            .collect(),
    }
}

fn record(report: &Report, telemetry: &Telemetry) {
    for diagnostic in report.diagnostics() {
        telemetry
            .counter(&format!("analyze.{}", diagnostic.code()))
            .incr();
    }
    for (severity, name) in [
        (Severity::Error, "analyze.errors"),
        (Severity::Warn, "analyze.warnings"),
        (Severity::Lint, "analyze.lints"),
    ] {
        let count = report.count_of(severity) as u64;
        if count > 0 {
            telemetry.counter(name).add(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{build_schedule, ScheduleOptions};
    use cmfuzz_config_model::{ConfigValue, ResolvedConfig};
    use cmfuzz_coverage::VirtualClock;
    use cmfuzz_fuzzer::pit;
    use cmfuzz_protocols::{all_specs, spec_by_name};

    #[test]
    fn builtin_specs_preflight_clean_of_errors() {
        for spec in all_specs() {
            let parsed = pit::parse(spec.pit_document).expect("registry pit parses");
            let report = preflight_campaign(
                &spec,
                &parsed,
                &vec![InstanceSetup::default(); 2],
                &Telemetry::disabled(),
            );
            assert!(
                !report.has_errors(),
                "{} has preflight errors:\n{}",
                spec.name,
                report.render_text()
            );
        }
    }

    #[test]
    fn conflicting_initial_config_is_cm014() {
        let spec = spec_by_name("mosquitto").expect("subject exists");
        let parsed = pit::parse(spec.pit_document).expect("pit parses");
        let mut conflicting = ResolvedConfig::new();
        conflicting.set("auth-method", ConfigValue::Str("tls".into()));
        conflicting.set("tls_enabled", ConfigValue::Bool(false));
        let setup = InstanceSetup {
            initial_config: conflicting,
            ..InstanceSetup::default()
        };
        let report = preflight_campaign(&spec, &parsed, &[setup], &Telemetry::disabled());
        assert!(report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code() == "CM014" && d.path() == "instance:0:initial-config"));
    }

    #[test]
    fn unknown_adaptive_entity_is_cm032() {
        let spec = spec_by_name("dnsmasq").expect("subject exists");
        let parsed = pit::parse(spec.pit_document).expect("pit parses");
        let setup = InstanceSetup {
            adaptive_entities: vec![("no-such-item".to_owned(), vec![ConfigValue::Bool(true)])],
            ..InstanceSetup::default()
        };
        let report = preflight_campaign(&spec, &parsed, &[setup], &Telemetry::disabled());
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM032"));
    }

    #[test]
    fn bad_session_plan_is_cm040() {
        let spec = spec_by_name("libcoap").expect("subject exists");
        let parsed = pit::parse(spec.pit_document).expect("pit parses");
        let setup = InstanceSetup {
            session_plans: vec![vec!["NoSuchModel".to_owned()]],
            ..InstanceSetup::default()
        };
        let report = preflight_campaign(&spec, &parsed, &[setup], &Telemetry::disabled());
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM040"));
    }

    #[test]
    fn preflight_counts_into_telemetry() {
        let spec = spec_by_name("mosquitto").expect("subject exists");
        let parsed = pit::parse(spec.pit_document).expect("pit parses");
        let mut conflicting = ResolvedConfig::new();
        conflicting.set("port", ConfigValue::Int(0));
        let setup = InstanceSetup {
            initial_config: conflicting,
            ..InstanceSetup::default()
        };
        let telemetry = Telemetry::builder(VirtualClock::new()).build();
        let report = preflight_campaign(&spec, &parsed, &[setup], &telemetry);
        assert!(report.has_errors());
        let snapshot = telemetry.metrics_snapshot();
        assert_eq!(snapshot.counter("analyze.CM014"), Some(1));
        assert!(snapshot.counter("analyze.errors").unwrap_or(0) >= 1);
    }

    #[test]
    fn scheduler_output_analyzes_clean() {
        let spec = spec_by_name("mosquitto").expect("subject exists");
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 2, &ScheduleOptions::default());
        let report = analyze_schedule(spec.name, &schedule);
        assert!(
            !report.has_errors(),
            "schedule errors:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn fleet_schedule_diagnostics_cover_the_cm05x_catalogue() {
        let mqtt = spec_by_name("mosquitto").expect("subject exists");
        let dns = spec_by_name("dnsmasq").expect("subject exists");
        let default_setups = vec![InstanceSetup::default(); 2];
        let bad_plan = vec![InstanceSetup {
            session_plans: vec![vec!["NoSuchModel".to_owned()]],
            ..InstanceSetup::default()
        }];
        let broken = ProtocolSpec {
            pit_document: "<Peach><DataModel></Peach>",
            ..mqtt
        };
        let entries = vec![
            FleetEntryView {
                id: "mqtt/a",
                spec: &mqtt,
                budget: cmfuzz_coverage::Ticks::new(600),
                setups: &default_setups,
            },
            FleetEntryView {
                id: "mqtt/a", // CM050: duplicate id
                spec: &mqtt,
                budget: cmfuzz_coverage::Ticks::new(600),
                setups: &default_setups,
            },
            FleetEntryView {
                id: "dns/idle", // CM051: zero budget
                spec: &dns,
                budget: cmfuzz_coverage::Ticks::ZERO,
                setups: &default_setups,
            },
            FleetEntryView {
                id: "mqtt/broken", // CM052: unparseable pit
                spec: &broken,
                budget: cmfuzz_coverage::Ticks::new(600),
                setups: &default_setups,
            },
            FleetEntryView {
                id: "dns/plan", // CM040: plan references an absent model
                spec: &dns,
                budget: cmfuzz_coverage::Ticks::new(600),
                setups: &bad_plan,
            },
        ];
        let report = analyze_fleet_schedule(&entries);
        assert!(report.has_errors());
        for code in ["CM050", "CM051", "CM052", "CM040"] {
            assert!(
                report.diagnostics().iter().any(|d| d.code() == code),
                "missing {code}:\n{}",
                report.render_text()
            );
        }
    }

    #[test]
    fn clean_fleet_schedule_has_no_diagnostics() {
        let setups = vec![InstanceSetup::default(); 2];
        let specs: Vec<_> = all_specs().to_vec();
        let ids: Vec<String> = specs.iter().map(|s| format!("{}/part-0", s.name)).collect();
        let entries: Vec<FleetEntryView<'_>> = specs
            .iter()
            .zip(&ids)
            .map(|(spec, id)| FleetEntryView {
                id,
                spec,
                budget: cmfuzz_coverage::Ticks::new(600),
                setups: &setups,
            })
            .collect();
        let report = analyze_fleet_schedule(&entries);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    /// The paper-facing reachability claim, over *real* scheduler
    /// partitions: on at least two subjects, some instance's partition
    /// provably cannot open at least one guarded branch, and every dead
    /// verdict carries a machine-checkable refutation chain ending in an
    /// unsatisfiability witness.
    #[test]
    fn schedule_partitions_prove_dead_branches_on_multiple_subjects() {
        use cmfuzz_analyze::ReachStatus;
        let mut subjects_with_dead = 0;
        for name in ["mosquitto", "cyclonedds", "qpid"] {
            let spec = spec_by_name(name).expect("subject exists");
            let mut target = (spec.build)();
            let schedule = build_schedule(&mut target, 2, &ScheduleOptions::default());
            let setups = crate::baseline::cmfuzz_setups(&schedule, 2);
            let reach = analyze_reachability_for(&spec, &setups);
            let dead_total: usize = reach
                .instances()
                .iter()
                .map(|a| a.dead_branches().len())
                .sum();
            if dead_total > 0 {
                subjects_with_dead += 1;
            }
            for analysis in reach.instances() {
                for row in analysis.branches() {
                    if let ReachStatus::Dead { chain } = row.status() {
                        let last = chain.last().expect("chain is never empty");
                        assert!(
                            last.contains("unsatisfiable") || last.contains("none satisfies"),
                            "{name}: `{}` dead verdict lacks a terminal refutation: {chain:?}",
                            row.region()
                        );
                    }
                }
            }
            assert_eq!(
                reach.reachable_branch_count(),
                reach.branch_count() - reach.dead_branches().len()
            );
        }
        assert!(
            subjects_with_dead >= 2,
            "expected partitions with dead branches on >=2 subjects, got {subjects_with_dead}"
        );
    }

    /// Soundness gate at the core level: a real campaign over scheduler
    /// partitions never covers a branch the analyzer called dead for the
    /// campaign (dead in every instance partition).
    #[test]
    fn campaigns_never_cover_campaign_dead_branches() {
        use crate::campaign::{run_campaign, CampaignOptions};
        use cmfuzz_coverage::BranchId;
        let spec = spec_by_name("mosquitto").expect("subject exists");
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 2, &ScheduleOptions::default());
        let setups = crate::baseline::cmfuzz_setups(&schedule, 2);
        let reach = analyze_reachability_for(&spec, &setups);
        let options = CampaignOptions {
            instances: 2,
            budget: cmfuzz_coverage::Ticks::new(600),
            sample_interval: cmfuzz_coverage::Ticks::new(100),
            saturation_window: cmfuzz_coverage::Ticks::new(200),
            seed: 7,
            ..CampaignOptions::default()
        };
        let result = run_campaign(&spec, "cmfuzz", &setups, &options);
        let violations: Vec<u32> = reach
            .dead_branches()
            .into_iter()
            .filter(|&b| result.coverage.is_covered(BranchId::from_index(b)))
            .collect();
        assert!(
            violations.is_empty(),
            "campaign covered statically-dead branches {violations:?}"
        );
    }

    /// Partition spaces out of instance setups: an adaptive entity with no
    /// initial binding keeps `unbound` in its domain; a bound one pins the
    /// initial value alongside the typical values.
    #[test]
    fn reachability_uses_partition_spaces_from_setups() {
        use cmfuzz_analyze::ReachStatus;
        let spec = spec_by_name("mosquitto").expect("subject exists");
        // tls_enabled is adaptive and can reach `true`: start::tls must be
        // reachable with a witness binding it true.
        let adaptive = InstanceSetup {
            adaptive_entities: vec![(
                "tls_enabled".to_owned(),
                vec![ConfigValue::Bool(false), ConfigValue::Bool(true)],
            )],
            ..InstanceSetup::default()
        };
        // A fixed baseline instance can never open it: proven dead.
        let fixed = InstanceSetup::default();
        let reach = analyze_reachability_for(&spec, &[adaptive, fixed]);
        let status_of = |i: usize| {
            reach.instances()[i]
                .branches()
                .iter()
                .find(|row| row.region() == "start::tls")
                .expect("start::tls is guarded")
                .status()
                .clone()
        };
        match status_of(0) {
            ReachStatus::Reachable { witness } => {
                assert_eq!(witness.get("tls_enabled"), Some(&ConfigValue::Bool(true)));
            }
            other => panic!("adaptive instance should reach start::tls: {other:?}"),
        }
        assert!(
            matches!(status_of(1), ReachStatus::Dead { .. }),
            "fixed instance should prove start::tls dead"
        );
        // Campaign-level dead set is the intersection: instance 0 keeps the
        // branch alive.
        let tls_branch = reach.instances()[1]
            .branches()
            .iter()
            .find(|row| row.region() == "start::tls")
            .unwrap()
            .branch();
        assert!(!reach.dead_branches().contains(&tls_branch));
        assert!(reach.instances()[1].dead_branches().contains(&tls_branch));
        // And the soundness helper flags exactly the dead ∩ covered set.
        let fake_covered = reach.dead_branches();
        assert_eq!(reach.dead_covered(&fake_covered), reach.dead_branches());
    }

    #[test]
    fn graph_view_preserves_names_and_edges() {
        let mut graph = RelationGraph::new();
        graph.add_edge("a", "b", 1.0);
        graph.add_node("c");
        let view = graph_view(&graph);
        assert_eq!(view.nodes, vec!["a", "b", "c"]);
        assert_eq!(view.edges, vec![("a".to_owned(), "b".to_owned())]);
    }
}
