//! Pairwise relation-weight quantification via startup coverage
//! (paper §III-B1).

use cmfuzz_config_model::{ConfigModel, ResolvedConfig};
use cmfuzz_coverage::{CoverageMap, CoverageSnapshot};
use cmfuzz_fuzzer::Target;

use crate::graph::RelationGraph;

/// How a pair's probed coverage figures are turned into its relation
/// weight.
///
/// The paper specifies "the highest coverage across all combinations" and
/// normalization, but on targets whose every configuration pair boots with
/// a large shared base of startup branches, that literal rule makes every
/// edge's rank track the two entities' solo contributions: Algorithm 2's
/// attach rule then chains all entities into one group (verified by the
/// `MaxAbsolute` ablation bench). `Interaction` therefore refines the
/// weight to the pair's *synergy*: the branches covered only when the two
/// items are set together — beyond the default baseline and beyond what
/// either value unlocks alone. This matches the paper's rationale —
/// "configurations with synergistic relations often unlock new execution
/// paths when used together" — and produces the sparse, subsystem-clustered
/// relation graph its Figure 3 depicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Peak pairwise synergy: `max over combos of
    /// |pair_coverage \ (baseline ∪ solo₁ ∪ solo₂)|` (default).
    #[default]
    Interaction,
    /// The paper's literal rule: peak absolute startup branch count over
    /// all combinations (ablation — degenerates on dense graphs).
    MaxAbsolute,
    /// Mean marginal branch count over combinations (ablation).
    Mean,
}

/// Options for relation quantification.
#[derive(Debug, Clone)]
pub struct RelationOptions {
    /// Cap on values probed per entity (the paper "explores all possible
    /// value combinations for each pair"; entity value sets here are small,
    /// so a cap of 3–4 per entity keeps the full quadratic probe cheap
    /// while covering the default plus the most interesting alternatives).
    pub values_per_entity: usize,
    /// Weight aggregation mode.
    pub mode: WeightMode,
}

impl Default for RelationOptions {
    fn default() -> Self {
        RelationOptions {
            values_per_entity: 4,
            mode: WeightMode::Interaction,
        }
    }
}

/// Quantifies pairwise relation weights by probing startup coverage with a
/// caller-supplied probe function, and returns the normalized
/// relation-aware graph.
///
/// `probe` receives a configuration binding a value assignment and returns
/// the startup coverage snapshot, or `None` when the target failed to
/// start (conflicting configuration — contributes zero, per the paper).
/// Pairs whose weight is zero across all combinations get no edge.
///
/// # Examples
///
/// ```
/// use cmfuzz::relation::{quantify_with, RelationOptions};
/// use cmfuzz_config_model::{extract_model, ConfigSpace};
/// use cmfuzz_coverage::CoverageSnapshot;
///
/// let model = extract_model(&ConfigSpace {
///     cli: vec!["--a=1".to_owned(), "--b=true".to_owned()],
///     files: vec![],
/// });
/// // A toy probe: branch 0 always; branch 1 only when both items are set.
/// let graph = quantify_with(&model, &RelationOptions::default(), |config| {
///     let hits: Vec<usize> = if config.len() == 2 { vec![0, 1] } else { vec![0] };
///     Some(CoverageSnapshot::from_hits(2, hits))
/// });
/// assert_eq!(graph.edge_count(), 1);
/// assert_eq!(graph.weight_between("a", "b"), Some(1.0));
/// ```
pub fn quantify_with<F>(
    model: &ConfigModel,
    options: &RelationOptions,
    mut probe: F,
) -> RelationGraph
where
    F: FnMut(&ResolvedConfig) -> Option<CoverageSnapshot>,
{
    let mut graph = RelationGraph::new();
    let mutable: Vec<_> = model.mutable_entities().collect();
    for entity in &mutable {
        graph.add_node(entity.name());
    }
    let baseline = probe(&ResolvedConfig::new());
    let capacity = baseline.as_ref().map_or(0, CoverageSnapshot::capacity);
    let empty = CoverageSnapshot::empty(capacity);
    let baseline = baseline.unwrap_or_else(|| empty.clone());

    // Solo coverage per (entity, value): what that value reaches when set
    // alone. The interaction term of a combination subtracts the union of
    // the *specific* values' solo coverage.
    let solo: Vec<Vec<CoverageSnapshot>> = mutable
        .iter()
        .map(|entity| {
            entity
                .values()
                .iter()
                .take(options.values_per_entity)
                .map(|value| {
                    let mut config = ResolvedConfig::new();
                    config.set(entity.name(), value.clone());
                    probe(&config).unwrap_or_else(|| empty.clone())
                })
                .collect()
        })
        .collect();

    for (i, first) in mutable.iter().enumerate() {
        for (j, second) in mutable.iter().enumerate().skip(i + 1) {
            let mut best_abs = 0usize;
            let mut best_interaction = 0usize;
            let mut sum_marginal = 0usize;
            let mut combos = 0usize;
            for (vi, v1) in first
                .values()
                .iter()
                .take(options.values_per_entity)
                .enumerate()
            {
                for (vj, v2) in second
                    .values()
                    .iter()
                    .take(options.values_per_entity)
                    .enumerate()
                {
                    let mut config = ResolvedConfig::new();
                    config.set(first.name(), v1.clone());
                    config.set(second.name(), v2.clone());
                    let pair = probe(&config).unwrap_or_else(|| empty.clone());
                    // Known set: baseline ∪ solo(first=v1) ∪ solo(second=v2).
                    let mut known = baseline.clone();
                    known.union_with(&solo[i][vi]);
                    known.union_with(&solo[j][vj]);
                    best_abs = best_abs.max(pair.covered_count());
                    best_interaction = best_interaction.max(pair.newly_covered(&known));
                    sum_marginal += pair.newly_covered(&baseline);
                    combos += 1;
                }
            }
            let weight = match options.mode {
                WeightMode::Interaction => best_interaction as f64,
                WeightMode::MaxAbsolute => best_abs as f64,
                WeightMode::Mean => {
                    if combos == 0 {
                        0.0
                    } else {
                        sum_marginal as f64 / combos as f64
                    }
                }
            };
            // "if the coverage for a pair of entities is zero across all
            // combinations, CMFuzz does not create an edge".
            if weight > 0.0 {
                graph.add_edge(first.name(), second.name(), weight);
            }
        }
    }
    graph.normalize_weights();
    graph
}

/// Quantifies relation weights against a real [`Target`]: each combination
/// boots the target on a fresh coverage map and measures startup coverage.
///
/// # Examples
///
/// See [`quantify_with`]; this function only supplies the probe.
pub fn quantify_target<T: Target + ?Sized>(
    target: &mut T,
    model: &ConfigModel,
    options: &RelationOptions,
) -> RelationGraph {
    quantify_with(model, options, |config| {
        let map = CoverageMap::new(target.branch_count());
        match target.start(config, map.probe()) {
            Ok(()) => Some(map.snapshot()),
            Err(_) => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_config_model::{extract_model, ConfigSpace};
    use cmfuzz_protocols::spec_by_name;

    fn toy_model(cli: &[&str]) -> ConfigModel {
        extract_model(&ConfigSpace {
            cli: cli.iter().map(|s| (*s).to_owned()).collect(),
            files: vec![],
        })
    }

    fn snap(capacity: usize, hits: &[usize]) -> CoverageSnapshot {
        CoverageSnapshot::from_hits(capacity, hits.iter().copied())
    }

    #[test]
    fn all_zero_pairs_get_no_edge() {
        let model = toy_model(&["--a=1", "--b=2", "--c=3"]);
        let graph = quantify_with(&model, &RelationOptions::default(), |_| Some(snap(8, &[])));
        assert_eq!(graph.edge_count(), 0);
        assert_eq!(graph.node_count(), 3, "nodes exist even without edges");
    }

    #[test]
    fn failed_starts_count_as_zero() {
        let model = toy_model(&["--a=1", "--b=2"]);
        let graph = quantify_with(&model, &RelationOptions::default(), |_| None);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn interaction_mode_ignores_additive_pairs() {
        let model = toy_model(&["--a=1", "--b=2", "--c=3"]);
        // Branch 0 baseline; branch 1 when `a` set, 2 when `b`, 3 when `c`;
        // branch 4 only when a AND b are set together.
        let graph = quantify_with(&model, &RelationOptions::default(), |config| {
            let mut hits = vec![0usize];
            if config.get("a").is_some() {
                hits.push(1);
            }
            if config.get("b").is_some() {
                hits.push(2);
            }
            if config.get("c").is_some() {
                hits.push(3);
            }
            if config.get("a").is_some() && config.get("b").is_some() {
                hits.push(4);
            }
            Some(snap(8, &hits))
        });
        assert_eq!(graph.edge_count(), 1, "only the synergistic pair");
        assert_eq!(graph.weight_between("a", "b"), Some(1.0));
        assert_eq!(graph.weight_between("a", "c"), None);
    }

    #[test]
    fn interaction_counts_replaced_branches() {
        // Setting `a` REPLACES baseline branch 0 with branch 1 (no count
        // change); setting both replaces with joint branch 2. The set-based
        // interaction still sees the joint branch.
        let model = toy_model(&["--a=1", "--b=2"]);
        let graph = quantify_with(&model, &RelationOptions::default(), |config| {
            let hits: Vec<usize> = match (config.get("a").is_some(), config.get("b").is_some()) {
                (false, false) => vec![0],
                (true, false) => vec![1],
                (false, true) => vec![0, 3],
                (true, true) => vec![1, 2, 3],
            };
            Some(snap(8, &hits))
        });
        assert_eq!(graph.edge_count(), 1);
    }

    #[test]
    fn max_absolute_mode_keeps_every_booting_pair() {
        let model = toy_model(&["--a=1", "--b=2", "--c=3"]);
        let graph = quantify_with(
            &model,
            &RelationOptions {
                values_per_entity: 2,
                mode: WeightMode::MaxAbsolute,
            },
            |_| Some(snap(4, &[0, 1])),
        );
        assert_eq!(graph.edge_count(), 3, "all pairs have coverage");
    }

    #[test]
    fn mean_mode_averages_marginals() {
        let model = toy_model(&["--a=1", "--b=2"]);
        let mut pair_calls = 0usize;
        let graph = quantify_with(
            &model,
            &RelationOptions {
                values_per_entity: 2,
                mode: WeightMode::Mean,
            },
            |config| {
                if config.len() == 2 {
                    pair_calls += 1;
                    Some(snap(8, &[0, 1]))
                } else {
                    Some(snap(8, &[0]))
                }
            },
        );
        assert_eq!(pair_calls, 4, "2x2 combinations probed");
        assert_eq!(graph.edge_count(), 1, "positive mean marginal");
    }

    #[test]
    fn values_per_entity_caps_pair_probe_count() {
        let model = toy_model(&["--a=10", "--b=20"]); // numbers have ~6 values
        let mut pair_calls = 0usize;
        let _ = quantify_with(
            &model,
            &RelationOptions {
                values_per_entity: 2,
                mode: WeightMode::Interaction,
            },
            |config| {
                if config.len() == 2 {
                    pair_calls += 1;
                }
                Some(snap(4, &[0]))
            },
        );
        assert_eq!(pair_calls, 4);
    }

    #[test]
    fn immutable_entities_are_excluded() {
        let model = toy_model(&["--a=1", "--certfile=/x/y.crt"]);
        let graph = quantify_with(&model, &RelationOptions::default(), |_| Some(snap(4, &[0])));
        assert_eq!(graph.node_count(), 1, "path entity excluded");
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn real_target_produces_sparse_synergy_graph() {
        let spec = spec_by_name("mosquitto").expect("mqtt spec");
        let mut target = (spec.build)();
        let model = extract_model(&target.config_space());
        let graph = quantify_target(&mut target, &model, &RelationOptions::default());
        // Sparse: far fewer edges than the complete graph.
        let nodes = graph.node_count();
        assert!(graph.edge_count() > 2, "some synergies exist");
        assert!(
            graph.edge_count() < nodes * (nodes - 1) / 4,
            "graph is sparse: {} edges over {} nodes",
            graph.edge_count(),
            nodes
        );
        for e in graph.edges() {
            assert!((0.0..=1.0).contains(&e.weight));
        }
        // The broker's known synergies surface as edges.
        assert!(
            graph.weight_between("persistence", "bridge-mode").is_some(),
            "bridge/persistence synergy missing"
        );
        assert!(
            graph.weight_between("tls_enabled", "auth-method").is_some(),
            "tls/auth synergy missing"
        );
        // A genuinely unrelated pair has none.
        assert!(graph.weight_between("v", "max_keepalive").is_none());
    }
}
