//! CMFuzz: parallel fuzzing of IoT protocols by configuration model
//! identification and scheduling — a from-scratch reproduction of the
//! DAC 2025 paper.
//!
//! Traditional protocol fuzzers drive their targets from two models: a
//! *data model* (packet structure) and a *state model* (message-exchange
//! flow). CMFuzz adds a third — the **configuration model** — and
//! schedules it across parallel fuzzing instances:
//!
//! 1. **Identification** (`cmfuzz-config-model` crate): configuration
//!    items are extracted from CLI declarations and configuration files
//!    (Algorithm 1) and normalized into 4-tuple entities (Figure 2).
//! 2. **Relation quantification** ([`relation`]): every pair of mutable
//!    entities is probed over value combinations; the pair's relation
//!    weight is its best *startup coverage*, zero-coverage pairs get no
//!    edge, weights normalize to `[0, 1]` (Figure 3).
//! 3. **Cohesive grouping** ([`allocation`]): Algorithm 2 partitions the
//!    relation graph into per-instance groups, seeding groups from the
//!    heaviest edges and placing stragglers by the `FindBest` score
//!    `(Σw)²/|G|`.
//! 4. **Parallel campaign** ([`campaign`]): each instance runs an isolated
//!    network namespace and fuzzes under its group's configuration,
//!    adaptively mutating configuration values whenever its coverage
//!    saturates (§III-B2).
//!
//! The [`baseline`] module provides the two comparison fuzzers of the
//! paper's evaluation — Peach's parallel mode and SPFuzz — on the same
//! substrate, and [`metrics`] computes Table I's improvement and speedup
//! columns.
//!
//! # Examples
//!
//! ```no_run
//! use cmfuzz::baseline::{run_cmfuzz, run_peach};
//! use cmfuzz::campaign::CampaignOptions;
//! use cmfuzz::metrics::improvement_pct;
//! use cmfuzz::schedule::ScheduleOptions;
//! use cmfuzz_protocols::spec_by_name;
//!
//! let spec = spec_by_name("mosquitto").expect("subject exists");
//! let options = CampaignOptions::default();
//! let ours = run_cmfuzz(&spec, &ScheduleOptions::default(), &options);
//! let peach = run_peach(&spec, &options);
//! println!(
//!     "CMFuzz {} vs Peach {} branches (+{:.1}%)",
//!     ours.final_branches(),
//!     peach.final_branches(),
//!     improvement_pct(ours.final_branches(), peach.final_branches()),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod baseline;
pub mod campaign;
mod error;
pub mod graph;

pub use error::CampaignError;
pub mod metrics;
pub mod preflight;
pub mod relation;
pub mod schedule;
