//! Typed campaign failure taxonomy.
//!
//! A campaign can only die in a handful of ways, and each one used to be a
//! panic buried in the runner. [`CampaignError`] names them so callers —
//! the experiment grid, the bench binaries — can report a readable message
//! and exit nonzero instead of unwinding across a worker pool.

use std::error::Error;
use std::fmt;

use cmfuzz_analyze::Diagnostic;
use cmfuzz_fuzzer::pit::ParsePitError;
use cmfuzz_fuzzer::StartError;

/// Why a campaign could not run to completion.
///
/// Everything here is a harness-level failure: a *target* refusing a
/// conflicting configuration is normal CMFuzz data and never surfaces as a
/// `CampaignError` (the runner falls back or retries), but a target that
/// cannot even boot its defaults, or a registry Pit document that does not
/// parse, means no meaningful result exists.
///
/// # Examples
///
/// ```
/// use cmfuzz::campaign::{try_run_campaign, CampaignOptions};
/// use cmfuzz::CampaignError;
/// use cmfuzz_protocols::spec_by_name;
///
/// let spec = spec_by_name("dnsmasq").expect("subject exists");
/// let err = try_run_campaign(&spec, "peach", &[], &CampaignOptions::default())
///     .expect_err("no instances");
/// assert_eq!(err, CampaignError::NoInstances);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The scheduler handed the runner an empty set of instance setups.
    NoInstances,
    /// The registry Pit document for the subject does not parse.
    PitParse {
        /// Subject whose document is broken.
        target: String,
        /// The parse failure.
        error: ParsePitError,
    },
    /// An instance's target refused to boot even under its default
    /// configuration, so the instance can never fuzz anything.
    TargetBoot {
        /// Subject that refused to boot.
        target: String,
        /// Index of the instance whose boot failed.
        instance: usize,
        /// The startup failure.
        error: StartError,
    },
    /// Static preflight analysis found error-severity defects in the
    /// subject's models; the campaign was rejected before any instance
    /// started (opt out via `CampaignOptions::skip_preflight`).
    Preflight(Vec<Diagnostic>),
    /// A mid-campaign restart could not restore an instance's previously
    /// running configuration, leaving it dead with budget remaining.
    Restart {
        /// Subject that refused to restart.
        target: String,
        /// Index of the instance whose restart failed.
        instance: usize,
        /// The startup failure.
        error: StartError,
    },
}

impl CampaignError {
    /// Process exit code for this failure under the repo-wide convention
    /// (see the "Exit codes" table in README.md): `3` for model-level
    /// preflight rejections — aligning with `cmfuzz-lint`'s error
    /// severity — and `2` for every operational failure (broken Pit
    /// document, boot/restart refusal, empty instance set).
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CampaignError::Preflight(_) => 3,
            CampaignError::NoInstances
            | CampaignError::PitParse { .. }
            | CampaignError::TargetBoot { .. }
            | CampaignError::Restart { .. } => 2,
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::NoInstances => {
                write!(f, "campaign needs at least one instance")
            }
            CampaignError::PitParse { target, error } => {
                write!(f, "pit document for {target} does not parse: {error}")
            }
            CampaignError::Preflight(diagnostics) => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity() == cmfuzz_analyze::Severity::Error)
                    .count();
                write!(
                    f,
                    "preflight rejected the campaign: {errors} model error(s)"
                )?;
                for diagnostic in diagnostics {
                    write!(f, "\n  {diagnostic}")?;
                }
                Ok(())
            }
            CampaignError::TargetBoot {
                target,
                instance,
                error,
            } => write!(
                f,
                "{target} instance {instance} failed to boot under defaults: {error}"
            ),
            CampaignError::Restart {
                target,
                instance,
                error,
            } => write!(
                f,
                "{target} instance {instance} could not restore its running configuration: {error}"
            ),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::NoInstances | CampaignError::Preflight(_) => None,
            CampaignError::PitParse { error, .. } => Some(error),
            CampaignError::TargetBoot { error, .. } | CampaignError::Restart { error, .. } => {
                Some(error)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_target_and_instance() {
        let err = CampaignError::TargetBoot {
            target: "mosquitto".into(),
            instance: 3,
            error: StartError::new("no listener"),
        };
        let msg = err.to_string();
        assert!(msg.contains("mosquitto"));
        assert!(msg.contains("instance 3"));
        assert!(msg.contains("no listener"));
        assert!(err.source().is_some(), "inner StartError is the source");
    }

    #[test]
    fn variants_compare_structurally() {
        assert_eq!(CampaignError::NoInstances, CampaignError::NoInstances);
        let restart = CampaignError::Restart {
            target: "qpid".into(),
            instance: 0,
            error: StartError::new("x"),
        };
        assert_ne!(restart, CampaignError::NoInstances);
        assert!(restart.to_string().contains("could not restore"));
        assert!(CampaignError::NoInstances.source().is_none());
    }

    #[test]
    fn exit_codes_follow_the_readme_convention() {
        assert_eq!(CampaignError::NoInstances.exit_code(), 2);
        let boot = CampaignError::TargetBoot {
            target: "mosquitto".into(),
            instance: 0,
            error: StartError::new("no listener"),
        };
        assert_eq!(boot.exit_code(), 2);
        assert_eq!(CampaignError::Preflight(Vec::new()).exit_code(), 3);
    }

    #[test]
    fn preflight_lists_diagnostics_and_counts_errors() {
        use cmfuzz_analyze::Severity;
        let err = CampaignError::Preflight(vec![
            Diagnostic::new(
                "CM010",
                Severity::Error,
                "t",
                "item:port",
                "empty domain",
                "fix it",
            ),
            Diagnostic::new(
                "CM006",
                Severity::Warn,
                "t",
                "data:Dup",
                "duplicate",
                "rename",
            ),
        ]);
        let msg = err.to_string();
        assert!(msg.contains("preflight rejected the campaign: 1 model error(s)"));
        assert!(msg.contains("CM010"));
        assert!(msg.contains("CM006"), "warnings are listed too");
        assert!(err.source().is_none());
    }
}
