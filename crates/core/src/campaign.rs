//! The parallel campaign runner.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};

use cmfuzz_config_model::{ConfigValue, ConstraintSet, ResolvedConfig};
use cmfuzz_coverage::{CoverageSnapshot, SaturationDetector, Ticks, VirtualClock};
use cmfuzz_fuzzer::state_codec::{StateReader, StateWriter};
use cmfuzz_fuzzer::{pit, EngineCheckpoint, EngineConfig, FaultLog, FuzzEngine, Seed, StartError};
use cmfuzz_netsim::LinkConditions;
use cmfuzz_protocols::{NetworkedTarget, ProtocolSpec, ProtocolTarget};
use cmfuzz_telemetry::{EngineTelemetry, Event, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{CampaignResult, ConfigMutationEvent, CorpusOccupancy, CoverageCurve};

pub use crate::error::CampaignError;

/// Options shared by every campaign (CMFuzz and baselines run under
/// identical budgets — the paper's fairness requirement).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Parallel fuzzing instances (the paper uses 4).
    pub instances: usize,
    /// Virtual-time budget per instance; stands in for the 24-hour wall
    /// clock (one tick = one fuzzing session).
    pub budget: Ticks,
    /// Coverage-curve sampling interval (also the round length).
    pub sample_interval: Ticks,
    /// Sessions executed per [`FuzzEngine::run_batch`] call inside a
    /// round. Purely a throughput knob: batching renders sessions into one
    /// arena and defers the coverage diff, but results are bit-identical
    /// at every batch size (including 1). Clamped to at least 1.
    ///
    /// [`FuzzEngine::run_batch`]: cmfuzz_fuzzer::FuzzEngine::run_batch
    pub batch: usize,
    /// Stagnation window before adaptive configuration mutation fires.
    pub saturation_window: Ticks,
    /// Campaign RNG seed; repetitions use different seeds.
    pub seed: u64,
    /// Share retained seeds across instances every N rounds (SPFuzz-style
    /// synchronization); `None` disables sharing.
    pub seed_sync_every_rounds: Option<u32>,
    /// Run rounds on persistent per-instance worker threads (spawned once
    /// for the whole campaign and parked on a round barrier in between).
    /// `false` executes every instance's round inline on the calling
    /// thread — byte-identical results, kept as the sequential reference
    /// for determinism tests and for single-core debugging.
    pub worker_pool: bool,
    /// Link impairment applied to every instance's network namespace
    /// (loss/duplication/reordering, the paper's lossy IoT radio links).
    /// The impairment RNG is derived from [`CampaignOptions::seed`] per
    /// instance, so impaired campaigns stay deterministic. The default
    /// perfect link never consults that RNG and reproduces the historical
    /// behaviour bit-for-bit.
    pub link: LinkConditions,
    /// Base engine tunables (per-instance seeds are derived from `seed`).
    pub engine: EngineConfig,
    /// Skip the static preflight verification pass. Preflight rejects a
    /// campaign with [`CampaignError::Preflight`] when `cmfuzz-analyze`
    /// finds error-severity defects in the subject's models or the
    /// instance setups; set this to deliberately run a broken setup (for
    /// example to exercise the runner's boot-time fallback paths).
    pub skip_preflight: bool,
    /// Label stamped onto every telemetry event this campaign emits (see
    /// [`Telemetry::set_campaign`]). Fleet runs multiplex many campaigns
    /// over one JSONL stream; the label keeps each line attributable.
    /// `None` leaves events unlabelled.
    pub campaign_id: Option<String>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            instances: 4,
            budget: Ticks::new(20_000),
            sample_interval: Ticks::new(100),
            batch: 16,
            saturation_window: Ticks::new(600),
            seed: 0,
            seed_sync_every_rounds: None,
            worker_pool: true,
            link: LinkConditions::perfect(),
            engine: EngineConfig::default(),
            skip_preflight: false,
            campaign_id: None,
        }
    }
}

/// What one parallel instance is told to do — the output of a scheduler,
/// consumed by [`run_campaign`].
#[derive(Debug, Clone, Default)]
pub struct InstanceSetup {
    /// Startup configuration (empty = target defaults, the baselines'
    /// behaviour).
    pub initial_config: ResolvedConfig,
    /// Entities this instance may mutate adaptively on saturation, with
    /// their typical values (paper §III-B2). Empty disables adaptive
    /// configuration mutation.
    pub adaptive_entities: Vec<(String, Vec<ConfigValue>)>,
    /// Fixed session plans (SPFuzz path partitioning); empty = random
    /// state-model walks.
    pub session_plans: Vec<Vec<String>>,
}

struct Instance {
    engine: FuzzEngine<NetworkedTarget<ProtocolTarget>>,
    config: ResolvedConfig,
    adaptive: Vec<(String, Vec<ConfigValue>)>,
    saturation: SaturationDetector,
    rng: StdRng,
    /// Whether an `InstanceStalled` event was already emitted (non-adaptive
    /// instances only; adaptive ones mutate their way out instead).
    stalled: bool,
}

/// One instance's share of a [`CampaignCheckpoint`].
#[derive(Debug, Clone)]
struct InstanceCheckpoint {
    engine: EngineCheckpoint,
    /// The configuration running at pause time (adaptive mutation may have
    /// moved it away from the setup's `initial_config`).
    config: ResolvedConfig,
    rng: [u64; 4],
    saturation: SaturationDetector,
    stalled: bool,
}

/// A campaign paused at a round boundary: everything
/// [`run_campaign_slice`] needs to resume it and reproduce the
/// uninterrupted [`run_campaign`] byte-for-byte.
///
/// The checkpoint owns clones of all mutable campaign state (engine
/// corpora, accumulated coverage, RNG stream positions, fault logs, the
/// coverage curve, the virtual clock reading), so it stays valid after the
/// slice that produced it returns and across any number of other
/// campaigns' slices in between — the property the fleet scheduler is
/// built on.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    fuzzer: String,
    target: String,
    budget: Ticks,
    rounds_total: u64,
    rounds_done: u64,
    consumed: Ticks,
    curve: CoverageCurve,
    config_mutations: Vec<ConfigMutationEvent>,
    seen_faults: FaultLog,
    instances: Vec<InstanceCheckpoint>,
}

impl CampaignCheckpoint {
    /// Rounds executed so far.
    #[must_use]
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }

    /// Virtual time consumed so far.
    #[must_use]
    pub fn consumed(&self) -> Ticks {
        self.consumed
    }

    /// Whether the campaign's whole budget has been executed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rounds_done >= self.rounds_total
    }

    /// Union branch coverage across instances at pause time.
    #[must_use]
    pub fn union_branches(&self) -> usize {
        self.curve.final_branches()
    }

    /// Converts the checkpoint into the [`CampaignResult`] the equivalent
    /// uninterrupted [`run_campaign`] would have returned. Normally called
    /// once [`CampaignCheckpoint::is_complete`]; calling earlier yields the
    /// partial result up to the pause point.
    #[must_use]
    pub fn into_result(self) -> CampaignResult {
        let mut faults = FaultLog::new();
        let mut stats = crate::metrics::CampaignStats::default();
        for instance in &self.instances {
            faults.merge(&instance.engine.faults);
            stats.sessions += instance.engine.stats.sessions;
            stats.messages += instance.engine.stats.messages;
            stats.crashes_observed += instance.engine.stats.crashes_observed;
            stats.seeds_retained += instance.engine.stats.seeds_retained;
            stats.seeds_deduped_exact += instance.engine.stats.seeds_deduped_exact;
            stats.seeds_deduped_near += instance.engine.stats.seeds_deduped_near;
            stats.seeds_evicted += instance.engine.stats.seeds_evicted;
            stats.seeds_imported += instance.engine.stats.seeds_imported;
        }
        let corpus = self.corpus_occupancy();
        let coverage =
            CoverageSnapshot::merge(self.instances.iter().map(|i| &i.engine.accumulated))
                .unwrap_or_else(|| CoverageSnapshot::empty(0));
        CampaignResult {
            fuzzer: self.fuzzer,
            target: self.target,
            instances: self.instances.len(),
            budget: self.budget,
            curve: self.curve,
            coverage,
            faults,
            config_mutations: self.config_mutations,
            stats,
            corpus,
        }
    }

    /// Corpus occupancy at pause time, summed over instances — the
    /// memory-cap evidence fleet benchmarks report per campaign.
    #[must_use]
    pub fn corpus_occupancy(&self) -> CorpusOccupancy {
        let mut occupancy = CorpusOccupancy::default();
        for instance in &self.instances {
            occupancy.seeds += instance.engine.corpus.len();
            occupancy.approx_bytes += instance
                .engine
                .corpus
                .iter()
                .map(|s| s.bytes.len())
                .sum::<usize>();
        }
        occupancy
    }

    /// Serializes up to `max` of this campaign's rarest retained seeds
    /// into a portable seed pack for fleet-wide sharing.
    ///
    /// Candidates are drawn from every instance corpus, ordered by rarity
    /// score ascending (lower = rarer coverage; unscored seeds carry 0 and
    /// sort first) with ties broken by instance order then retention
    /// order, and deduplicated by content hash so one campaign never
    /// donates the same input twice. The pack is self-describing:
    /// [`CampaignCheckpoint::import_seed_pack`] on any campaign of the
    /// same subject can decode it.
    #[must_use]
    pub fn export_rare_seeds(&self, max: usize) -> Vec<u8> {
        let mut candidates: Vec<&Seed> = Vec::new();
        for instance in &self.instances {
            candidates.extend(instance.engine.corpus.iter());
        }
        // Stable sort: equal rarities keep (instance, retention) order.
        candidates.sort_by_key(|s| s.rarity);
        let mut seen = std::collections::BTreeSet::new();
        let mut selected: Vec<&Seed> = Vec::new();
        for seed in candidates {
            if selected.len() >= max {
                break;
            }
            if seen.insert(seed.content_hash()) {
                selected.push(seed);
            }
        }
        let mut writer = StateWriter::new();
        writer.usize(selected.len());
        for seed in selected {
            seed.encode(&mut writer);
        }
        writer.finish()
    }

    /// Imports a seed pack produced by
    /// [`CampaignCheckpoint::export_rare_seeds`] into every instance whose
    /// current resolved configuration satisfies `constraints`, returning
    /// `(accepted, rejected)` transfer counts.
    ///
    /// Instances whose running configuration violates the constraint set
    /// (adaptive mutation may have moved it into a region the subject's
    /// models declare unreachable) reject the whole pack; each rejected
    /// seed counts once per rejecting instance. Accepted seeds are
    /// appended to the instance's checkpointed corpus — the next
    /// [`run_campaign_slice`] restore replays them through the engine's
    /// normal retention path, so exact and near duplicates of seeds the
    /// recipient already holds are still dropped there; seeds already
    /// present verbatim are skipped here without counting.
    ///
    /// # Panics
    ///
    /// Panics if `pack` is not a well-formed seed pack.
    pub fn import_seed_pack(&mut self, pack: &[u8], constraints: &ConstraintSet) -> (u64, u64) {
        let mut reader = StateReader::new(pack);
        let count = reader.usize();
        let seeds: Vec<Seed> = (0..count).map(|_| Seed::decode(&mut reader)).collect();
        reader.finish();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for instance in &mut self.instances {
            if !constraints.violations(&instance.config).is_empty() {
                rejected += seeds.len() as u64;
                continue;
            }
            for seed in &seeds {
                let duplicate = instance
                    .engine
                    .corpus
                    .iter()
                    .any(|s| s.content_hash() == seed.content_hash() && s.bytes == seed.bytes);
                if duplicate {
                    continue;
                }
                instance.engine.corpus.push(seed.clone());
                instance.engine.stats.seeds_imported += 1;
                accepted += 1;
            }
        }
        (accepted, rejected)
    }
}

/// Number of seeds in a pack produced by
/// [`CampaignCheckpoint::export_rare_seeds`], without importing it.
///
/// # Panics
///
/// Panics if `pack` is shorter than the count prefix.
#[must_use]
pub fn seed_pack_len(pack: &[u8]) -> usize {
    StateReader::new(pack).usize()
}

/// What one [`run_campaign_slice`] call actually executed — the scheduling
/// signal fleet policies feed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceReport {
    /// Rounds executed in this slice (0 when the campaign was already
    /// complete or the slice budget was below one round).
    pub rounds: u64,
    /// Fuzzing sessions executed in this slice, summed over instances.
    pub sessions: u64,
    /// Union branches discovered during this slice.
    pub new_branches: usize,
    /// Total union branch coverage after the slice.
    pub union_branches: usize,
    /// Whether the campaign's whole budget is now exhausted.
    pub done: bool,
    /// Whether a [`CampaignControl`] signal stopped the slice at a round
    /// boundary before its budget ran out (the checkpoint resumes exactly
    /// where the interruption landed).
    pub interrupted: bool,
}

#[derive(Debug, Default)]
struct ControlInner {
    paused: AtomicBool,
    killed: AtomicBool,
}

/// Live control signals for a running campaign.
///
/// A control handle is shared between an operator (the control plane) and
/// the slice runner: [`run_campaign_slice_with_control`] checks it at
/// every round boundary and stops the slice early — never mid-round — when
/// a pause or kill is requested, returning a resumable checkpoint with
/// [`SliceReport::interrupted`] set. The handle carries no RNG and is
/// consulted strictly *between* rounds, so control actions change how much
/// work a slice does but never what any executed round computes: resuming
/// an interrupted checkpoint reproduces the uninterrupted campaign
/// byte-for-byte.
///
/// Cloning shares the signal. Pause is reversible ([`CampaignControl::resume`]);
/// kill is permanent.
#[derive(Debug, Clone, Default)]
pub struct CampaignControl {
    inner: Arc<ControlInner>,
}

impl CampaignControl {
    /// Creates a handle with no signal raised.
    #[must_use]
    pub fn new() -> Self {
        CampaignControl::default()
    }

    /// Requests a stop at the next round boundary; reversible.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::Release);
    }

    /// Clears a pause request (a kill stays in force).
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::Release);
    }

    /// Permanently requests a stop at the next round boundary.
    pub fn kill(&self) {
        self.inner.killed.store(true, Ordering::Release);
    }

    /// Whether a pause is currently requested.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.inner.paused.load(Ordering::Acquire)
    }

    /// Whether the campaign has been killed.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.inner.killed.load(Ordering::Acquire)
    }

    /// Whether the runner should stop at the next round boundary.
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.is_paused() || self.is_killed()
    }
}

/// Runs one parallel fuzzing campaign: `setups.len()` isolated instances
/// over the shared Pit models of `spec`, each in its own network
/// namespace, with per-round coverage sampling, optional seed
/// synchronization, and adaptive configuration mutation for instances that
/// declare adaptive entities.
///
/// Instances execute their rounds on real threads (the "parallel" in
/// parallel fuzzing) but the result is deterministic for a given options
/// struct because instances share nothing except the round barrier.
///
/// # Panics
///
/// Panics on any [`CampaignError`]; use [`try_run_campaign`] to handle
/// failures programmatically.
#[must_use]
pub fn run_campaign(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
) -> CampaignResult {
    run_campaign_with_telemetry(spec, fuzzer, setups, options, &Telemetry::disabled())
}

/// [`run_campaign`], but campaign-level failures come back as a typed
/// [`CampaignError`] instead of a panic.
///
/// # Errors
///
/// Returns [`CampaignError::NoInstances`] for an empty `setups`,
/// [`CampaignError::PitParse`] for a broken registry Pit document,
/// [`CampaignError::Preflight`] when static analysis finds error-severity
/// model defects (unless `options.skip_preflight`),
/// [`CampaignError::TargetBoot`] when an instance cannot boot its default
/// configuration, and [`CampaignError::Restart`] when a mid-campaign
/// restart strands an instance.
pub fn try_run_campaign(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
) -> Result<CampaignResult, CampaignError> {
    try_run_campaign_with_telemetry(spec, fuzzer, setups, options, &Telemetry::disabled())
}

/// [`run_campaign`] with an observability pipeline attached.
///
/// The runner emits the full event taxonomy (`CampaignStarted`,
/// `RoundCompleted`, `SaturationDetected`, `ConfigMutated`, `SeedSynced`,
/// `FaultFound`, `InstanceStalled`, `CampaignFinished`), mirrors engine
/// execution counters into `telemetry`'s registry, and records per-instance
/// `"fuzzing"` phase spans in virtual ticks. The event bus is drained to
/// the sinks at every round boundary, so sink output order is as
/// deterministic as the campaign itself. A disabled pipeline reduces to
/// [`run_campaign`] exactly — instrumentation never perturbs the RNG
/// sequence, so results are identical either way.
///
/// # Panics
///
/// As [`run_campaign`].
#[must_use]
pub fn run_campaign_with_telemetry(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> CampaignResult {
    match try_run_campaign_with_telemetry(spec, fuzzer, setups, options, telemetry) {
        Ok(result) => result,
        Err(error) => panic!("campaign failed: {error}"),
    }
}

/// [`run_campaign_with_telemetry`] with typed failures.
///
/// # Errors
///
/// As [`try_run_campaign`].
pub fn try_run_campaign_with_telemetry(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> Result<CampaignResult, CampaignError> {
    let (checkpoint, _report) = run_campaign_slice_with_telemetry(
        spec,
        fuzzer,
        setups,
        options,
        None,
        options.budget,
        telemetry,
    )?;
    Ok(checkpoint.into_result())
}

/// Runs up to `slice_budget` virtual ticks of a campaign, pausing at the
/// next round boundary, and returns a resumable [`CampaignCheckpoint`]
/// plus a [`SliceReport`] of what the slice executed.
///
/// Pass `None` to boot a fresh campaign, or a previous call's checkpoint
/// to resume it. Slicing is invisible to the campaign: any partition of
/// the budget into slices reproduces the uninterrupted [`run_campaign`]
/// result byte-for-byte ([`CampaignCheckpoint::into_result`]), because the
/// checkpoint carries every RNG stream position, each instance's corpus,
/// accumulated coverage, target and link-impairment state.
///
/// `spec`, `fuzzer`, `setups`, and `options` must be the same on every
/// call for a given campaign; the checkpoint stores only mutable state.
///
/// # Errors
///
/// As [`try_run_campaign`]; preflight runs only on the initial boot.
///
/// # Panics
///
/// Panics if `checkpoint` came from a campaign with a different subject or
/// instance count.
pub fn run_campaign_slice(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
    checkpoint: Option<CampaignCheckpoint>,
    slice_budget: Ticks,
) -> Result<(CampaignCheckpoint, SliceReport), CampaignError> {
    run_campaign_slice_with_telemetry(
        spec,
        fuzzer,
        setups,
        options,
        checkpoint,
        slice_budget,
        &Telemetry::disabled(),
    )
}

/// [`run_campaign_slice`] with an observability pipeline attached; the
/// slice stamps every event with `options.campaign_id` (see
/// [`CampaignOptions::campaign_id`]).
///
/// # Errors
///
/// As [`run_campaign_slice`].
pub fn run_campaign_slice_with_telemetry(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
    checkpoint: Option<CampaignCheckpoint>,
    slice_budget: Ticks,
    telemetry: &Telemetry,
) -> Result<(CampaignCheckpoint, SliceReport), CampaignError> {
    run_campaign_slice_with_control(
        spec,
        fuzzer,
        setups,
        options,
        checkpoint,
        slice_budget,
        telemetry,
        None,
    )
}

/// [`run_campaign_slice_with_telemetry`] that additionally honours live
/// [`CampaignControl`] signals: the handle is checked at every round
/// boundary, and a raised pause/kill stops the slice there with
/// [`SliceReport::interrupted`] set. `None` behaves exactly like the
/// uncontrolled variant. Control never touches engine RNG — an interrupted
/// checkpoint resumed later reproduces the uninterrupted campaign
/// byte-for-byte.
///
/// # Errors
///
/// As [`run_campaign_slice`].
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_campaign_slice_with_control(
    spec: &ProtocolSpec,
    fuzzer: &str,
    setups: &[InstanceSetup],
    options: &CampaignOptions,
    checkpoint: Option<CampaignCheckpoint>,
    slice_budget: Ticks,
    telemetry: &Telemetry,
    control: Option<&CampaignControl>,
) -> Result<(CampaignCheckpoint, SliceReport), CampaignError> {
    if setups.is_empty() {
        return Err(CampaignError::NoInstances);
    }
    if let Some(resume) = &checkpoint {
        assert_eq!(
            resume.target, spec.name,
            "checkpoint is for {}",
            resume.target
        );
        assert_eq!(
            resume.instances.len(),
            setups.len(),
            "checkpoint was taken with a different instance count"
        );
    }
    let pit = pit::parse(spec.pit_document).map_err(|error| CampaignError::PitParse {
        target: spec.name.to_owned(),
        error,
    })?;
    if checkpoint.is_none() && !options.skip_preflight {
        let report = crate::preflight::preflight_campaign(spec, &pit, setups, telemetry);
        if report.has_errors() {
            return Err(CampaignError::Preflight(report.into_diagnostics()));
        }
    }
    telemetry.set_campaign(options.campaign_id.as_deref());
    let engine_telemetry = EngineTelemetry::for_pipeline(telemetry);

    let mut instances: Vec<Instance> = Vec::with_capacity(setups.len());
    for (i, setup) in setups.iter().enumerate() {
        let target = NetworkedTarget::with_conditions(
            (spec.build)(),
            &format!("{fuzzer}-{}-{i}", spec.name),
            options.link,
            // Distinct from the engine and mutation seed streams; a
            // perfect link never draws from it.
            (options.seed ^ 0x4C49_4E4B_F00D_5EED).wrapping_add(i as u64),
        );
        let engine_config = EngineConfig {
            seed: options
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64),
            ..options.engine.clone()
        };
        let mut engine = FuzzEngine::new(target, pit.clone(), engine_config);
        let instance = if let Some(resume) = &checkpoint {
            let saved = &resume.instances[i];
            engine.set_session_plans(&setup.session_plans);
            engine.attach_telemetry(engine_telemetry.clone());
            engine
                .restore(&saved.config, &saved.engine)
                .map_err(|error| CampaignError::TargetBoot {
                    target: spec.name.to_owned(),
                    instance: i,
                    error,
                })?;
            Instance {
                engine,
                config: saved.config.clone(),
                adaptive: setup.adaptive_entities.clone(),
                saturation: saved.saturation.clone(),
                rng: StdRng::from_state(saved.rng),
                stalled: saved.stalled,
            }
        } else {
            let config = if engine.start(&setup.initial_config).is_ok() {
                setup.initial_config.clone()
            } else {
                // A scheduler should never hand out a conflicting startup
                // configuration, but a campaign must not die if one slips
                // through: fall back to target defaults.
                let defaults = ResolvedConfig::new();
                engine
                    .start(&defaults)
                    .map_err(|error| CampaignError::TargetBoot {
                        target: spec.name.to_owned(),
                        instance: i,
                        error,
                    })?;
                defaults
            };
            engine.set_session_plans(&setup.session_plans);
            engine.attach_telemetry(engine_telemetry.clone());
            Instance {
                engine,
                config,
                adaptive: setup.adaptive_entities.clone(),
                saturation: SaturationDetector::new(options.saturation_window),
                rng: StdRng::seed_from_u64(options.seed.wrapping_add(0xC0FF_EE00 + i as u64)),
                stalled: false,
            }
        };
        instances.push(instance);
    }

    let rounds_counter = telemetry.counter("campaign.rounds");
    let mutations_counter = telemetry.counter("campaign.config_mutations");
    let syncs_counter = telemetry.counter("campaign.seed_syncs");

    let iterations_per_round = options.sample_interval.get().max(1);
    let batch = options.batch.max(1) as u64;
    let rounds_total = options.budget.get() / iterations_per_round;

    let clock = VirtualClock::new();
    let (mut curve, mut config_mutations, mut seen_faults, start_round) = match checkpoint {
        Some(resume) => {
            clock.advance(resume.consumed);
            (
                resume.curve,
                resume.config_mutations,
                resume.seen_faults,
                resume.rounds_done,
            )
        }
        None => {
            telemetry.emit(Event::CampaignStarted {
                fuzzer: fuzzer.to_owned(),
                target: spec.name.to_owned(),
                instances: setups.len(),
                budget: options.budget.get(),
            });
            let mut curve = CoverageCurve::new();
            // Running merge of every instance's unique faults, kept so
            // FaultFound events fire exactly once per campaign-unique
            // fault.
            curve
                .push(Ticks::ZERO, union_coverage(&instances).covered_count())
                .expect("first sample of an empty curve");
            (curve, Vec::new(), FaultLog::new(), 0)
        }
    };

    let branches_before = curve.final_branches();
    let sessions_before: u64 = instances.iter().map(|i| i.engine.stats().sessions).sum();
    let slice_rounds =
        (slice_budget.get() / iterations_per_round).min(rounds_total.saturating_sub(start_round));
    let end_round = start_round + slice_rounds;

    // The parallel part: one persistent worker thread per instance for the
    // life of the campaign, parked on a round barrier in between rounds.
    // Instances share nothing except the barriers, so results are
    // byte-identical to inline execution; the mutex per slot is
    // uncontended (workers and the round bookkeeping below never hold it
    // at the same time) and exists to hand `&mut Instance` back and forth.
    let slots: Vec<Mutex<Instance>> = instances.into_iter().map(Mutex::new).collect();
    let pool = options.worker_pool && slots.len() > 1 && slice_rounds > 0;
    let round_start = Barrier::new(slots.len() + 1);
    let round_done = Barrier::new(slots.len() + 1);
    let stop = AtomicBool::new(false);
    // A mid-campaign failure cannot early-return from inside the thread
    // scope (workers must observe `stop` through the barrier protocol
    // first), so it is carried out here.
    let mut failure: Option<CampaignError> = None;
    // Rounds actually executed; falls short of `end_round` when a control
    // signal interrupts the slice at a round boundary.
    let mut executed_through = start_round;
    let mut interrupted = false;

    std::thread::scope(|scope| {
        if pool {
            for slot in &slots {
                scope.spawn(|| loop {
                    round_start.wait();
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let mut instance = lock(slot);
                    let mut remaining = iterations_per_round;
                    while remaining > 0 {
                        let n = remaining.min(batch) as usize;
                        instance.engine.run_batch(n);
                        remaining -= n as u64;
                    }
                    drop(instance);
                    round_done.wait();
                });
            }
        }

        'rounds: for round in start_round..end_round {
            // Control signals are honoured strictly between rounds, while
            // the workers are parked on `round_start`: no instance state
            // is in flight, so stopping here is as clean as never having
            // scheduled the round.
            if control.is_some_and(CampaignControl::should_stop) {
                interrupted = true;
                break 'rounds;
            }
            if pool {
                round_start.wait();
                round_done.wait();
            } else {
                for slot in &slots {
                    let mut instance = lock(slot);
                    let mut remaining = iterations_per_round;
                    while remaining > 0 {
                        let n = remaining.min(batch) as usize;
                        instance.engine.run_batch(n);
                        remaining -= n as u64;
                    }
                }
            }

            // Workers are parked on `round_start` now, so the round
            // bookkeeping below has every instance to itself.
            let mut guards: Vec<MutexGuard<'_, Instance>> = slots.iter().map(lock).collect();
            let now = clock.advance(options.sample_interval);
            rounds_counter.incr();
            if telemetry.is_enabled() {
                for (index, instance) in guards.iter().enumerate() {
                    telemetry.span_record(index, "fuzzing", options.sample_interval);
                    for fault in instance.engine.fault_log().faults() {
                        if seen_faults.record(fault.clone()) {
                            telemetry.emit(Event::FaultFound {
                                time: now,
                                instance: index,
                                kind: fault.kind.to_string(),
                                function: fault.function.clone(),
                            });
                        }
                    }
                }
            }

            // SPFuzz-style seed synchronization between rounds.
            if let Some(every) = options.seed_sync_every_rounds {
                if every > 0 && (round + 1) % u64::from(every) == 0 {
                    let shared = sync_seeds(&mut guards);
                    syncs_counter.incr();
                    telemetry.emit(Event::SeedSynced {
                        round,
                        time: now,
                        seeds_shared: shared,
                    });
                }
            }

            // Adaptive configuration mutation on saturation (paper
            // §III-B2). The detector is fed for every instance (its state
            // is private and RNG-free, so this cannot perturb campaign
            // results), but only adaptive instances act on it;
            // non-adaptive ones report a stall once and keep running.
            for (index, instance) in guards.iter_mut().enumerate() {
                let covered = instance.engine.covered_count();
                let saturated = instance.saturation.observe(now, covered);
                if instance.adaptive.is_empty() {
                    if saturated && !instance.stalled {
                        instance.stalled = true;
                        telemetry.emit(Event::InstanceStalled {
                            time: now,
                            instance: index,
                            covered,
                        });
                    }
                    continue;
                }
                if saturated {
                    telemetry.emit(Event::SaturationDetected {
                        time: now,
                        instance: index,
                        covered,
                    });
                    match mutate_instance_config(instance) {
                        Ok(Some((entity, value))) => {
                            mutations_counter.incr();
                            telemetry.emit(Event::ConfigMutated {
                                time: now,
                                instance: index,
                                entity: entity.clone(),
                                value: value.render(),
                            });
                            config_mutations.push(ConfigMutationEvent {
                                time: now,
                                instance: index,
                                entity,
                                value,
                            });
                        }
                        Ok(None) => {}
                        Err(error) => {
                            // The instance lost its running configuration:
                            // abort the campaign through the normal worker
                            // shutdown below.
                            failure = Some(CampaignError::Restart {
                                target: spec.name.to_owned(),
                                instance: index,
                                error,
                            });
                            break 'rounds;
                        }
                    }
                    instance.saturation.reset_window(now);
                }
            }

            let union_branches = union_coverage(guards.iter().map(|g| &**g)).covered_count();
            curve
                .push(now, union_branches)
                .expect("virtual clock is monotone");
            if telemetry.is_enabled() {
                telemetry.emit(Event::RoundCompleted {
                    round,
                    time: now,
                    union_branches,
                    sessions: guards.iter().map(|i| i.engine.stats().sessions).sum(),
                });
                telemetry.drain();
            }
            executed_through = round + 1;
        }

        if pool {
            // Release the workers one last time so they observe `stop`.
            stop.store(true, Ordering::Release);
            round_start.wait();
        }
    });

    if let Some(error) = failure {
        return Err(error);
    }

    let mut instances: Vec<Instance> = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();

    // Snapshot every instance; exporting target state may be destructive
    // (queues drain), which is fine — the instances are dropped below and
    // the checkpoint is the only thing that survives the slice.
    let saved: Vec<InstanceCheckpoint> = instances
        .iter_mut()
        .map(|instance| InstanceCheckpoint {
            engine: instance.engine.checkpoint(),
            config: instance.config.clone(),
            rng: instance.rng.state(),
            saturation: instance.saturation.clone(),
            stalled: instance.stalled,
        })
        .collect();

    let done = executed_through >= rounds_total;
    if done {
        let mut faults = FaultLog::new();
        for instance in &saved {
            faults.merge(&instance.engine.faults);
        }
        telemetry.emit(Event::CampaignFinished {
            time: clock.now(),
            branches: curve.final_branches(),
            unique_faults: faults.unique_count(),
            config_mutations: config_mutations.len(),
        });
        telemetry.drain();
    }

    let sessions_after: u64 = saved.iter().map(|i| i.engine.stats.sessions).sum();
    let report = SliceReport {
        rounds: executed_through - start_round,
        sessions: sessions_after - sessions_before,
        new_branches: curve.final_branches().saturating_sub(branches_before),
        union_branches: curve.final_branches(),
        done,
        interrupted,
    };
    let checkpoint = CampaignCheckpoint {
        fuzzer: fuzzer.to_owned(),
        target: spec.name.to_owned(),
        budget: options.budget,
        rounds_total,
        rounds_done: executed_through,
        consumed: clock.now(),
        curve,
        config_mutations,
        seen_faults,
        instances: saved,
    };
    Ok((checkpoint, report))
}

/// Locks a slot, recovering from poisoning (a panicked worker already
/// propagates through the thread scope; the lock itself holds plain data).
fn lock(slot: &Mutex<Instance>) -> MutexGuard<'_, Instance> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

fn union_coverage<'a, I>(instances: I) -> CoverageSnapshot
where
    I: IntoIterator<Item = &'a Instance>,
{
    let mut it = instances.into_iter();
    let first = it.next().expect("campaign needs at least one instance");
    let mut union = first.engine.coverage().clone();
    for instance in it {
        union.union_with(instance.engine.coverage());
    }
    union
}

/// Returns the number of seed copies imported across instances.
fn sync_seeds(instances: &mut [MutexGuard<'_, Instance>]) -> usize {
    let outboxes: Vec<Vec<Seed>> = instances
        .iter_mut()
        .map(|i| i.engine.export_new_seeds())
        .collect();
    let mut copies = 0;
    for (i, instance) in instances.iter_mut().enumerate() {
        for (j, outbox) in outboxes.iter().enumerate() {
            if i != j {
                // Cap what is shared per round so one lucky instance cannot
                // flood everyone's corpus.
                let shared = &outbox[..outbox.len().min(16)];
                instance.engine.import_seeds(shared);
                copies += shared.len();
            }
        }
    }
    copies
}

/// Picks one adaptive entity and one of its typical values, restarting the
/// instance's target under the mutated configuration. Conflicting picks
/// (failed starts) are retried a few times and abandoned otherwise — the
/// previous configuration keeps running. Returns the applied mutation, or
/// an error if a known-good configuration refuses to boot again (the
/// instance would be dead with budget remaining).
fn mutate_instance_config(
    instance: &mut Instance,
) -> Result<Option<(String, ConfigValue)>, StartError> {
    for _attempt in 0..4 {
        let (name, values) =
            &instance.adaptive[instance.rng.random_range(0..instance.adaptive.len())];
        if values.is_empty() {
            continue;
        }
        let value = values[instance.rng.random_range(0..values.len())].clone();
        if instance.config.get(name) == Some(&value) {
            continue;
        }
        let mut candidate = instance.config.clone();
        candidate.set(name, value.clone());
        if instance.engine.start(&candidate).is_ok() {
            instance.config = candidate;
            return Ok(Some((name.clone(), value)));
        }
        // Failed start: the engine is left unstarted; restore the running
        // configuration before trying another value.
        instance.engine.start(&instance.config)?;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_fuzzer::Target;
    use cmfuzz_protocols::spec_by_name;

    fn small_options(seed: u64) -> CampaignOptions {
        CampaignOptions {
            instances: 2,
            budget: Ticks::new(600),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(200),
            seed,
            ..CampaignOptions::default()
        }
    }

    #[test]
    fn default_setup_campaign_produces_monotone_curve() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let result = run_campaign(&spec, "peach", &setups, &small_options(1));
        assert_eq!(result.fuzzer, "peach");
        assert_eq!(result.target, "dnsmasq");
        assert_eq!(result.curve.points().len(), 7, "initial + 6 rounds");
        let mut last = 0;
        for &(_, branches) in result.curve.points() {
            assert!(branches >= last, "union coverage is monotone");
            last = branches;
        }
        assert!(result.final_branches() > 10);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let spec = spec_by_name("libcoap").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let a = run_campaign(&spec, "peach", &setups, &small_options(9));
        let b = run_campaign(&spec, "peach", &setups, &small_options(9));
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.faults.unique_count(), b.faults.unique_count());
        let c = run_campaign(&spec, "peach", &setups, &small_options(10));
        // Different seed virtually always walks a different curve.
        assert!(a.curve != c.curve || a.final_branches() == c.final_branches());
    }

    #[test]
    fn batch_size_does_not_change_campaign_results() {
        let spec = spec_by_name("libcoap").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let reference = run_campaign(
            &spec,
            "cmfuzz",
            &setups,
            &CampaignOptions {
                batch: 1,
                ..small_options(21)
            },
        );
        // Batch size is a throughput knob: every size must walk the exact
        // same campaign, including one larger than a whole round.
        for batch in [7, 16, 64, 1000] {
            let options = CampaignOptions {
                batch,
                ..small_options(21)
            };
            let result = run_campaign(&spec, "cmfuzz", &setups, &options);
            assert_eq!(result.curve, reference.curve, "batch {batch}");
            assert_eq!(result.coverage, reference.coverage, "batch {batch}");
            assert_eq!(result.stats, reference.stats, "batch {batch}");
            assert_eq!(
                result.faults.unique_count(),
                reference.faults.unique_count(),
                "batch {batch}"
            );
            // The full Debug render covers every field, including ones
            // future changes add — batch size must be invisible in all of
            // them.
            assert_eq!(
                format!("{result:?}"),
                format!("{reference:?}"),
                "batch {batch}"
            );
        }
    }

    #[test]
    fn campaign_coverage_bitset_matches_final_curve_point() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let result = run_campaign(&spec, "peach", &setups, &small_options(5));
        assert_eq!(
            result.coverage.covered_count(),
            result.final_branches(),
            "the mergeable bitset and the curve must agree on final union coverage"
        );
    }

    #[test]
    fn telemetry_does_not_perturb_campaign_results() {
        use cmfuzz_telemetry::RingBufferSink;

        let spec = spec_by_name("libcoap").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let plain = run_campaign(&spec, "peach", &setups, &small_options(9));

        let ring = RingBufferSink::new(4096);
        let telemetry = Telemetry::builder(VirtualClock::new())
            .sink(Box::new(ring.clone()))
            .build();
        let observed =
            run_campaign_with_telemetry(&spec, "peach", &setups, &small_options(9), &telemetry);

        assert_eq!(plain.curve, observed.curve, "instrumentation-free results");
        assert_eq!(plain.faults.unique_count(), observed.faults.unique_count());
        assert_eq!(plain.stats, observed.stats);

        assert_eq!(ring.count_of_kind("campaign_started"), 1);
        assert_eq!(ring.count_of_kind("campaign_finished"), 1);
        assert_eq!(ring.count_of_kind("round_completed"), 6, "600/100 budget");
        assert_eq!(
            ring.count_of_kind("fault_found"),
            observed.faults.unique_count()
        );
        assert_eq!(telemetry.dropped_events(), 0);
        let snap = telemetry.metrics_snapshot();
        assert_eq!(
            snap.counter("engine.sessions"),
            Some(observed.stats.sessions)
        );
        assert_eq!(snap.counter("campaign.rounds"), Some(6));
        // Each instance spent the whole budget in the fuzzing phase.
        for instance in 0..2 {
            assert_eq!(
                telemetry.phase_breakdown(instance),
                vec![("fuzzing".to_owned(), Ticks::new(600))]
            );
        }
    }

    #[test]
    fn config_mutations_are_logged_with_their_instance() {
        let spec = spec_by_name("libcoap").unwrap();
        let model = cmfuzz_config_model::extract_model(&{
            let target = (spec.build)();
            target.config_space()
        });
        let setups = vec![InstanceSetup {
            adaptive_entities: model
                .mutable_entities()
                .map(|e| (e.name().to_owned(), e.values().to_vec()))
                .collect(),
            ..InstanceSetup::default()
        }];
        let options = CampaignOptions {
            instances: 1,
            budget: Ticks::new(2000),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(200),
            seed: 4,
            ..CampaignOptions::default()
        };
        let result = run_campaign(&spec, "cmfuzz", &setups, &options);
        assert!(
            !result.config_mutations.is_empty(),
            "saturation must have fired at least once"
        );
        for event in &result.config_mutations {
            assert_eq!(event.instance, 0);
            assert!(model.entity(&event.entity).is_some());
            assert!(event.time > Ticks::ZERO);
        }
    }

    #[test]
    fn adaptive_mutation_unlocks_config_branches() {
        let spec = spec_by_name("mosquitto").unwrap();
        let model = cmfuzz_config_model::extract_model(&{
            let target = (spec.build)();
            target.config_space()
        });
        let adaptive: Vec<(String, Vec<ConfigValue>)> = model
            .mutable_entities()
            .map(|e| (e.name().to_owned(), e.values().to_vec()))
            .collect();
        let with_adaptive = vec![InstanceSetup {
            adaptive_entities: adaptive,
            ..InstanceSetup::default()
        }];
        let without = vec![InstanceSetup::default()];
        let options = CampaignOptions {
            instances: 1,
            budget: Ticks::new(3000),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(200),
            seed: 3,
            ..CampaignOptions::default()
        };
        let adaptive_result = run_campaign(&spec, "cmfuzz", &with_adaptive, &options);
        let static_result = run_campaign(&spec, "peach", &without, &options);
        assert!(
            adaptive_result.final_branches() > static_result.final_branches(),
            "adaptive {} <= static {}",
            adaptive_result.final_branches(),
            static_result.final_branches()
        );
    }

    #[test]
    fn sliced_campaign_reproduces_the_uninterrupted_run() {
        let spec = spec_by_name("mosquitto").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let options = small_options(7);
        let reference = run_campaign(&spec, "peach", &setups, &options);

        let mut checkpoint = None;
        loop {
            let (next, report) = run_campaign_slice(
                &spec,
                "peach",
                &setups,
                &options,
                checkpoint.take(),
                Ticks::new(200),
            )
            .expect("slice runs");
            let done = report.done;
            checkpoint = Some(next);
            if done {
                break;
            }
        }
        let sliced = checkpoint.expect("final checkpoint").into_result();
        assert_eq!(
            format!("{reference:?}"),
            format!("{sliced:?}"),
            "three 200-tick slices must be invisible"
        );
    }

    #[test]
    fn slice_reports_carry_scheduling_signals() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let options = small_options(1);
        let (first, report) =
            run_campaign_slice(&spec, "peach", &setups, &options, None, Ticks::new(300))
                .expect("first slice");
        assert_eq!(report.rounds, 3);
        assert!(!report.done);
        assert!(report.sessions > 0, "instances actually fuzzed");
        assert_eq!(report.union_branches, first.union_branches());
        assert_eq!(first.rounds_done(), 3);
        assert_eq!(first.consumed(), Ticks::new(300));
        assert!(!first.is_complete());

        let (second, rest) = run_campaign_slice(
            &spec,
            "peach",
            &setups,
            &options,
            Some(first),
            // Oversized slice budgets are clamped to the remaining rounds.
            Ticks::new(10_000),
        )
        .expect("second slice");
        assert_eq!(rest.rounds, 3);
        assert!(rest.done);
        assert!(second.is_complete());
        assert_eq!(second.consumed(), Ticks::new(600));

        // A completed campaign has nothing left to run.
        let (done, idle) = run_campaign_slice(
            &spec,
            "peach",
            &setups,
            &options,
            Some(second),
            Ticks::new(100),
        )
        .expect("idle slice");
        assert_eq!(idle.rounds, 0);
        assert!(idle.done);
        assert_eq!(done.rounds_done(), 6);
    }

    #[test]
    fn control_signals_interrupt_at_round_boundaries_without_drift() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let options = small_options(3);
        let reference = run_campaign(&spec, "peach", &setups, &options);

        // A raised pause stops the very first slice before any round runs.
        let control = CampaignControl::new();
        control.pause();
        assert!(control.is_paused());
        let telemetry = Telemetry::disabled();
        let (paused, report) = run_campaign_slice_with_control(
            &spec,
            "peach",
            &setups,
            &options,
            None,
            Ticks::new(10_000),
            &telemetry,
            Some(&control),
        )
        .expect("paused slice");
        assert!(report.interrupted, "pause must interrupt the slice");
        assert_eq!(report.rounds, 0);
        assert!(!report.done);
        assert_eq!(paused.rounds_done(), 0);

        // Resume mid-slice: raise the pause again after boot, run one
        // slice that covers the whole budget — it still stops at the first
        // boundary check it sees the signal at.
        control.resume();
        assert!(!control.should_stop());
        let (finished, rest) = run_campaign_slice_with_control(
            &spec,
            "peach",
            &setups,
            &options,
            Some(paused),
            Ticks::new(10_000),
            &telemetry,
            Some(&control),
        )
        .expect("resumed slice");
        assert!(rest.done);
        assert!(!rest.interrupted);
        assert_eq!(
            format!("{reference:?}"),
            format!("{:?}", finished.into_result()),
            "an interrupted-then-resumed campaign must not drift"
        );

        // Kill is permanent: resume does not clear it.
        let control = CampaignControl::new();
        control.kill();
        control.resume();
        assert!(control.is_killed());
        assert!(control.should_stop());
    }

    #[test]
    fn empty_setups_are_a_typed_error() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let err = try_run_campaign(&spec, "peach", &[], &small_options(1))
            .expect_err("no instances to run");
        assert_eq!(err, CampaignError::NoInstances);
    }

    #[test]
    fn impaired_campaigns_are_deterministic_and_cost_coverage() {
        let spec = spec_by_name("libcoap").unwrap();
        let setups = vec![InstanceSetup::default(); 2];
        let lossy = CampaignOptions {
            link: LinkConditions::new(0.3, 0.1, 0.1),
            ..small_options(9)
        };
        let a = run_campaign(&spec, "peach", &setups, &lossy);
        let b = run_campaign(&spec, "peach", &setups, &lossy);
        assert_eq!(a.curve, b.curve, "same seed, same impairment pattern");
        assert!(a.final_branches() > 0, "fuzzing survives the lossy link");
        let perfect = run_campaign(&spec, "peach", &setups, &small_options(9));
        assert_ne!(
            a.curve, perfect.curve,
            "a 30% lossy link must actually change what the campaign sees"
        );
    }

    #[test]
    fn conflicting_initial_config_falls_back_to_defaults() {
        let spec = spec_by_name("mosquitto").unwrap();
        let mut bad = ResolvedConfig::new();
        bad.set("auth-method", ConfigValue::Str("tls".into()));
        bad.set("tls_enabled", ConfigValue::Bool(false));
        let setups = vec![InstanceSetup {
            initial_config: bad,
            ..InstanceSetup::default()
        }];
        // Preflight would (correctly) reject this setup before the runner
        // ever sees it; skip it to exercise the boot-time fallback.
        let options = CampaignOptions {
            skip_preflight: true,
            ..small_options(2)
        };
        let result = run_campaign(&spec, "cmfuzz", &setups, &options);
        assert!(
            result.final_branches() > 0,
            "campaign survived the conflict"
        );
    }

    #[test]
    fn preflight_rejects_conflicting_setup_before_any_instance_starts() {
        let spec = spec_by_name("mosquitto").unwrap();
        let mut bad = ResolvedConfig::new();
        bad.set("auth-method", ConfigValue::Str("tls".into()));
        bad.set("tls_enabled", ConfigValue::Bool(false));
        let setups = vec![InstanceSetup {
            initial_config: bad,
            ..InstanceSetup::default()
        }];
        let err = try_run_campaign(&spec, "cmfuzz", &setups, &small_options(2))
            .expect_err("preflight must reject the conflicting setup");
        let CampaignError::Preflight(diagnostics) = err else {
            panic!("expected Preflight, got {err}");
        };
        assert!(diagnostics.iter().any(|d| d.code() == "CM014"));
        assert!(err_display_mentions_preflight(&diagnostics));
    }

    fn err_display_mentions_preflight(diagnostics: &[cmfuzz_analyze::Diagnostic]) -> bool {
        CampaignError::Preflight(diagnostics.to_vec())
            .to_string()
            .contains("preflight rejected the campaign")
    }

    #[test]
    fn session_plans_are_honoured() {
        let spec = spec_by_name("mosquitto").unwrap();
        // A plan that only ever sends Connect: the Publish path is absent.
        let connect_only = vec![InstanceSetup {
            session_plans: vec![vec!["Connect".to_owned()]],
            ..InstanceSetup::default()
        }];
        let free = vec![InstanceSetup::default()];
        let options = small_options(5);
        let constrained = run_campaign(&spec, "spfuzz", &connect_only, &options);
        let unconstrained = run_campaign(&spec, "peach", &free, &options);
        assert!(
            constrained.final_branches() < unconstrained.final_branches(),
            "restricting sessions must cost coverage"
        );
    }
}
