//! The three fuzzers of the evaluation: CMFuzz and the two baselines.

use cmfuzz_config_model::ConfigValue;
use cmfuzz_fuzzer::pit;
use cmfuzz_protocols::ProtocolSpec;
use cmfuzz_telemetry::Telemetry;

use crate::campaign::{try_run_campaign_with_telemetry, CampaignOptions, InstanceSetup};
use crate::error::CampaignError;
use crate::metrics::CampaignResult;
use crate::schedule::{build_schedule_with_telemetry, Schedule, ScheduleOptions};

/// Converts a CMFuzz [`Schedule`] into instance setups: each instance gets
/// its group's startup configuration and may adaptively mutate exactly its
/// own entities.
#[must_use]
pub fn cmfuzz_setups(schedule: &Schedule, instances: usize) -> Vec<InstanceSetup> {
    let mut setups: Vec<InstanceSetup> = schedule
        .plans
        .iter()
        .map(|plan| {
            let adaptive: Vec<(String, Vec<ConfigValue>)> = plan
                .entities
                .iter()
                .filter_map(|name| schedule.model.entity(name))
                .filter(|e| e.is_mutable())
                .map(|e| (e.name().to_owned(), e.values().to_vec()))
                .collect();
            InstanceSetup {
                initial_config: plan.initial_config.clone(),
                adaptive_entities: adaptive,
                session_plans: Vec::new(),
            }
        })
        .collect();
    // A tiny configuration model can yield fewer groups than instances;
    // surplus instances run under defaults, like the baselines.
    while setups.len() < instances {
        setups.push(InstanceSetup::default());
    }
    setups.truncate(instances);
    setups
}

/// Peach parallel mode: N identical instances under the default
/// configuration, distinguished only by their RNG seeds (which the
/// campaign runner derives per instance). No configuration awareness, no
/// seed synchronization.
#[must_use]
pub fn peach_setups(instances: usize) -> Vec<InstanceSetup> {
    vec![InstanceSetup::default(); instances]
}

/// SPFuzz: state-aware path-based parallelization. The state model's
/// simple paths are enumerated and partitioned round-robin across
/// instances, so each instance systematically exercises its own slice of
/// the state space; retained seeds are synchronized by the campaign
/// runner. Still default-configuration only — that is the gap CMFuzz
/// exploits.
#[must_use]
pub fn spfuzz_setups(spec: &ProtocolSpec, instances: usize) -> Vec<InstanceSetup> {
    match try_spfuzz_setups(spec, instances) {
        Ok(setups) => setups,
        Err(error) => panic!("{error}"),
    }
}

/// [`spfuzz_setups`] with the registry Pit parse surfaced as a typed
/// error instead of a panic.
///
/// # Errors
///
/// Returns [`CampaignError::PitParse`] when the subject's Pit document is
/// broken.
pub fn try_spfuzz_setups(
    spec: &ProtocolSpec,
    instances: usize,
) -> Result<Vec<InstanceSetup>, CampaignError> {
    const PLAN_LEN: usize = 6;
    let parsed = pit::parse(spec.pit_document).map_err(|error| CampaignError::PitParse {
        target: spec.name.to_owned(),
        error,
    })?;
    let mut plans_per_instance: Vec<Vec<Vec<String>>> = vec![Vec::new(); instances];
    if let Some(state_model) = parsed.state_model() {
        // Simple paths stop at the first state revisit; extend each to a
        // full session by walking onward deterministically, with one
        // rotation per outgoing transition so loop bodies get distinct
        // interleavings (this is the "path" inventory SPFuzz schedules).
        let mut plans: Vec<Vec<String>> = Vec::new();
        for path in state_model.enumerate_paths(PLAN_LEN) {
            let mut plan: Vec<String> = path.iter().map(|t| t.input_model.clone()).collect();
            let state = path.last().map(|t| t.next_state.clone());
            let rotations = state
                .as_deref()
                .and_then(|s| state_model.state_by_name(s))
                .map_or(1, |s| s.transitions.len().max(1));
            for rotation in 0..rotations {
                let mut extended = plan.clone();
                let mut at = state.clone();
                let mut step = rotation;
                while extended.len() < PLAN_LEN {
                    let Some(current) = at.as_deref().and_then(|s| state_model.state_by_name(s))
                    else {
                        break;
                    };
                    if current.transitions.is_empty() {
                        break;
                    }
                    let t = &current.transitions[step % current.transitions.len()];
                    extended.push(t.input_model.clone());
                    at = Some(t.next_state.clone());
                    step += 1;
                }
                if !plans.contains(&extended) {
                    plans.push(extended);
                }
            }
            // Also keep the bare path if it is already full length.
            if plan.len() >= PLAN_LEN && !plans.contains(&plan) {
                plans.push(std::mem::take(&mut plan));
            }
        }
        // Keep only maximal plans: a strict prefix of another plan wastes a
        // whole session on states a longer plan reaches anyway.
        let maximal: Vec<&Vec<String>> = plans
            .iter()
            .filter(|p| {
                !plans
                    .iter()
                    .any(|q| q.len() > p.len() && q[..p.len()] == p[..])
            })
            .collect();
        for (i, plan) in maximal.into_iter().enumerate() {
            plans_per_instance[i % instances].push(plan.clone());
        }
    }
    Ok(plans_per_instance
        .into_iter()
        .map(|session_plans| InstanceSetup {
            session_plans,
            ..InstanceSetup::default()
        })
        .collect())
}

/// Runs the full CMFuzz pipeline on one subject: schedule (extract →
/// quantify → allocate → reassemble), then the parallel campaign with
/// adaptive configuration mutation.
#[must_use]
pub fn run_cmfuzz(
    spec: &ProtocolSpec,
    schedule_options: &ScheduleOptions,
    options: &CampaignOptions,
) -> CampaignResult {
    run_cmfuzz_with(spec, schedule_options, options, &Telemetry::disabled())
}

/// [`run_cmfuzz`] with an observability pipeline attached to both the
/// scheduling phase and the campaign.
///
/// # Panics
///
/// Panics on any [`CampaignError`]; use [`try_run_cmfuzz_with`] to handle
/// failures programmatically.
#[must_use]
pub fn run_cmfuzz_with(
    spec: &ProtocolSpec,
    schedule_options: &ScheduleOptions,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> CampaignResult {
    match try_run_cmfuzz_with(spec, schedule_options, options, telemetry) {
        Ok(result) => result,
        Err(error) => panic!("campaign failed: {error}"),
    }
}

/// [`run_cmfuzz_with`] with typed campaign failures.
///
/// # Errors
///
/// As [`crate::campaign::try_run_campaign`].
pub fn try_run_cmfuzz_with(
    spec: &ProtocolSpec,
    schedule_options: &ScheduleOptions,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> Result<CampaignResult, CampaignError> {
    let mut scratch = (spec.build)();
    let schedule =
        build_schedule_with_telemetry(&mut scratch, options.instances, schedule_options, telemetry);
    let setups = cmfuzz_setups(&schedule, options.instances);
    try_run_campaign_with_telemetry(spec, "cmfuzz", &setups, options, telemetry)
}

/// Runs the Peach-parallel baseline on one subject.
///
/// Peach is a pure generation-based fuzzer: it carries no coverage
/// feedback loop, so its engines run with seed retention disabled
/// (instrumentation still *measures* coverage — it just never guides
/// generation, exactly as with the community edition the paper builds on).
#[must_use]
pub fn run_peach(spec: &ProtocolSpec, options: &CampaignOptions) -> CampaignResult {
    run_peach_with(spec, options, &Telemetry::disabled())
}

/// [`run_peach`] with an observability pipeline attached.
///
/// # Panics
///
/// Panics on any [`CampaignError`]; use [`try_run_peach_with`] to handle
/// failures programmatically.
#[must_use]
pub fn run_peach_with(
    spec: &ProtocolSpec,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> CampaignResult {
    match try_run_peach_with(spec, options, telemetry) {
        Ok(result) => result,
        Err(error) => panic!("campaign failed: {error}"),
    }
}

/// [`run_peach_with`] with typed campaign failures.
///
/// # Errors
///
/// As [`crate::campaign::try_run_campaign`].
pub fn try_run_peach_with(
    spec: &ProtocolSpec,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> Result<CampaignResult, CampaignError> {
    let setups = peach_setups(options.instances);
    let mut options = options.clone();
    options.engine.seed_reuse_rate = 0.0;
    try_run_campaign_with_telemetry(spec, "peach", &setups, &options, telemetry)
}

/// Runs the SPFuzz baseline on one subject (enables seed synchronization
/// every 4 rounds unless the caller configured it).
#[must_use]
pub fn run_spfuzz(spec: &ProtocolSpec, options: &CampaignOptions) -> CampaignResult {
    run_spfuzz_with(spec, options, &Telemetry::disabled())
}

/// [`run_spfuzz`] with an observability pipeline attached.
///
/// # Panics
///
/// Panics on any [`CampaignError`]; use [`try_run_spfuzz_with`] to handle
/// failures programmatically.
#[must_use]
pub fn run_spfuzz_with(
    spec: &ProtocolSpec,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> CampaignResult {
    match try_run_spfuzz_with(spec, options, telemetry) {
        Ok(result) => result,
        Err(error) => panic!("campaign failed: {error}"),
    }
}

/// [`run_spfuzz_with`] with typed campaign failures.
///
/// # Errors
///
/// As [`crate::campaign::try_run_campaign`].
pub fn try_run_spfuzz_with(
    spec: &ProtocolSpec,
    options: &CampaignOptions,
    telemetry: &Telemetry,
) -> Result<CampaignResult, CampaignError> {
    let setups = try_spfuzz_setups(spec, options.instances)?;
    let mut options = options.clone();
    if options.seed_sync_every_rounds.is_none() {
        options.seed_sync_every_rounds = Some(4);
    }
    try_run_campaign_with_telemetry(spec, "spfuzz", &setups, &options, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_coverage::Ticks;
    use cmfuzz_protocols::spec_by_name;

    fn options(seed: u64, budget: u64) -> CampaignOptions {
        CampaignOptions {
            instances: 2,
            budget: Ticks::new(budget),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(300),
            seed,
            ..CampaignOptions::default()
        }
    }

    #[test]
    fn spfuzz_setups_partition_paths() {
        let spec = spec_by_name("mosquitto").unwrap();
        let setups = spfuzz_setups(&spec, 3);
        assert_eq!(setups.len(), 3);
        let total_paths: usize = setups.iter().map(|s| s.session_plans.len()).sum();
        assert!(total_paths > 3, "MQTT state model has many simple paths");
        // Disjoint partitions.
        for (i, a) in setups.iter().enumerate() {
            for b in setups.iter().skip(i + 1) {
                for plan in &a.session_plans {
                    assert!(!b.session_plans.contains(plan));
                }
            }
        }
    }

    #[test]
    fn peach_setups_are_identical_defaults() {
        let setups = peach_setups(4);
        assert_eq!(setups.len(), 4);
        for setup in &setups {
            assert!(setup.initial_config.is_empty());
            assert!(setup.adaptive_entities.is_empty());
            assert!(setup.session_plans.is_empty());
        }
    }

    #[test]
    fn cmfuzz_beats_peach_on_coap_in_a_short_run() {
        // The canonical end-to-end check: same budget, same subject, CMFuzz
        // reaches configuration-gated branches Peach cannot.
        let spec = spec_by_name("libcoap").unwrap();
        let opts = options(11, 2000);
        let cm = run_cmfuzz(&spec, &ScheduleOptions::default(), &opts);
        let peach = run_peach(&spec, &opts);
        assert!(
            cm.final_branches() > peach.final_branches(),
            "cmfuzz {} <= peach {}",
            cm.final_branches(),
            peach.final_branches()
        );
        // And its curve leads early (startup configurations).
        let cm_first = cm.curve.points()[0].1;
        let peach_first = peach.curve.points()[0].1;
        assert!(
            cm_first > peach_first,
            "early lead missing: {cm_first} <= {peach_first}"
        );
    }

    #[test]
    fn cmfuzz_finds_config_gated_bugs_baselines_miss() {
        let spec = spec_by_name("libcoap").unwrap();
        let opts = CampaignOptions {
            instances: 4,
            budget: Ticks::new(4000),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(400),
            seed: 21,
            ..CampaignOptions::default()
        };
        let cm = run_cmfuzz(&spec, &ScheduleOptions::default(), &opts);
        let peach = run_peach(&spec, &opts);
        assert!(
            cm.faults.unique_count() >= peach.faults.unique_count(),
            "cmfuzz found fewer bugs than peach"
        );
    }
}
