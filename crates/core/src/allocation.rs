//! Cohesive grouping and parallel allocation — Algorithm 2 of the paper.

use crate::graph::RelationGraph;

/// Options for the allocation strategy; the defaults implement Algorithm 2
/// verbatim, the alternatives exist for ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct AllocationOptions {
    /// Square the `FindBest` numerator ("the numerator is squared to
    /// amplify the effect of stronger connections", paper). `false` uses a
    /// linear numerator for ablation.
    pub squared_numerator: bool,
}

impl Default for AllocationOptions {
    fn default() -> Self {
        AllocationOptions {
            squared_numerator: true,
        }
    }
}

/// Partitions the relation graph's nodes into at most `instances` cohesive
/// groups — Algorithm 2 (`SortByWeight` + `GroupNextEdge` + `FindBest`).
///
/// Edges are processed in descending weight order. While fewer than
/// `instances` groups exist, an edge between two unassigned entities seeds
/// a new group; afterwards unassigned entities join the group maximizing
/// `Score(G, C) = (Σ_{C'∈G} w(C,C'))² / |G|`. An edge with exactly one
/// assigned endpoint pulls the other endpoint into the same group.
///
/// Isolated nodes (no surviving edge) are appended round-robin to the
/// smallest groups afterwards, so every mutable entity lands somewhere —
/// they carry no relation information, so balance is the only criterion.
///
/// # Panics
///
/// Panics if `instances` is zero.
///
/// # Examples
///
/// ```
/// use cmfuzz::allocation::{allocate, AllocationOptions};
/// use cmfuzz::graph::RelationGraph;
///
/// let mut graph = RelationGraph::new();
/// graph.add_edge("a", "b", 1.0);
/// graph.add_edge("c", "d", 0.9);
/// graph.add_edge("a", "c", 0.1);
/// let groups = allocate(&graph, 2, &AllocationOptions::default());
/// assert_eq!(groups.len(), 2);
/// assert!(groups.iter().any(|g| g.contains(&"a".to_owned()) && g.contains(&"b".to_owned())));
/// ```
#[must_use]
pub fn allocate(
    graph: &RelationGraph,
    instances: usize,
    options: &AllocationOptions,
) -> Vec<Vec<String>> {
    assert!(instances > 0, "need at least one fuzzing instance");
    let node_count = graph.node_count();
    // group id per node; usize::MAX = unassigned (IsSet == false).
    let mut assignment: Vec<usize> = vec![usize::MAX; node_count];
    let mut groups: Vec<Vec<usize>> = Vec::new();

    for edge in graph.edges_sorted_desc() {
        let (c1, c2) = (edge.a, edge.b);
        let set1 = assignment[c1] != usize::MAX;
        let set2 = assignment[c2] != usize::MAX;
        match (set1, set2) {
            // Lines 9-17: neither endpoint assigned.
            (false, false) => {
                if groups.len() < instances {
                    // Lines 11-13: seed a new group with both entities.
                    assignment[c1] = groups.len();
                    assignment[c2] = groups.len();
                    groups.push(vec![c1, c2]);
                } else {
                    // Lines 15-17: place each entity into its best group.
                    for &node in &[c1, c2] {
                        let best = find_best(graph, node, &groups, options);
                        assignment[node] = best;
                        groups[best].push(node);
                    }
                }
            }
            // Lines 18-20: exactly one endpoint assigned — keep the pair
            // together.
            (true, false) => {
                let group = assignment[c1];
                assignment[c2] = group;
                groups[group].push(c2);
            }
            (false, true) => {
                let group = assignment[c2];
                assignment[c1] = group;
                groups[group].push(c1);
            }
            (true, true) => {}
        }
    }

    // Post-pass: isolated or otherwise unplaced nodes go to the smallest
    // groups for balance (they carry no relation signal).
    #[allow(clippy::needless_range_loop)] // `assignment` and `groups` are co-indexed
    for node in 0..node_count {
        if assignment[node] == usize::MAX {
            if groups.len() < instances {
                assignment[node] = groups.len();
                groups.push(vec![node]);
            } else {
                let smallest = groups
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, g)| g.len())
                    .map(|(i, _)| i)
                    .expect("instances > 0 yields at least one group");
                assignment[node] = smallest;
                groups[smallest].push(node);
            }
        }
    }

    groups
        .into_iter()
        .map(|g| g.into_iter().map(|i| graph.name_of(i).to_owned()).collect())
        .collect()
}

/// `FindBest` (paper): returns the index of the group maximizing
/// `Score(G, C) = (Σ w(C, C'))² / |G|`. Ties and the all-zero case fall to
/// the smallest group, which keeps instance loads balanced.
fn find_best(
    graph: &RelationGraph,
    node: usize,
    groups: &[Vec<usize>],
    options: &AllocationOptions,
) -> usize {
    let name = graph.name_of(node);
    let mut best_index = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (index, group) in groups.iter().enumerate() {
        let connection: f64 = group
            .iter()
            .filter_map(|&member| graph.weight_between(name, graph.name_of(member)))
            .sum();
        let numerator = if options.squared_numerator {
            connection * connection
        } else {
            connection
        };
        let score = numerator / group.len() as f64;
        // Strictly-greater keeps the first (and, for the zero case, the
        // earliest-smallest after the tie-break below).
        let better =
            score > best_score || (score == best_score && group.len() < groups[best_index].len());
        if better {
            best_score = score;
            best_index = index;
        }
    }
    best_index
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(group: &[String]) -> Vec<&str> {
        group.iter().map(String::as_str).collect()
    }

    #[test]
    fn strong_pairs_seed_groups() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_edge("c", "d", 0.9);
        g.add_edge("b", "c", 0.1);
        let groups = allocate(&g, 2, &AllocationOptions::default());
        assert_eq!(groups.len(), 2);
        assert_eq!(names(&groups[0]), vec!["a", "b"]);
        assert!(names(&groups[1]).contains(&"c"));
        assert!(names(&groups[1]).contains(&"d"));
    }

    #[test]
    fn attached_endpoint_joins_partner_group() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_edge("b", "e", 0.8); // e unassigned, b assigned → same group
        g.add_edge("c", "d", 0.9);
        let groups = allocate(&g, 2, &AllocationOptions::default());
        let ab_group = groups
            .iter()
            .find(|g| g.contains(&"a".to_owned()))
            .expect("a placed");
        assert!(ab_group.contains(&"e".to_owned()), "e follows b");
    }

    #[test]
    fn find_best_prefers_stronger_connections() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0); // group 0
        g.add_edge("c", "d", 0.95); // group 1
                                    // x-y edge processed after both groups exist; x strongly tied to
                                    // group 1's c.
        g.add_edge("x", "c", 0.9);
        g.add_edge("x", "y", 0.5);
        let groups = allocate(&g, 2, &AllocationOptions::default());
        let cd_group = groups
            .iter()
            .find(|g| g.contains(&"c".to_owned()))
            .expect("c placed");
        assert!(cd_group.contains(&"x".to_owned()), "x joins c's group");
    }

    #[test]
    fn isolated_nodes_balance_smallest_groups() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_edge("c", "d", 0.9);
        g.add_node("lone1");
        g.add_node("lone2");
        let groups = allocate(&g, 2, &AllocationOptions::default());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 3);
    }

    #[test]
    fn single_instance_gets_everything() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_edge("c", "d", 0.5);
        g.add_node("e");
        let groups = allocate(&g, 1, &AllocationOptions::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }

    #[test]
    fn more_instances_than_edges_still_covers_all_nodes() {
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_node("c");
        let groups = allocate(&g, 4, &AllocationOptions::default());
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert!(groups.len() <= 4);
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = RelationGraph::new();
        let groups = allocate(&g, 4, &AllocationOptions::default());
        assert!(groups.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one fuzzing instance")]
    fn zero_instances_panics() {
        let g = RelationGraph::new();
        let _ = allocate(&g, 0, &AllocationOptions::default());
    }

    #[test]
    fn every_node_assigned_exactly_once() {
        let mut g = RelationGraph::new();
        for (i, pair) in [("a", "b"), ("c", "d"), ("e", "f"), ("g", "h"), ("a", "c")]
            .iter()
            .enumerate()
        {
            g.add_edge(pair.0, pair.1, 1.0 - i as f64 * 0.1);
        }
        g.add_node("iso");
        let groups = allocate(&g, 3, &AllocationOptions::default());
        let mut all: Vec<String> = groups.iter().flatten().cloned().collect();
        all.sort();
        let mut expected: Vec<String> = g.node_names().to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn squared_vs_linear_numerator_can_differ() {
        // Node x: one strong tie (0.9) to a big group vs two mild ties
        // (0.5 each) to a small group. Squaring favours concentration.
        let mut g = RelationGraph::new();
        g.add_edge("a", "b", 1.0);
        g.add_edge("c", "d", 0.99);
        g.add_edge("a", "e", 0.98); // grow group 0 to 3 members
        g.add_edge("x", "a", 0.9);
        g.add_edge("x", "c", 0.55);
        g.add_edge("x", "d", 0.55);
        g.add_edge("x", "zz", 0.01); // processed last; x placed via FindBest? no —
                                     // x gets assigned when its first edge (x,a)
                                     // comes up as a one-set pair... ensure both
                                     // set before: actually (x,a): a is set, x not
                                     // → x joins a's group in Algorithm 2.
        let groups = allocate(&g, 2, &AllocationOptions::default());
        let a_group = groups
            .iter()
            .find(|g| g.contains(&"a".to_owned()))
            .expect("a placed");
        assert!(a_group.contains(&"x".to_owned()));
    }
}
