//! End-to-end configuration scheduling: extract → quantify → allocate →
//! reassemble per-instance configurations.

use cmfuzz_config_model::{extract_model, ConfigModel, ResolvedConfig};
use cmfuzz_coverage::{CoverageMap, Ticks};
use cmfuzz_fuzzer::Target;
use cmfuzz_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::allocation::{allocate, AllocationOptions};
use crate::graph::RelationGraph;
use crate::relation::{quantify_target, RelationOptions};

/// How entities are grouped across instances; `RelationAware` is CMFuzz,
/// `Random` is the ablation control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingStrategy {
    /// Relation-aware cohesive grouping (Algorithm 2).
    #[default]
    RelationAware,
    /// Uniform random partition with the given shuffle seed (ablation).
    Random(u64),
}

/// Options for [`build_schedule`].
#[derive(Debug, Clone, Default)]
pub struct ScheduleOptions {
    /// Relation-quantification options.
    pub relation: RelationOptions,
    /// Allocation options (Algorithm 2 knobs).
    pub allocation: AllocationOptions,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
}

/// One parallel instance's configuration assignment.
#[derive(Debug, Clone)]
pub struct InstancePlan {
    /// Instance index.
    pub index: usize,
    /// Names of the configuration entities this instance owns.
    pub entities: Vec<String>,
    /// The startup configuration: group entities bound to the values that
    /// maximized joint startup coverage (greedy per-entity search over
    /// each entity's typical values, keeping only combinations that boot).
    pub initial_config: ResolvedConfig,
}

/// The complete output of CMFuzz's scheduling phase.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The extracted generalized configuration model.
    pub model: ConfigModel,
    /// The relation-aware graph (empty under random grouping).
    pub graph: RelationGraph,
    /// Per-instance assignments, one per parallel fuzzing instance.
    pub plans: Vec<InstancePlan>,
}

/// Builds the full CMFuzz schedule for `target` with `instances` parallel
/// fuzzing instances: extracts the configuration model (Algorithm 1),
/// quantifies pairwise relation weights by startup coverage (§III-B1),
/// allocates cohesive groups (Algorithm 2), and reassembles each group into
/// a runtime-ready startup configuration (§III-B2).
///
/// # Panics
///
/// Panics if `instances` is zero.
///
/// # Examples
///
/// ```
/// use cmfuzz::schedule::{build_schedule, ScheduleOptions};
/// use cmfuzz_protocols::spec_by_name;
///
/// let spec = spec_by_name("dnsmasq").expect("subject exists");
/// let mut target = (spec.build)();
/// let schedule = build_schedule(&mut target, 4, &ScheduleOptions::default());
/// assert_eq!(schedule.plans.len(), 4);
/// ```
pub fn build_schedule<T: Target + ?Sized>(
    target: &mut T,
    instances: usize,
    options: &ScheduleOptions,
) -> Schedule {
    build_schedule_with_telemetry(target, instances, options, &Telemetry::disabled())
}

/// [`build_schedule`] with an observability pipeline attached: counts the
/// startup probes spent selecting each group's values (the
/// `schedule.startup_probes` counter) and attributes them to the owning
/// instance as a `"startup"` phase span (one virtual tick per target boot,
/// the same cost model the campaign's fuzzing spans use).
///
/// # Panics
///
/// As [`build_schedule`].
pub fn build_schedule_with_telemetry<T: Target + ?Sized>(
    target: &mut T,
    instances: usize,
    options: &ScheduleOptions,
    telemetry: &Telemetry,
) -> Schedule {
    assert!(instances > 0, "need at least one fuzzing instance");
    let model = extract_model(&target.config_space());

    let (graph, groups) = match options.grouping {
        GroupingStrategy::RelationAware => {
            let graph = quantify_target(target, &model, &options.relation);
            let groups = allocate(&graph, instances, &options.allocation);
            (graph, groups)
        }
        GroupingStrategy::Random(seed) => {
            let mut names: Vec<String> = model
                .mutable_entities()
                .map(|e| e.name().to_owned())
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            names.shuffle(&mut rng);
            let mut groups: Vec<Vec<String>> = vec![Vec::new(); instances.min(names.len()).max(1)];
            for (i, name) in names.into_iter().enumerate() {
                let slot = i % groups.len();
                groups[slot].push(name);
            }
            groups.retain(|g| !g.is_empty());
            (RelationGraph::new(), groups)
        }
    };

    let probes_counter = telemetry.counter("schedule.startup_probes");
    let plans = groups
        .into_iter()
        .enumerate()
        .map(|(index, entities)| {
            let (initial_config, probes) = choose_group_values(target, &model, &entities);
            probes_counter.add(probes);
            telemetry.span_record(index, "startup", Ticks::new(probes));
            InstancePlan {
                index,
                entities,
                initial_config,
            }
        })
        .collect();

    Schedule {
        model,
        graph,
        plans,
    }
}

/// Greedy per-group value selection: starting from the group's defaults,
/// each entity in turn tries its typical values and keeps whichever
/// maximizes startup coverage among configurations that actually boot.
/// This is the "reassembles the configuration entities ... back into
/// runtime-ready forms" step, instantiated so that each instance starts at
/// its group's strongest known configuration (the same signal the relation
/// weights were computed from).
fn choose_group_values<T: Target + ?Sized>(
    target: &mut T,
    model: &ConfigModel,
    entities: &[String],
) -> (ResolvedConfig, u64) {
    let mut probes: u64 = 0;
    let mut probe = |target: &mut T, config: &ResolvedConfig| {
        probes += 1;
        let map = CoverageMap::new(target.branch_count());
        target
            .start(config, map.probe())
            .ok()
            .map(|()| map.snapshot())
    };

    // Score candidates by the startup branches they reach BEYOND the stock
    // default boot — set difference, not raw counts, so a value that
    // replaces a default branch with a new one still registers as
    // progress.
    let default_baseline = probe(target, &ResolvedConfig::new())
        .unwrap_or_else(|| cmfuzz_coverage::CoverageSnapshot::empty(target.branch_count()));

    // Start from defaults for every group member.
    let mut config = ResolvedConfig::new();
    for name in entities {
        if let Some(entity) = model.entity(name) {
            config.set(name, entity.default_value().clone());
        }
    }
    let mut best = probe(target, &config).map_or(0, |s| s.newly_covered(&default_baseline));

    for name in entities {
        let Some(entity) = model.entity(name) else {
            continue;
        };
        if !entity.is_mutable() {
            continue;
        }
        let current = config.get(name).cloned();
        let mut best_value = current.clone();
        for value in entity.values() {
            if Some(value) == current.as_ref() {
                continue;
            }
            let mut candidate = config.clone();
            candidate.set(name, value.clone());
            if let Some(snapshot) = probe(target, &candidate) {
                let novelty = snapshot.newly_covered(&default_baseline);
                if novelty > best {
                    best = novelty;
                    best_value = Some(value.clone());
                }
            }
        }
        if let Some(value) = best_value {
            config.set(name, value);
        }
    }

    // Guarantee the chosen configuration boots; fall back to defaults-only
    // if greedy search somehow landed on a conflict.
    if probe(target, &config).is_none() {
        let mut fallback = ResolvedConfig::new();
        for name in entities {
            if let Some(entity) = model.entity(name) {
                fallback.set(name, entity.default_value().clone());
            }
        }
        return (fallback, probes);
    }
    (config, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_protocols::spec_by_name;

    #[test]
    fn schedule_covers_all_mutable_entities_once() {
        let spec = spec_by_name("mosquitto").unwrap();
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 4, &ScheduleOptions::default());
        assert_eq!(schedule.plans.len(), 4);

        let mut assigned: Vec<&String> = schedule.plans.iter().flat_map(|p| &p.entities).collect();
        assigned.sort();
        assigned.dedup();
        let mutable_count = schedule.model.mutable_entities().count();
        assert_eq!(
            assigned.len(),
            mutable_count,
            "each mutable entity placed once"
        );
    }

    #[test]
    fn every_plan_boots_its_target() {
        let spec = spec_by_name("libcoap").unwrap();
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 4, &ScheduleOptions::default());
        for plan in &schedule.plans {
            let map = CoverageMap::new(target.branch_count());
            target
                .start(&plan.initial_config, map.probe())
                .unwrap_or_else(|e| panic!("plan {} fails to boot: {e}", plan.index));
        }
    }

    #[test]
    fn chosen_configs_beat_plain_defaults_in_union() {
        let spec = spec_by_name("mosquitto").unwrap();
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 4, &ScheduleOptions::default());

        let startup_union = |configs: &[ResolvedConfig], target: &mut dyn Target| -> usize {
            let map = CoverageMap::new(target.branch_count());
            for config in configs {
                let _ = target.start(config, map.probe());
            }
            map.covered_count()
        };
        let scheduled: Vec<ResolvedConfig> = schedule
            .plans
            .iter()
            .map(|p| p.initial_config.clone())
            .collect();
        let defaults = vec![ResolvedConfig::new(); 4];
        let ours = startup_union(&scheduled, &mut target);
        let stock = startup_union(&defaults, &mut target);
        assert!(
            ours > stock,
            "scheduled configs ({ours}) must beat defaults ({stock}) at startup"
        );
    }

    #[test]
    fn random_grouping_still_partitions_everything() {
        let spec = spec_by_name("dnsmasq").unwrap();
        let mut target = (spec.build)();
        let options = ScheduleOptions {
            grouping: GroupingStrategy::Random(7),
            ..ScheduleOptions::default()
        };
        let schedule = build_schedule(&mut target, 4, &options);
        assert_eq!(schedule.graph.node_count(), 0, "no graph built");
        let total: usize = schedule.plans.iter().map(|p| p.entities.len()).sum();
        assert_eq!(total, schedule.model.mutable_entities().count());
    }

    #[test]
    fn scheduling_reports_startup_probe_spans() {
        use cmfuzz_coverage::VirtualClock;

        let spec = spec_by_name("mosquitto").unwrap();
        let mut target = (spec.build)();
        let telemetry = Telemetry::builder(VirtualClock::new()).build();
        let schedule =
            build_schedule_with_telemetry(&mut target, 4, &ScheduleOptions::default(), &telemetry);

        let probes = telemetry
            .metrics_snapshot()
            .counter("schedule.startup_probes")
            .unwrap();
        assert!(probes > 0, "value selection must probe the target");
        let span_total: u64 = schedule
            .plans
            .iter()
            .map(|p| {
                telemetry
                    .phase_breakdown(p.index)
                    .iter()
                    .filter(|(phase, _)| phase == "startup")
                    .map(|(_, total)| total.get())
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(span_total, probes, "every probe attributed to a span");
    }

    #[test]
    fn single_instance_schedule() {
        let spec = spec_by_name("qpid").unwrap();
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 1, &ScheduleOptions::default());
        assert_eq!(schedule.plans.len(), 1);
    }

    #[test]
    fn groups_differ_across_instances() {
        let spec = spec_by_name("mosquitto").unwrap();
        let mut target = (spec.build)();
        let schedule = build_schedule(&mut target, 4, &ScheduleOptions::default());
        // No two plans share an entity.
        for (i, a) in schedule.plans.iter().enumerate() {
            for b in schedule.plans.iter().skip(i + 1) {
                for entity in &a.entities {
                    assert!(!b.entities.contains(entity), "{entity} in two groups");
                }
            }
        }
    }
}
