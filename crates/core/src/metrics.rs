//! Campaign result types and the paper's evaluation metrics.

use cmfuzz_config_model::ConfigValue;
use cmfuzz_coverage::{CoverageSnapshot, Ticks};
use cmfuzz_fuzzer::FaultLog;
use serde::{Deserialize, Serialize};

/// One adaptive configuration mutation applied during a campaign
/// (paper §III-B2: value mutation on coverage saturation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigMutationEvent {
    /// Virtual time the mutation was applied.
    pub time: Ticks,
    /// Index of the instance whose configuration changed.
    pub instance: usize,
    /// Mutated entity name.
    pub entity: String,
    /// The value it was set to.
    pub value: ConfigValue,
}

/// A sample pushed onto a [`CoverageCurve`] out of time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveError {
    /// Time of the rejected sample.
    pub time: Ticks,
    /// Time of the last accepted sample, which `time` precedes.
    pub last: Ticks,
}

impl std::fmt::Display for CurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coverage sample at {} precedes last sample at {}",
            self.time, self.last
        )
    }
}

impl std::error::Error for CurveError {}

/// Union branch coverage sampled over virtual time.
///
/// # Examples
///
/// ```
/// use cmfuzz::metrics::CoverageCurve;
/// use cmfuzz_coverage::Ticks;
///
/// let mut curve = CoverageCurve::new();
/// curve.push(Ticks::new(0), 10).unwrap();
/// curve.push(Ticks::new(100), 25).unwrap();
/// curve.push(Ticks::new(100), 26).unwrap(); // equal timestamps are fine
/// assert!(curve.push(Ticks::new(50), 30).is_err());
/// assert_eq!(curve.final_branches(), 26);
/// assert_eq!(curve.time_to_reach(20), Some(Ticks::new(100)));
/// assert_eq!(curve.time_to_reach(27), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageCurve {
    points: Vec<(Ticks, usize)>,
}

impl CoverageCurve {
    /// Creates an empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; time must be non-decreasing (equal timestamps are
    /// accepted, e.g. two samplers sharing one clock reading).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] — and leaves the curve unchanged — if `time`
    /// precedes the last sample.
    pub fn push(&mut self, time: Ticks, branches: usize) -> Result<(), CurveError> {
        if let Some(&(last, _)) = self.points.last() {
            if time < last {
                return Err(CurveError { time, last });
            }
        }
        self.points.push((time, branches));
        Ok(())
    }

    /// The samples, time-ordered.
    #[must_use]
    pub fn points(&self) -> &[(Ticks, usize)] {
        &self.points
    }

    /// Branches covered at the final sample (0 for an empty curve).
    #[must_use]
    pub fn final_branches(&self) -> usize {
        self.points.last().map_or(0, |&(_, b)| b)
    }

    /// Earliest sampled time at which coverage reached `branches`.
    #[must_use]
    pub fn time_to_reach(&self, branches: usize) -> Option<Ticks> {
        self.points
            .iter()
            .find(|&&(_, b)| b >= branches)
            .map(|&(t, _)| t)
    }
}

/// Aggregate execution statistics across a campaign's instances, the
/// fairness evidence that every fuzzer consumed the same budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Fuzzing sessions executed, summed over instances.
    pub sessions: u64,
    /// Protocol messages sent, summed over instances.
    pub messages: u64,
    /// Fault events observed (duplicates included).
    pub crashes_observed: u64,
    /// Seeds retained into instance corpora, summed over instances.
    pub seeds_retained: u64,
    /// Seeds dropped as exact duplicates (same model, same bytes).
    pub seeds_deduped_exact: u64,
    /// Seeds dropped as MinHash near-duplicates (only when
    /// [`CorpusConfig::near_dedup`] is on).
    ///
    /// [`CorpusConfig::near_dedup`]: cmfuzz_fuzzer::CorpusConfig
    pub seeds_deduped_near: u64,
    /// Seeds evicted from full corpora to make room.
    pub seeds_evicted: u64,
    /// Seeds imported from other instances or campaigns (intra-campaign
    /// sync plus fleet-wide sharing).
    pub seeds_imported: u64,
}

/// Final corpus occupancy of one campaign, summed over its instances —
/// the evidence that corpus memory stays capped no matter how long the
/// campaign runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusOccupancy {
    /// Seeds resident across all instance corpora.
    pub seeds: usize,
    /// Approximate resident payload bytes. Seed buffers are `Arc`-shared
    /// between the corpus and in-flight outboxes, so each corpus entry is
    /// counted once at its payload length; index overhead is excluded.
    pub approx_bytes: usize,
}

/// The outcome of one parallel fuzzing campaign (one Table I cell for one
/// repetition).
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Fuzzer name (`"cmfuzz"`, `"peach"`, `"spfuzz"`).
    pub fuzzer: String,
    /// Target name (e.g. `"mosquitto"`).
    pub target: String,
    /// Parallel instances used.
    pub instances: usize,
    /// Virtual-time budget the campaign ran for.
    pub budget: Ticks,
    /// Union branch coverage over time, across all instances.
    pub curve: CoverageCurve,
    /// Final union coverage bitset across all instances — the mergeable
    /// form shard workers serialize back to the parent process.
    pub coverage: CoverageSnapshot,
    /// Deduplicated faults across all instances.
    pub faults: FaultLog,
    /// Adaptive configuration mutations, in application order.
    pub config_mutations: Vec<ConfigMutationEvent>,
    /// Aggregate execution statistics.
    pub stats: CampaignStats,
    /// Final corpus occupancy across instances.
    pub corpus: CorpusOccupancy,
}

impl CampaignResult {
    /// Final union branch count.
    #[must_use]
    pub fn final_branches(&self) -> usize {
        self.curve.final_branches()
    }

    /// Fraction (in `[0, 1]`) of the statically-reachable branch set this
    /// campaign covered. `reachable` is the upper bound the reachability
    /// preflight proved (`CampaignReach::reachable_branch_count`) — the
    /// honest denominator for partitioned campaigns, where raw
    /// coverage-of-total punishes an instance for branches its partition
    /// can never open. A zero bound yields `0.0`.
    #[must_use]
    pub fn coverage_of_reachable(&self, reachable: usize) -> f64 {
        if reachable == 0 {
            return 0.0;
        }
        self.final_branches() as f64 / reachable as f64
    }

    /// Renders a human-readable multi-line summary: headline numbers, the
    /// fault list, and the configuration mutations applied.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} on {}: {} branches, {} unique faults ({} observed), \
             {} sessions / {} messages over {} x {} instances, \
             corpus {} seeds / ~{} bytes\n",
            self.fuzzer,
            self.target,
            self.final_branches(),
            self.faults.unique_count(),
            self.faults.total_observed(),
            self.stats.sessions,
            self.stats.messages,
            self.budget,
            self.instances,
            self.corpus.seeds,
            self.corpus.approx_bytes,
        );
        for fault in self.faults.faults() {
            out.push_str(&format!("  fault: {fault}\n"));
        }
        for event in &self.config_mutations {
            out.push_str(&format!(
                "  config@{}: instance {} set {}={}\n",
                event.time,
                event.instance,
                event.entity,
                event.value.render(),
            ));
        }
        out
    }
}

/// Coverage improvement of `ours` over `baseline`, in percent (Table I's
/// *Improv* column).
///
/// # Examples
///
/// ```
/// use cmfuzz::metrics::improvement_pct;
///
/// assert_eq!(improvement_pct(134, 100), 34.0);
/// assert_eq!(improvement_pct(100, 0), 0.0, "degenerate baseline");
/// ```
#[must_use]
pub fn improvement_pct(ours: usize, baseline: usize) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (ours as f64 - baseline as f64) / baseline as f64 * 100.0
}

/// The paper's *Speedup* metric: "the baseline fuzzer's time to reach its
/// final coverage divided by the time CMFuzz requires to achieve the same
/// coverage".
///
/// Returns `None` when CMFuzz never reaches the baseline's final coverage
/// within its budget (did not occur in the paper, and should not here).
/// A CMFuzz time of zero (coverage reached at the very first sample) is
/// reported against half the first sampling interval to avoid an infinite
/// ratio.
#[must_use]
pub fn speedup(ours: &CoverageCurve, baseline: &CoverageCurve) -> Option<f64> {
    let target = baseline.final_branches();
    let baseline_time = baseline.time_to_reach(target)?;
    let our_time = ours.time_to_reach(target)?;
    let ours_ticks = if our_time == Ticks::ZERO {
        // Reached before the first inter-sample gap elapsed; attribute half
        // a sampling interval.
        let interval = ours.points().get(1).map_or(1, |&(t, _)| t.get().max(1));
        (interval as f64 / 2.0).max(0.5)
    } else {
        our_time.get() as f64
    };
    Some(baseline_time.get() as f64 / ours_ticks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(u64, usize)]) -> CoverageCurve {
        let mut c = CoverageCurve::new();
        for &(t, b) in points {
            c.push(Ticks::new(t), b).unwrap();
        }
        c
    }

    #[test]
    fn final_and_time_to_reach() {
        let c = curve(&[(0, 5), (10, 8), (20, 8), (30, 12)]);
        assert_eq!(c.final_branches(), 12);
        assert_eq!(c.time_to_reach(8), Some(Ticks::new(10)));
        assert_eq!(c.time_to_reach(12), Some(Ticks::new(30)));
        assert_eq!(c.time_to_reach(13), None);
        assert_eq!(c.time_to_reach(0), Some(Ticks::new(0)));
    }

    #[test]
    fn out_of_order_sample_is_rejected_and_curve_unchanged() {
        let mut c = CoverageCurve::new();
        c.push(Ticks::new(10), 1).unwrap();
        let err = c.push(Ticks::new(5), 2).unwrap_err();
        assert_eq!(
            err,
            CurveError {
                time: Ticks::new(5),
                last: Ticks::new(10),
            }
        );
        assert!(err.to_string().contains("precedes"));
        assert_eq!(c.points(), &[(Ticks::new(10), 1)]);
    }

    #[test]
    fn equal_timestamp_samples_are_accepted() {
        let mut c = CoverageCurve::new();
        c.push(Ticks::new(10), 1).unwrap();
        c.push(Ticks::new(10), 3).unwrap();
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.final_branches(), 3);
    }

    #[test]
    fn improvement_percentage() {
        assert!((improvement_pct(5668, 5668) - 0.0).abs() < 1e-9);
        assert!((improvement_pct(8835, 5668) - 55.88).abs() < 0.01);
        assert!(improvement_pct(50, 100) < 0.0, "regressions are negative");
    }

    #[test]
    fn speedup_basic() {
        // Baseline reaches its final 100 branches at t=1000; ours at t=10.
        let ours = curve(&[(0, 50), (10, 100), (1000, 120)]);
        let baseline = curve(&[(0, 40), (500, 80), (1000, 100)]);
        assert_eq!(speedup(&ours, &baseline), Some(100.0));
    }

    #[test]
    fn speedup_instant_lead_is_finite() {
        let ours = curve(&[(0, 100), (50, 110)]);
        let baseline = curve(&[(0, 40), (1000, 90)]);
        let s = speedup(&ours, &baseline).expect("reached");
        assert!(s.is_finite());
        assert_eq!(s, 1000.0 / 25.0);
    }

    #[test]
    fn speedup_none_when_unreached() {
        let ours = curve(&[(0, 10), (100, 20)]);
        let baseline = curve(&[(0, 40), (100, 90)]);
        assert_eq!(speedup(&ours, &baseline), None);
    }

    #[test]
    fn empty_curve_defaults() {
        let c = CoverageCurve::new();
        assert_eq!(c.final_branches(), 0);
        assert_eq!(c.time_to_reach(0), None);
        assert!(c.points().is_empty());
    }
}
