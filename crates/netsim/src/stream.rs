//! TCP-like byte-stream transport.

use std::fmt;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::{Addr, NetError, Network};

/// One end of a bidirectional, ordered, reliable byte stream.
///
/// Streams are in-memory and lossless (TCP semantics); link impairments
/// apply only to datagram transport, matching how the paper's targets see
/// the network.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::{Addr, Network};
///
/// # fn main() -> Result<(), cmfuzz_netsim::NetError> {
/// let net = Network::new("ns");
/// let listener = net.listen_stream(Addr::new(1, 1883))?;
/// let mut client = net.connect_stream(Addr::new(2, 50000), Addr::new(1, 1883))?;
/// let mut server = listener.try_accept().expect("pending connection");
///
/// client.send(b"CONNECT")?;
/// assert_eq!(server.try_read(), b"CONNECT");
/// server.send(b"CONNACK")?;
/// assert_eq!(client.try_read(), b"CONNACK");
/// # Ok(())
/// # }
/// ```
pub struct StreamConn {
    local: Addr,
    peer: Addr,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buffer: Vec<u8>,
}

impl StreamConn {
    /// Local address of this end.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.local
    }

    /// Address of the remote end.
    #[must_use]
    pub fn peer_addr(&self) -> Addr {
        self.peer
    }

    /// Writes `bytes` to the stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer end was dropped.
    pub fn send(&self, bytes: &[u8]) -> Result<(), NetError> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| NetError::Disconnected)
    }

    /// Reads all bytes currently available, without blocking.
    ///
    /// Returns an empty vector when nothing is pending; stream framing is
    /// the receiver's job, as with real TCP.
    pub fn try_read(&mut self) -> Vec<u8> {
        while let Ok(chunk) = self.rx.try_recv() {
            self.buffer.extend_from_slice(&chunk);
        }
        std::mem::take(&mut self.buffer)
    }

    /// Whether the peer end has been dropped and no data remains.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.rx.is_empty() && self.buffer.is_empty() && self.tx.send(Vec::new()).is_err()
    }
}

impl fmt::Debug for StreamConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamConn")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .finish()
    }
}

/// Accepts incoming [`StreamConn`]s at a fixed address.
///
/// Dropping the listener releases its address; connections already accepted
/// stay alive.
pub struct StreamListener {
    addr: Addr,
    incoming: Receiver<StreamConn>,
    net: Network,
}

impl StreamListener {
    /// Address this listener is bound at.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Accepts the next pending connection, if any.
    #[must_use]
    pub fn try_accept(&self) -> Option<StreamConn> {
        self.incoming.try_recv().ok()
    }

    /// Number of connections waiting to be accepted.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }
}

impl Drop for StreamListener {
    fn drop(&mut self) {
        self.net.inner.listeners.lock().remove(&self.addr);
    }
}

impl fmt::Debug for StreamListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamListener")
            .field("addr", &self.addr)
            .field("pending", &self.incoming.len())
            .finish()
    }
}

pub(crate) fn listen(net: &Network, addr: Addr) -> Result<StreamListener, NetError> {
    let mut listeners = net.inner.listeners.lock();
    if listeners.contains_key(&addr) {
        return Err(NetError::AddrInUse(addr));
    }
    let (tx, rx) = unbounded();
    listeners.insert(addr, tx);
    Ok(StreamListener {
        addr,
        incoming: rx,
        net: net.clone(),
    })
}

pub(crate) fn connect(net: &Network, local: Addr, remote: Addr) -> Result<StreamConn, NetError> {
    let listeners = net.inner.listeners.lock();
    let acceptor = listeners
        .get(&remote)
        .ok_or(NetError::ConnectionRefused(remote))?;

    let (client_tx, server_rx) = unbounded();
    let (server_tx, client_rx) = unbounded();
    let server_end = StreamConn {
        local: remote,
        peer: local,
        tx: server_tx,
        rx: server_rx,
        buffer: Vec::new(),
    };
    acceptor
        .send(server_end)
        .map_err(|_| NetError::ConnectionRefused(remote))?;
    Ok(StreamConn {
        local,
        peer: remote,
        tx: client_tx,
        rx: client_rx,
        buffer: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(net: &Network) -> (StreamConn, StreamConn) {
        let listener = net.listen_stream(Addr::new(1, 80)).unwrap();
        let client = net
            .connect_stream(Addr::new(2, 9000), Addr::new(1, 80))
            .unwrap();
        let server = listener.try_accept().unwrap();
        (client, server)
    }

    #[test]
    fn bidirectional_bytes_flow() {
        let net = Network::new("t");
        let (mut client, mut server) = pair(&net);
        client.send(b"hel").unwrap();
        client.send(b"lo").unwrap();
        assert_eq!(server.try_read(), b"hello");
        server.send(b"ok").unwrap();
        assert_eq!(client.try_read(), b"ok");
        assert_eq!(client.try_read(), b"");
    }

    #[test]
    fn addresses_are_symmetric() {
        let net = Network::new("t");
        let (client, server) = pair(&net);
        assert_eq!(client.local_addr(), server.peer_addr());
        assert_eq!(client.peer_addr(), server.local_addr());
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let net = Network::new("t");
        assert_eq!(
            net.connect_stream(Addr::new(2, 1), Addr::new(1, 80))
                .unwrap_err(),
            NetError::ConnectionRefused(Addr::new(1, 80))
        );
    }

    #[test]
    fn double_listen_fails() {
        let net = Network::new("t");
        let _l = net.listen_stream(Addr::new(1, 80)).unwrap();
        assert_eq!(
            net.listen_stream(Addr::new(1, 80)).unwrap_err(),
            NetError::AddrInUse(Addr::new(1, 80))
        );
    }

    #[test]
    fn listener_drop_releases_address() {
        let net = Network::new("t");
        {
            let _l = net.listen_stream(Addr::new(1, 80)).unwrap();
        }
        assert!(net.listen_stream(Addr::new(1, 80)).is_ok());
    }

    #[test]
    fn peer_drop_detected() {
        let net = Network::new("t");
        let (client, server) = pair(&net);
        assert!(!client.is_closed());
        drop(server);
        assert!(client.is_closed());
    }

    #[test]
    fn send_after_peer_drop_errors() {
        let net = Network::new("t");
        let (client, server) = pair(&net);
        drop(server);
        assert_eq!(client.send(b"x").unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn multiple_connections_queue_in_order() {
        let net = Network::new("t");
        let listener = net.listen_stream(Addr::new(1, 80)).unwrap();
        let _c1 = net
            .connect_stream(Addr::new(2, 1), Addr::new(1, 80))
            .unwrap();
        let _c2 = net
            .connect_stream(Addr::new(3, 1), Addr::new(1, 80))
            .unwrap();
        assert_eq!(listener.pending(), 2);
        assert_eq!(listener.try_accept().unwrap().peer_addr(), Addr::new(2, 1));
        assert_eq!(listener.try_accept().unwrap().peer_addr(), Addr::new(3, 1));
        assert!(listener.try_accept().is_none());
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let net = Network::new("t");
        let listener = net.listen_stream(Addr::new(1, 80)).unwrap();
        let client = net
            .connect_stream(Addr::new(2, 1), Addr::new(1, 80))
            .unwrap();
        assert!(format!("{listener:?}").contains("StreamListener"));
        assert!(format!("{client:?}").contains("StreamConn"));
    }
}
