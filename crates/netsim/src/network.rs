//! The network namespace and datagram transport.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::{self, StreamConn, StreamListener};
use crate::{Addr, LinkConditions, NetError};

/// A datagram in flight: source, destination and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Address of the sending socket.
    pub src: Addr,
    /// Address of the receiving socket.
    pub dst: Addr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

struct LinkState {
    conditions: LinkConditions,
    rng: StdRng,
    /// A datagram held back by the reordering model, delivered after the
    /// next transmission to the same destination.
    held: Option<Datagram>,
}

pub(crate) struct Inner {
    name: String,
    datagram_bindings: Mutex<HashMap<Addr, Sender<Datagram>>>,
    pub(crate) listeners: Mutex<HashMap<Addr, Sender<StreamConn>>>,
    link: Mutex<LinkState>,
}

impl Inner {
    fn deliver(&self, datagram: Datagram) -> Result<(), NetError> {
        let bindings = self.datagram_bindings.lock();
        let sender = bindings
            .get(&datagram.dst)
            .ok_or(NetError::Unreachable(datagram.dst))?;
        sender.send(datagram).map_err(|_| NetError::Disconnected)
    }

    fn transmit(&self, datagram: Datagram) -> Result<(), NetError> {
        let mut link = self.link.lock();
        if link.conditions.is_perfect() {
            drop(link);
            return self.deliver(datagram);
        }
        let mut to_deliver = Vec::with_capacity(2);
        let loss = link.conditions.loss();
        let dup = link.conditions.duplicate();
        let reorder = link.conditions.reorder();
        if loss > 0.0 && link.rng.random::<f64>() < loss {
            // Dropped; still release any held datagram so it is not stuck
            // behind a lost packet forever.
            if let Some(held) = link.held.take() {
                to_deliver.push(held);
            }
        } else if reorder > 0.0 && link.held.is_none() && link.rng.random::<f64>() < reorder {
            link.held = Some(datagram);
        } else {
            let duplicated = dup > 0.0 && link.rng.random::<f64>() < dup;
            if duplicated {
                to_deliver.push(datagram.clone());
            }
            to_deliver.push(datagram);
            if let Some(held) = link.held.take() {
                to_deliver.push(held);
            }
        }
        drop(link);
        for d in to_deliver {
            // Best-effort: an unreachable duplicate must not fail the send.
            let _ = self.deliver(d);
        }
        Ok(())
    }

    /// Transmits a burst of datagrams stored back-to-back in `arena`, each
    /// addressed by an `(offset, len)` range from `src` to `dst`.
    ///
    /// On a perfect link this resolves the destination's channel once and
    /// pushes every payload under a single bindings lock; on an impaired
    /// link it falls back to per-datagram [`Inner::transmit`] so the
    /// impairment RNG draws in exactly the order sequential sends would.
    fn transmit_many(
        &self,
        src: Addr,
        dst: Addr,
        arena: &[u8],
        ranges: &[(u32, u32)],
    ) -> Result<(), NetError> {
        if !self.link.lock().conditions.is_perfect() {
            for &(start, len) in ranges {
                self.transmit(Datagram {
                    src,
                    dst,
                    payload: arena[start as usize..(start + len) as usize].to_vec(),
                })?;
            }
            return Ok(());
        }
        let bindings = self.datagram_bindings.lock();
        let sender = bindings.get(&dst).ok_or(NetError::Unreachable(dst))?;
        sender
            .send_many(ranges.iter().map(|&(start, len)| Datagram {
                src,
                dst,
                payload: arena[start as usize..(start + len) as usize].to_vec(),
            }))
            .map_err(|_| NetError::Disconnected)?;
        Ok(())
    }
}

/// One isolated network namespace.
///
/// Sockets bound on the same `Network` can exchange traffic; sockets on
/// different `Network`s cannot, by construction — there is no global routing
/// table. Each parallel fuzzing instance in a CMFuzz campaign owns one
/// `Network`, mirroring the paper's per-instance `ip netns`.
///
/// Cloning a `Network` yields another handle onto the same namespace.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::{Addr, Network};
///
/// # fn main() -> Result<(), cmfuzz_netsim::NetError> {
/// let ns_a = Network::new("a");
/// let ns_b = Network::new("b");
/// let server = ns_a.bind_datagram(Addr::new(1, 53))?;
/// let stranger = ns_b.bind_datagram(Addr::new(2, 9))?;
///
/// // Same address space, different namespace: unreachable.
/// assert!(stranger.send_to(Addr::new(1, 53), b"x").is_err());
/// assert!(server.try_recv().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Network {
    pub(crate) inner: Arc<Inner>,
}

impl Network {
    /// Creates a namespace with perfect links and a fixed RNG seed.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Network::with_conditions(name, LinkConditions::perfect(), 0)
    }

    /// Creates a namespace with link impairments driven by `seed`.
    #[must_use]
    pub fn with_conditions(name: &str, conditions: LinkConditions, seed: u64) -> Self {
        Network {
            inner: Arc::new(Inner {
                name: name.to_owned(),
                datagram_bindings: Mutex::new(HashMap::new()),
                listeners: Mutex::new(HashMap::new()),
                link: Mutex::new(LinkState {
                    conditions,
                    rng: StdRng::seed_from_u64(seed),
                    held: None,
                }),
            }),
        }
    }

    /// Namespace name, for logs.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Binds a datagram socket at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddrInUse`] if another datagram socket is already
    /// bound at `addr` on this network.
    pub fn bind_datagram(&self, addr: Addr) -> Result<DatagramSocket, NetError> {
        let mut bindings = self.inner.datagram_bindings.lock();
        if bindings.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = unbounded();
        bindings.insert(addr, tx);
        Ok(DatagramSocket {
            addr,
            rx,
            net: Arc::clone(&self.inner),
        })
    }

    /// Starts a stream listener at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddrInUse`] if a listener is already bound at
    /// `addr` on this network.
    pub fn listen_stream(&self, addr: Addr) -> Result<StreamListener, NetError> {
        stream::listen(self, addr)
    }

    /// Opens a stream connection from `local` to a listener at `remote`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] if nothing is listening at
    /// `remote` on this network.
    pub fn connect_stream(&self, local: Addr, remote: Addr) -> Result<StreamConn, NetError> {
        stream::connect(self, local, remote)
    }

    /// The impairment model's mutable state — the RNG stream position and
    /// the datagram the reordering model is holding back — for
    /// checkpointing. Non-destructive.
    #[must_use]
    pub fn export_link_state(&self) -> ([u64; 4], Option<Datagram>) {
        let link = self.inner.link.lock();
        (link.rng.state(), link.held.clone())
    }

    /// Restores impairment state captured by
    /// [`Network::export_link_state`] into this network (typically a fresh
    /// one built with the same [`LinkConditions`]).
    pub fn restore_link_state(&self, rng: [u64; 4], held: Option<Datagram>) {
        let mut link = self.inner.link.lock();
        link.rng = StdRng::from_state(rng);
        link.held = held;
    }

    /// Delivers `datagram` directly to its destination socket, bypassing
    /// the impairment model entirely — no RNG draws, no loss, no
    /// reordering.
    ///
    /// This is the checkpoint-resume path: datagrams that were already
    /// *past* the impairment model (sitting in a receive queue) are
    /// re-injected verbatim, so the restored link RNG stream stays
    /// aligned with the original run.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] if no socket is bound at the
    /// datagram's destination.
    pub fn inject(&self, datagram: Datagram) -> Result<(), NetError> {
        self.inner.deliver(datagram)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.inner.name)
            .field(
                "datagram_bindings",
                &self.inner.datagram_bindings.lock().len(),
            )
            .field("listeners", &self.inner.listeners.lock().len())
            .finish()
    }
}

/// UDP-like socket bound on one [`Network`].
///
/// Receiving is non-blocking ([`DatagramSocket::try_recv`]): fuzzing
/// campaigns are single-threaded per instance and poll sockets in their run
/// loop.
///
/// Dropping the socket releases its address.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::{Addr, Network};
///
/// # fn main() -> Result<(), cmfuzz_netsim::NetError> {
/// let net = Network::new("ns");
/// let a = net.bind_datagram(Addr::new(1, 1000))?;
/// let b = net.bind_datagram(Addr::new(2, 2000))?;
/// a.send_to(b.addr(), b"ping")?;
/// assert_eq!(b.try_recv().expect("delivered").payload, b"ping");
/// # Ok(())
/// # }
/// ```
pub struct DatagramSocket {
    addr: Addr,
    rx: Receiver<Datagram>,
    net: Arc<Inner>,
}

impl DatagramSocket {
    /// Address this socket is bound at.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Sends `payload` to `dst` on this socket's network.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] if no socket is bound at `dst`.
    pub fn send_to(&self, dst: Addr, payload: &[u8]) -> Result<(), NetError> {
        self.net.transmit(Datagram {
            src: self.addr,
            dst,
            payload: payload.to_vec(),
        })
    }

    /// Sends a burst of payloads stored back-to-back in `arena`, each
    /// addressed by an `(offset, len)` range, to `dst` — observably
    /// identical to calling [`DatagramSocket::send_to`] once per range in
    /// order (same delivery sequence, same impairment RNG draws), but on a
    /// perfect link the whole burst crosses under one bindings lock.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] if no socket is bound at `dst`;
    /// on an impaired link the error surfaces at the first failing send,
    /// leaving earlier datagrams delivered, exactly as a sequential loop
    /// would.
    pub fn send_many_to(
        &self,
        dst: Addr,
        arena: &[u8],
        ranges: &[(u32, u32)],
    ) -> Result<(), NetError> {
        self.net.transmit_many(self.addr, dst, arena, ranges)
    }

    /// Receives the next pending datagram, if any.
    #[must_use]
    pub fn try_recv(&self) -> Option<Datagram> {
        self.rx.try_recv().ok()
    }

    /// Drains up to `max` pending datagrams into `out` under one queue
    /// lock. Returns how many were moved — the same datagrams, in the
    /// same order, as that many [`DatagramSocket::try_recv`] calls.
    pub fn recv_many(&self, out: &mut Vec<Datagram>, max: usize) -> usize {
        self.rx.try_recv_many(out, max)
    }

    /// Number of datagrams waiting in the receive queue.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for DatagramSocket {
    fn drop(&mut self) {
        self.net.datagram_bindings.lock().remove(&self.addr);
    }
}

impl fmt::Debug for DatagramSocket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DatagramSocket")
            .field("addr", &self.addr)
            .field("pending", &self.rx.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_between_two_sockets() {
        let net = Network::new("t");
        let a = net.bind_datagram(Addr::new(1, 10)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 20)).unwrap();
        a.send_to(b.addr(), b"one").unwrap();
        a.send_to(b.addr(), b"two").unwrap();
        assert_eq!(b.pending(), 2);
        assert_eq!(b.try_recv().unwrap().payload, b"one");
        let d = b.try_recv().unwrap();
        assert_eq!(d.payload, b"two");
        assert_eq!(d.src, Addr::new(1, 10));
        assert_eq!(d.dst, Addr::new(2, 20));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn double_bind_fails() {
        let net = Network::new("t");
        let _a = net.bind_datagram(Addr::new(1, 10)).unwrap();
        assert_eq!(
            net.bind_datagram(Addr::new(1, 10)).unwrap_err(),
            NetError::AddrInUse(Addr::new(1, 10))
        );
    }

    #[test]
    fn drop_releases_address() {
        let net = Network::new("t");
        {
            let _a = net.bind_datagram(Addr::new(1, 10)).unwrap();
        }
        assert!(net.bind_datagram(Addr::new(1, 10)).is_ok());
    }

    #[test]
    fn namespaces_are_isolated() {
        let ns_a = Network::new("a");
        let ns_b = Network::new("b");
        let _server = ns_a.bind_datagram(Addr::new(1, 53)).unwrap();
        let client = ns_b.bind_datagram(Addr::new(9, 9)).unwrap();
        assert_eq!(
            client.send_to(Addr::new(1, 53), b"x").unwrap_err(),
            NetError::Unreachable(Addr::new(1, 53))
        );
    }

    #[test]
    fn send_to_unbound_is_unreachable() {
        let net = Network::new("t");
        let a = net.bind_datagram(Addr::new(1, 10)).unwrap();
        assert!(matches!(
            a.send_to(Addr::new(5, 5), b"x"),
            Err(NetError::Unreachable(_))
        ));
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = Network::with_conditions("t", LinkConditions::new(1.0, 0.0, 0.0), 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        for _ in 0..32 {
            a.send_to(b.addr(), b"x").unwrap();
        }
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn total_duplication_doubles_everything() {
        let net = Network::with_conditions("t", LinkConditions::new(0.0, 1.0, 0.0), 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        for _ in 0..8 {
            a.send_to(b.addr(), b"x").unwrap();
        }
        assert_eq!(b.pending(), 16);
    }

    #[test]
    fn reordering_swaps_adjacent_datagrams() {
        // reorder=1.0: the first datagram is always held back, the second
        // send releases it after itself, and so on.
        let net = Network::with_conditions("t", LinkConditions::new(0.0, 0.0, 1.0), 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        a.send_to(b.addr(), b"1").unwrap();
        a.send_to(b.addr(), b"2").unwrap();
        // With p=1 the model holds "1", then cannot hold "2" (slot taken),
        // so delivery order is 2, 1.
        assert_eq!(b.try_recv().unwrap().payload, b"2");
        assert_eq!(b.try_recv().unwrap().payload, b"1");
    }

    #[test]
    fn duplicated_datagrams_arrive_back_to_back_in_send_order() {
        // dup=1.0: every datagram is delivered twice, clone first, and the
        // pairs never interleave across sends.
        let net = Network::with_conditions("t", LinkConditions::new(0.0, 1.0, 0.0), 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        a.send_to(b.addr(), b"1").unwrap();
        a.send_to(b.addr(), b"2").unwrap();
        let order: Vec<Vec<u8>> = (0..4).map(|_| b.try_recv().unwrap().payload).collect();
        assert_eq!(order, [b"1", b"1", b"2", b"2"]);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn duplication_composes_with_reordering() {
        // dup=1.0 and reorder=1.0: the first send is held back (the reorder
        // slot is free, and reordering is checked before duplication); the
        // second send finds the slot taken, so it goes down the duplication
        // branch — clone, then original, then the released held datagram.
        let net = Network::with_conditions("t", LinkConditions::new(0.0, 1.0, 1.0), 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        a.send_to(b.addr(), b"1").unwrap();
        assert_eq!(b.pending(), 0, "first datagram should be held");
        a.send_to(b.addr(), b"2").unwrap();
        let order: Vec<Vec<u8>> = (0..3).map(|_| b.try_recv().unwrap().payload).collect();
        assert_eq!(order, [b"2", b"2", b"1"]);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn mixed_impairments_pin_exact_delivery_sequence() {
        // Regression pin for the seeded impairment model: sixteen numbered
        // sends through a lossy/duplicating/reordering link at seed 42 must
        // keep producing this exact delivery sequence. If the RNG draw
        // order in `transmit` ever changes, every recorded impaired
        // campaign digest silently changes with it — this test names that
        // event loudly.
        let sequence = |seed: u64| -> Vec<u8> {
            let net = Network::with_conditions("t", LinkConditions::new(0.2, 0.3, 0.3), seed);
            let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
            let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
            for n in 0u8..16 {
                a.send_to(b.addr(), &[n]).unwrap();
            }
            let mut received = Vec::new();
            while let Some(d) = b.try_recv() {
                received.push(d.payload[0]);
            }
            received
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43), "different seeds should differ");
        let expected: Vec<u8> = vec![
            0, 1, 4, 3, 5, 5, 6, 6, 8, 8, 9, 11, 10, 12, 12, 13, 13, 14, 15,
        ];
        assert_eq!(sequence(42), expected);
    }

    #[test]
    fn same_seed_same_impairment_pattern() {
        let run = |seed: u64| -> Vec<bool> {
            let net = Network::with_conditions("t", LinkConditions::new(0.5, 0.0, 0.0), seed);
            let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
            let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
            (0..64)
                .map(|_| {
                    a.send_to(b.addr(), b"x").unwrap();
                    b.try_recv().is_some()
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn link_state_checkpoint_resumes_impairment_stream() {
        let conditions = LinkConditions::new(0.2, 0.3, 0.3);
        // Uninterrupted reference: 32 sends through one link.
        let reference = {
            let net = Network::with_conditions("ref", conditions, 42);
            let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
            let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
            for n in 0u8..32 {
                a.send_to(b.addr(), &[n]).unwrap();
            }
            let mut got = Vec::new();
            while let Some(d) = b.try_recv() {
                got.push(d.payload[0]);
            }
            got
        };

        // Same 32 sends with a checkpoint/restore after the first 16.
        let net = Network::with_conditions("first", conditions, 42);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        for n in 0u8..16 {
            a.send_to(b.addr(), &[n]).unwrap();
        }
        let (rng, held) = net.export_link_state();
        let mut delivered = Vec::new();
        while let Some(d) = b.try_recv() {
            delivered.push(d);
        }
        drop((a, b, net));

        let net = Network::with_conditions("resumed", conditions, 0);
        let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
        let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
        net.restore_link_state(rng, held);
        // Re-inject queued datagrams past the impairment model.
        for d in delivered {
            net.inject(d).unwrap();
        }
        for n in 16u8..32 {
            a.send_to(b.addr(), &[n]).unwrap();
        }
        let mut got = Vec::new();
        while let Some(d) = b.try_recv() {
            got.push(d.payload[0]);
        }
        assert_eq!(got, reference);
    }

    #[test]
    fn send_many_matches_sequential_sends() {
        // The burst path must be observably identical to a send_to loop on
        // perfect and impaired links alike: same payloads, same order,
        // same impairment RNG draws.
        let arena: Vec<u8> = (0u8..64).collect();
        let ranges: Vec<(u32, u32)> = (0..16).map(|i| (i * 4, 4)).collect();
        let deliveries = |conditions: LinkConditions, burst: bool| -> Vec<Vec<u8>> {
            let net = Network::with_conditions("t", conditions, 42);
            let a = net.bind_datagram(Addr::new(1, 1)).unwrap();
            let b = net.bind_datagram(Addr::new(2, 2)).unwrap();
            if burst {
                a.send_many_to(b.addr(), &arena, &ranges).unwrap();
            } else {
                for &(start, len) in &ranges {
                    a.send_to(b.addr(), &arena[start as usize..(start + len) as usize])
                        .unwrap();
                }
            }
            let mut got = Vec::new();
            while let Some(d) = b.try_recv() {
                assert_eq!((d.src, d.dst), (Addr::new(1, 1), Addr::new(2, 2)));
                got.push(d.payload);
            }
            got
        };
        for conditions in [
            LinkConditions::perfect(),
            LinkConditions::new(0.2, 0.3, 0.3),
        ] {
            assert_eq!(
                deliveries(conditions, true),
                deliveries(conditions, false),
                "burst diverged from sequential sends under {conditions:?}"
            );
        }
    }

    #[test]
    fn send_many_to_unbound_is_unreachable() {
        let net = Network::new("t");
        let a = net.bind_datagram(Addr::new(1, 10)).unwrap();
        assert!(matches!(
            a.send_many_to(Addr::new(5, 5), b"xy", &[(0, 2)]),
            Err(NetError::Unreachable(_))
        ));
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let net = Network::new("dbg");
        let sock = net.bind_datagram(Addr::new(1, 1)).unwrap();
        assert!(format!("{net:?}").contains("dbg"));
        assert!(format!("{sock:?}").contains("DatagramSocket"));
    }
}
