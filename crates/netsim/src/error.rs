//! Error type for network operations.

use std::error::Error;
use std::fmt;

use crate::Addr;

/// Errors returned by simulated network operations.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::{Addr, NetError, Network};
///
/// let net = Network::new("ns");
/// let _first = net.bind_datagram(Addr::new(1, 53)).unwrap();
/// let err = net.bind_datagram(Addr::new(1, 53)).unwrap_err();
/// assert!(matches!(err, NetError::AddrInUse(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The address is already bound on this network.
    AddrInUse(Addr),
    /// No socket is bound at the destination address.
    Unreachable(Addr),
    /// The peer end of a stream connection has been dropped.
    Disconnected,
    /// No listener is accepting at the destination address.
    ConnectionRefused(Addr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrInUse(addr) => write!(f, "address already in use: {addr}"),
            NetError::Unreachable(addr) => write!(f, "destination unreachable: {addr}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::ConnectionRefused(addr) => write!(f, "connection refused: {addr}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NetError::AddrInUse(Addr::new(1, 2)).to_string(),
            "address already in use: 10.77.0.1:2"
        );
        assert_eq!(
            NetError::Unreachable(Addr::new(1, 2)).to_string(),
            "destination unreachable: 10.77.0.1:2"
        );
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(
            NetError::ConnectionRefused(Addr::new(0, 9)).to_string(),
            "connection refused: 10.77.0.0:9"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
