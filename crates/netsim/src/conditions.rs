//! Seeded link-impairment model.

/// Probabilistic link impairments applied to datagram delivery.
///
/// Experiments run with [`LinkConditions::perfect`] links so campaigns are
/// deterministic; robustness tests enable loss, duplication and reordering
/// driven by the network's seeded RNG.
///
/// Probabilities are clamped to `[0, 1]` at construction.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::LinkConditions;
///
/// let lossy = LinkConditions::new(0.1, 0.0, 0.05);
/// assert_eq!(lossy.loss(), 0.1);
/// assert_eq!(lossy.reorder(), 0.05);
/// assert!(!lossy.is_perfect());
/// assert!(LinkConditions::perfect().is_perfect());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConditions {
    loss: f64,
    duplicate: f64,
    reorder: f64,
}

impl LinkConditions {
    /// Creates impairments with the given probabilities, clamping each to
    /// `[0, 1]`. NaN clamps to `0`.
    #[must_use]
    pub fn new(loss: f64, duplicate: f64, reorder: f64) -> Self {
        fn clamp(p: f64) -> f64 {
            if p.is_nan() {
                0.0
            } else {
                p.clamp(0.0, 1.0)
            }
        }
        LinkConditions {
            loss: clamp(loss),
            duplicate: clamp(duplicate),
            reorder: clamp(reorder),
        }
    }

    /// A link that delivers every datagram once, in order.
    #[must_use]
    pub const fn perfect() -> Self {
        LinkConditions {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    /// Probability a datagram is dropped.
    #[must_use]
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Probability a datagram is delivered twice.
    #[must_use]
    pub fn duplicate(&self) -> f64 {
        self.duplicate
    }

    /// Probability a datagram is held back and swapped with the next one.
    #[must_use]
    pub fn reorder(&self) -> f64 {
        self.reorder
    }

    /// Whether no impairment is configured.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

impl Default for LinkConditions {
    fn default() -> Self {
        LinkConditions::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_clamped() {
        let c = LinkConditions::new(-0.5, 2.0, f64::NAN);
        assert_eq!(c.loss(), 0.0);
        assert_eq!(c.duplicate(), 1.0);
        assert_eq!(c.reorder(), 0.0);
    }

    #[test]
    fn perfect_is_default() {
        assert_eq!(LinkConditions::default(), LinkConditions::perfect());
        assert!(LinkConditions::default().is_perfect());
    }

    #[test]
    fn impaired_is_not_perfect() {
        assert!(!LinkConditions::new(0.0, 0.1, 0.0).is_perfect());
    }
}
