//! In-memory isolated network namespaces for parallel fuzzing instances.
//!
//! The CMFuzz paper isolates each parallel fuzzing instance in its own Linux
//! network namespace (`ip netns`) so that instances cannot cross-contaminate
//! each other's targets. This crate reproduces that guarantee with
//! deterministic in-memory networks: a [`Network`] is one namespace, sockets
//! created on different networks can never exchange packets, and everything
//! runs without touching the host network stack.
//!
//! Two transport flavours cover the six protocol targets:
//!
//! * [`DatagramSocket`] — UDP-like, used by the CoAP, DNS, DTLS and DDS
//!   targets.
//! * [`StreamConn`] / [`StreamListener`] — TCP-like byte streams, used by
//!   the MQTT and AMQP targets.
//!
//! [`LinkConditions`] can inject seeded loss, duplication and reordering for
//! robustness testing; experiments run with perfect links for determinism.
//!
//! # Examples
//!
//! ```
//! use cmfuzz_netsim::{Addr, Network};
//!
//! # fn main() -> Result<(), cmfuzz_netsim::NetError> {
//! let net = Network::new("instance-0");
//! let server = net.bind_datagram(Addr::new(1, 5683))?;
//! let client = net.bind_datagram(Addr::new(2, 40000))?;
//!
//! client.send_to(Addr::new(1, 5683), b"hello")?;
//! let datagram = server.try_recv().expect("datagram delivered");
//! assert_eq!(datagram.payload, b"hello");
//! assert_eq!(datagram.src, Addr::new(2, 40000));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod conditions;
mod error;
mod network;
mod stream;

pub use addr::Addr;
pub use conditions::LinkConditions;
pub use error::NetError;
pub use network::{Datagram, DatagramSocket, Network};
pub use stream::{StreamConn, StreamListener};
