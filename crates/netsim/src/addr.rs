//! Addresses within a simulated network.

use std::fmt;

/// Address of a socket inside one [`Network`](crate::Network): a host number
/// and a port.
///
/// Hosts are plain integers; the `Display` form renders them in a
/// `10.77.<host>` dotted style purely for readable logs. Addresses are only
/// meaningful within the network they were bound on — the same `Addr` on two
/// different networks names two unrelated sockets, exactly as the same IP
/// does in two Linux network namespaces.
///
/// # Examples
///
/// ```
/// use cmfuzz_netsim::Addr;
///
/// let addr = Addr::new(3, 1883);
/// assert_eq!(addr.host(), 3);
/// assert_eq!(addr.port(), 1883);
/// assert_eq!(addr.to_string(), "10.77.0.3:1883");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    host: u32,
    port: u16,
}

impl Addr {
    /// Creates an address from a host number and port.
    #[must_use]
    pub const fn new(host: u32, port: u16) -> Self {
        Addr { host, port }
    }

    /// Host number.
    #[must_use]
    pub const fn host(self) -> u32 {
        self.host
    }

    /// Port number.
    #[must_use]
    pub const fn port(self) -> u16 {
        self.port
    }

    /// Same host, different port.
    #[must_use]
    pub const fn with_port(self, port: u16) -> Self {
        Addr {
            host: self.host,
            port,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "10.77.{}.{}:{}",
            (self.host >> 8) & 0xff,
            self.host & 0xff,
            self.port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Addr::new(7, 53);
        assert_eq!(a.host(), 7);
        assert_eq!(a.port(), 53);
    }

    #[test]
    fn with_port_keeps_host() {
        let a = Addr::new(7, 53).with_port(5353);
        assert_eq!(a, Addr::new(7, 5353));
    }

    #[test]
    fn display_is_dotted() {
        assert_eq!(Addr::new(258, 80).to_string(), "10.77.1.2:80");
    }

    #[test]
    fn ordering_is_total() {
        let mut addrs = vec![Addr::new(2, 1), Addr::new(1, 9), Addr::new(1, 2)];
        addrs.sort();
        assert_eq!(
            addrs,
            vec![Addr::new(1, 2), Addr::new(1, 9), Addr::new(2, 1)]
        );
    }
}
