//! Branch identifiers and the registry that names them.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a single instrumented branch edge inside one target.
///
/// The analogue of a SanitizerCoverage guard index: dense, zero-based and
/// stable for the lifetime of the target that registered it. Branch IDs from
/// different targets live in different ID spaces and must not be mixed; the
/// campaign layer keys coverage data by target name to prevent that.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::BranchRegistry;
///
/// let mut registry = BranchRegistry::new();
/// let id = registry.register("mqtt::connect#auth");
/// assert_eq!(id.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BranchId(u32);

impl BranchId {
    /// Creates a branch ID from a raw dense index.
    ///
    /// Prefer [`BranchRegistry::register`]; this constructor exists for
    /// fixed-layout targets that compute their ID space statically.
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        BranchId(index)
    }

    /// Returns the dense zero-based index of this branch.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "branch#{}", self.0)
    }
}

impl From<BranchId> for u32 {
    fn from(id: BranchId) -> Self {
        id.0
    }
}

/// Interner mapping human-readable branch names to dense [`BranchId`]s.
///
/// Protocol targets register every branch they instrument at construction
/// time (`"module::function#case"` by convention) so that fault reports and
/// debugging output can name the code location, mirroring how the paper maps
/// guard IDs back to source locations through debug info.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::BranchRegistry;
///
/// let mut registry = BranchRegistry::new();
/// let a = registry.register("coap::options#delta_ext");
/// let again = registry.register("coap::options#delta_ext");
/// assert_eq!(a, again, "registration is idempotent per name");
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchRegistry {
    names: Vec<String>,
    by_name: HashMap<String, BranchId>,
}

impl BranchRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name`, returning its ID; idempotent for repeated names.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct branches are registered,
    /// which no simulated target approaches.
    pub fn register(&mut self, name: &str) -> BranchId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let index = u32::try_from(self.names.len()).expect("branch ID space exhausted");
        let id = BranchId(index);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the name registered for `id`, if any.
    #[must_use]
    pub fn name(&self, id: BranchId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Returns the ID registered for `name`, if any.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<BranchId> {
        self.by_name.get(name).copied()
    }

    /// Number of distinct branches registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no branches have been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (BranchId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_ids() {
        let mut r = BranchRegistry::new();
        let a = r.register("a");
        let b = r.register("b");
        let c = r.register("c");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = BranchRegistry::new();
        let a1 = r.register("x");
        let a2 = r.register("x");
        assert_eq!(a1, a2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut r = BranchRegistry::new();
        let id = r.register("mqtt::publish#qos2");
        assert_eq!(r.lookup("mqtt::publish#qos2"), Some(id));
        assert_eq!(r.name(id), Some("mqtt::publish#qos2"));
        assert_eq!(r.lookup("missing"), None);
        assert_eq!(r.name(BranchId::from_index(99)), None);
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut r = BranchRegistry::new();
        r.register("one");
        r.register("two");
        let collected: Vec<_> = r.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(0, "one".to_owned()), (1, "two".to_owned())]
        );
    }

    #[test]
    fn display_formats_index() {
        assert_eq!(BranchId::from_index(7).to_string(), "branch#7");
    }

    #[test]
    fn branch_id_converts_to_u32() {
        let id = BranchId::from_index(41);
        assert_eq!(u32::from(id), 41);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let r = BranchRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
