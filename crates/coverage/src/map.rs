//! The live coverage map and the probe handle targets hit it through.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::snapshot::CoverageSnapshot;
use crate::BranchId;

/// State shared between a [`CoverageMap`] and its [`CoverageProbe`]s.
#[derive(Debug)]
struct MapShared {
    /// Per-branch hit counters (the guard array).
    cells: Vec<AtomicU32>,
    /// Branches hit at least once; bumped exactly once per cell, on its
    /// first hit, so [`CoverageMap::covered_count`] is a single load.
    covered: AtomicUsize,
    /// One bit per cell, set on the cell's first hit ever. The covered
    /// *set* as a wide bitset: snapshots and the feedback diff read 64
    /// branches per atomic load instead of walking 64 hit counters.
    covered_bits: Vec<AtomicU64>,
    /// One bit per 64-cell word of the map, set when a cell in that word
    /// records its *first* hit and cleared when
    /// [`CoverageMap::absorb_new`] rescans the word. Lets the fuzzing
    /// feedback loop skip every word untouched since the last session.
    dirty: Vec<AtomicU64>,
    /// Skip list over `dirty`: the index of every dirty-bitmap word that
    /// went empty → non-empty since the last drain, pushed in transition
    /// order. Bounds the drain to O(words actually dirtied) — a large map
    /// that found three new branches rescans three entries, not the whole
    /// bitmap.
    dirty_queue: Vec<AtomicU32>,
    /// Number of `dirty_queue` entries pushed since the last drain. A
    /// value beyond the queue's length means the queue overflowed and the
    /// drain must fall back to scanning the whole dirty bitmap.
    dirty_pending: AtomicUsize,
}

impl MapShared {
    /// Recomputes the coverage bitset word holding cells
    /// `[word * 64, word * 64 + 64)` from the live counters — the slow
    /// reference for what `covered_bits[word]` maintains incrementally.
    #[cfg(test)]
    fn recount_word(&self, word: usize) -> u64 {
        let start = word * 64;
        let end = (start + 64).min(self.cells.len());
        let mut bits = 0u64;
        for (offset, cell) in self.cells[start..end].iter().enumerate() {
            if cell.load(Ordering::Relaxed) > 0 {
                bits |= 1u64 << offset;
            }
        }
        bits
    }

    /// The covered bitset word for cells `[word * 64, word * 64 + 64)`,
    /// one atomic load.
    fn coverage_word(&self, word: usize) -> u64 {
        self.covered_bits[word].load(Ordering::Acquire)
    }

    /// Drains one dirty-bitmap word: merges every coverage word it flags
    /// into `words` and returns how many covered branches were new to
    /// `words`.
    fn absorb_bitmap_word(&self, d: usize, words: &mut [u64]) -> usize {
        // Acquire pairs with the Release in `CoverageProbe::hit`: a dirty
        // bit observed here implies the first-hit `covered_bits` store
        // that preceded it is visible to the loads below.
        let mut bits = self.dirty[d].swap(0, Ordering::Acquire);
        let mut new = 0usize;
        while bits != 0 {
            let w = d * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            // A set dirty bit can only come from a first hit on an
            // in-range cell, so the word index it decodes to must lie
            // inside the snapshot's word buffer.
            debug_assert!(
                w < words.len(),
                "dirty bit decodes to word {w} beyond the {} snapshot words",
                words.len()
            );
            let word = self.coverage_word(w);
            new += (word & !words[w]).count_ones() as usize;
            words[w] |= word;
        }
        new
    }

    /// Folds the hit-count mass of every coverage word flagged by dirty
    /// word `d` into `min`, without clearing any dirty bit. Mass is the
    /// sum of hit counts over the word's cells (uncovered cells are 0).
    fn min_mass_of_dirty_word(&self, d: usize, min: &mut u64) {
        let mut bits = self.dirty[d].load(Ordering::Acquire);
        while bits != 0 {
            let w = d * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let start = w * 64;
            let end = (start + 64).min(self.cells.len());
            let mass: u64 = self.cells[start..end]
                .iter()
                .map(|c| u64::from(c.load(Ordering::Relaxed)))
                .sum();
            if mass < *min {
                *min = mass;
            }
        }
    }
}

/// Shared per-target hit-count map, the analogue of the SanitizerCoverage
/// guard array.
///
/// The map is created once per fuzzing instance with the target's branch
/// count and shared with the target through [`CoverageProbe`] handles.
/// Recording a hit is a single relaxed atomic increment on the hot path
/// (plus two more atomics the first time a branch is ever hit), so
/// instrumentation stays cheap even on hot parsing paths.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{BranchId, CoverageMap};
///
/// let map = CoverageMap::new(4);
/// let probe = map.probe();
/// probe.hit(BranchId::from_index(2));
/// assert_eq!(map.hit_count(BranchId::from_index(2)), 1);
/// assert_eq!(map.covered_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageMap {
    shared: Arc<MapShared>,
}

impl CoverageMap {
    /// Creates a map with `capacity` branch slots, all unhit.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(64);
        let dirty_words = words.div_ceil(64);
        CoverageMap {
            shared: Arc::new(MapShared {
                cells: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
                covered: AtomicUsize::new(0),
                covered_bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
                dirty: (0..dirty_words).map(|_| AtomicU64::new(0)).collect(),
                // One slot per dirty-bitmap word: each word pushes at most
                // once per drain cycle, so the queue cannot overflow while
                // the map is quiescent during drains (the `absorb_new`
                // contract).
                dirty_queue: (0..dirty_words).map(|_| AtomicU32::new(0)).collect(),
                dirty_pending: AtomicUsize::new(0),
            }),
        }
    }

    /// Returns a cheap cloneable handle targets use to record hits.
    #[must_use]
    pub fn probe(&self) -> CoverageProbe {
        CoverageProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of branch slots in this map.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.cells.len()
    }

    /// Hit count recorded for `id`; zero for out-of-range IDs.
    #[must_use]
    pub fn hit_count(&self, id: BranchId) -> u32 {
        self.shared
            .cells
            .get(id.index() as usize)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Number of branches hit at least once.
    ///
    /// The map maintains this count as branches record their first hit, so
    /// the call is a single atomic load however large the map — safe to
    /// poll every round from the saturation loop.
    #[must_use]
    pub fn covered_count(&self) -> usize {
        self.shared.covered.load(Ordering::Relaxed)
    }

    /// Captures an immutable snapshot of which branches are covered.
    #[must_use]
    pub fn snapshot(&self) -> CoverageSnapshot {
        let mut snap = CoverageSnapshot::empty(self.capacity());
        self.snapshot_into(&mut snap);
        snap
    }

    /// Refreshes `out` to the current covered set, reusing its buffer.
    ///
    /// Equivalent to `*out = self.snapshot()` but heap-allocation-free
    /// once `out` has ever held a snapshot of this capacity, which is what
    /// the fuzzing hot loop needs.
    pub fn snapshot_into(&self, out: &mut CoverageSnapshot) {
        out.clear_to_capacity(self.capacity());
        let words = out.words_mut();
        debug_assert_eq!(
            words.len(),
            self.capacity().div_ceil(64),
            "resized snapshot word buffer does not cover the map's cells"
        );
        for (w, bits) in words.iter_mut().enumerate() {
            *bits = self.shared.coverage_word(w);
        }
    }

    /// Merges every branch covered since the last call into `accumulated`
    /// and returns how many of them `accumulated` had not seen before.
    ///
    /// This is the allocation-free fuzzing feedback signal: the dirty
    /// bitmap flags every coverage word with a first-hit since the last
    /// drain, and a skip list over that bitmap records which of *its*
    /// words went non-empty — so a drain touches O(words actually
    /// dirtied), not O(map), and a session (or a whole batch) that reached
    /// nothing new costs a single atomic swap. Equivalent to
    /// `snapshot().newly_covered(&accumulated)` followed by
    /// `accumulated.union_with(&snapshot)` when the map is quiescent; the
    /// caller must not race this drain against live probes (every in-tree
    /// engine absorbs between sessions, on the thread that ran them).
    ///
    /// # Panics
    ///
    /// Panics if `accumulated` has a different capacity than the map.
    pub fn absorb_new(&self, accumulated: &mut CoverageSnapshot) -> usize {
        assert_eq!(
            accumulated.capacity(),
            self.capacity(),
            "snapshots from different branch ID spaces"
        );
        let pending = self.shared.dirty_pending.swap(0, Ordering::AcqRel);
        if pending == 0 {
            return 0;
        }
        let words = accumulated.words_mut();
        let queue = &self.shared.dirty_queue;
        if pending > queue.len() {
            // Overflowed skip list (possible only if probes raced a
            // drain): scan the whole dirty bitmap instead. Same result,
            // just not O(dirty words).
            let mut new = 0usize;
            for d in 0..self.shared.dirty.len() {
                if self.shared.dirty[d].load(Ordering::Relaxed) != 0 {
                    new += self.shared.absorb_bitmap_word(d, words);
                }
            }
            return new;
        }
        let mut new = 0usize;
        for entry in &queue[..pending] {
            let d = entry.load(Ordering::Acquire) as usize;
            new += self.shared.absorb_bitmap_word(d, words);
        }
        new
    }

    /// Rarity score of the coverage reached since the last drain, without
    /// draining: the smallest hit-count mass among the coverage words the
    /// dirty bitmap currently flags. `None` when nothing is pending.
    ///
    /// The engine calls this at seed-retention time, *before*
    /// [`CoverageMap::absorb_new`], to stamp the retained seed with how
    /// well-trodden its newly reached code is — a dirty word whose cells
    /// have been hit thousands of times marks a common path, one with a
    /// handful of hits marks rare coverage. Purely reads atomics: the
    /// dirty bitmap, skip list and pending counter are left untouched, so
    /// the subsequent drain observes exactly what it would have without
    /// the peek. The score is a point-in-time measurement (checkpoint
    /// restore resets hit counts to 1), which is why seeds carry it
    /// instead of recomputing it.
    #[must_use]
    pub fn peek_new_rarity(&self) -> Option<u32> {
        let pending = self.shared.dirty_pending.load(Ordering::Acquire);
        if pending == 0 {
            return None;
        }
        let mut min = u64::MAX;
        let queue = &self.shared.dirty_queue;
        if pending > queue.len() {
            // Overflowed skip list: scan the whole dirty bitmap, same as
            // the drain's fallback.
            for d in 0..self.shared.dirty.len() {
                self.shared.min_mass_of_dirty_word(d, &mut min);
            }
        } else {
            for entry in &queue[..pending] {
                let d = entry.load(Ordering::Acquire) as usize;
                self.shared.min_mass_of_dirty_word(d, &mut min);
            }
        }
        if min == u64::MAX {
            None
        } else {
            Some(u32::try_from(min).unwrap_or(u32::MAX))
        }
    }

    /// Resets the map to exactly the covered set of `snapshot`: every
    /// covered branch gets hit count 1, every other branch 0, no dirty
    /// bits pending.
    ///
    /// This is the resume half of checkpointing. Behavior downstream
    /// depends only on the covered *set* (nothing reads the magnitudes of
    /// hit counts), so restoring counts as 1 reproduces the original
    /// feedback signal: re-hitting a restored branch is not a first hit
    /// and therefore sets no dirty bit, exactly as in the uninterrupted
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has a different capacity than the map.
    pub fn restore_from(&self, snapshot: &CoverageSnapshot) {
        assert_eq!(
            snapshot.capacity(),
            self.capacity(),
            "snapshots from different branch ID spaces"
        );
        self.reset();
        let mut covered = 0usize;
        for id in snapshot.covered_ids() {
            self.shared.cells[id.index() as usize].store(1, Ordering::Relaxed);
            covered += 1;
        }
        for (bits, word) in self.shared.covered_bits.iter().zip(snapshot.words()) {
            bits.store(*word, Ordering::Relaxed);
        }
        self.shared.covered.store(covered, Ordering::Relaxed);
    }

    /// Clears all hit counts back to zero.
    pub fn reset(&self) {
        for cell in &self.shared.cells {
            cell.store(0, Ordering::Relaxed);
        }
        for bits in &self.shared.covered_bits {
            bits.store(0, Ordering::Relaxed);
        }
        for dirty in &self.shared.dirty {
            dirty.store(0, Ordering::Relaxed);
        }
        // Pushed-but-undrained queue entries die with the pending count;
        // slots themselves need no clearing (only `[0..pending)` is read).
        self.shared.dirty_pending.store(0, Ordering::Relaxed);
        self.shared.covered.store(0, Ordering::Relaxed);
    }
}

/// Cloneable handle through which instrumented code records branch hits.
///
/// This is the value handed to a protocol target when it starts; the target
/// calls [`CoverageProbe::hit`] at every instrumented branch, mirroring the
/// `trace-pc-guard` callback the paper inserts with Clang.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{BranchId, CoverageMap};
///
/// let map = CoverageMap::new(2);
/// let probe = map.probe();
/// let clone = probe.clone(); // handles share the same map
/// clone.hit(BranchId::from_index(0));
/// assert_eq!(map.covered_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageProbe {
    shared: Arc<MapShared>,
}

impl CoverageProbe {
    /// Creates a probe backed by a throwaway map of `capacity` slots.
    ///
    /// Useful in tests and in targets run outside a campaign; hits are
    /// recorded but observable only through probes cloned from this one.
    #[must_use]
    pub fn detached(capacity: usize) -> Self {
        CoverageMap::new(capacity).probe()
    }

    /// Records one execution of branch `id`.
    ///
    /// Out-of-range IDs are ignored rather than panicking: a mis-sized map
    /// should degrade to lost coverage, not a crashed campaign.
    pub fn hit(&self, id: BranchId) {
        let index = id.index() as usize;
        if let Some(cell) = self.shared.cells.get(index) {
            if cell.fetch_add(1, Ordering::Relaxed) == 0 {
                // First hit ever for this branch: bump the covered count,
                // set the branch's covered bit, and mark its bitset word
                // dirty so the next `absorb_new` rescans it. Release on
                // the dirty bit so the drain that observes it also
                // observes the covered-bit store.
                self.shared.covered.fetch_add(1, Ordering::Relaxed);
                let word = index / 64;
                self.shared.covered_bits[word].fetch_or(1u64 << (index % 64), Ordering::Relaxed);
                let d = word / 64;
                if self.shared.dirty[d].fetch_or(1u64 << (word % 64), Ordering::Release) == 0 {
                    // The dirty-bitmap word just went empty → non-empty:
                    // record it on the skip list so the drain can jump
                    // straight to it.
                    let slot = self.shared.dirty_pending.fetch_add(1, Ordering::AcqRel);
                    if let Some(entry) = self.shared.dirty_queue.get(slot) {
                        entry.store(d as u32, Ordering::Release);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_empty() {
        let map = CoverageMap::new(8);
        assert_eq!(map.capacity(), 8);
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.snapshot().covered_count(), 0);
    }

    #[test]
    fn hits_accumulate_per_branch() {
        let map = CoverageMap::new(3);
        let probe = map.probe();
        probe.hit(BranchId::from_index(1));
        probe.hit(BranchId::from_index(1));
        probe.hit(BranchId::from_index(2));
        assert_eq!(map.hit_count(BranchId::from_index(0)), 0);
        assert_eq!(map.hit_count(BranchId::from_index(1)), 2);
        assert_eq!(map.hit_count(BranchId::from_index(2)), 1);
        assert_eq!(map.covered_count(), 2);
    }

    #[test]
    fn peek_new_rarity_is_non_destructive_and_takes_the_min() {
        let map = CoverageMap::new(200);
        let probe = map.probe();
        assert_eq!(map.peek_new_rarity(), None, "quiescent map has no score");
        // Word 0 (branches 0..64): heavily trodden. Word 2 (branch 130):
        // barely touched. The peek must report the rare word's mass.
        for _ in 0..50 {
            probe.hit(BranchId::from_index(3));
        }
        probe.hit(BranchId::from_index(130));
        probe.hit(BranchId::from_index(131));
        assert_eq!(map.peek_new_rarity(), Some(2), "min mass over dirty words");
        // Peeking again sees the same thing: nothing was drained.
        assert_eq!(map.peek_new_rarity(), Some(2));
        let mut acc = CoverageSnapshot::empty(map.capacity());
        assert_eq!(
            map.absorb_new(&mut acc),
            3,
            "drain still sees all 3 branches"
        );
        assert_eq!(map.peek_new_rarity(), None, "drained map has no score");
    }

    #[test]
    fn out_of_range_hits_are_ignored() {
        let map = CoverageMap::new(1);
        let probe = map.probe();
        probe.hit(BranchId::from_index(5));
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.hit_count(BranchId::from_index(5)), 0);
    }

    #[test]
    fn probes_share_one_map() {
        let map = CoverageMap::new(2);
        let p1 = map.probe();
        let p2 = p1.clone();
        p1.hit(BranchId::from_index(0));
        p2.hit(BranchId::from_index(0));
        assert_eq!(map.hit_count(BranchId::from_index(0)), 2);
    }

    #[test]
    fn reset_clears_counts() {
        let map = CoverageMap::new(2);
        map.probe().hit(BranchId::from_index(0));
        assert_eq!(map.covered_count(), 1);
        map.reset();
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.hit_count(BranchId::from_index(0)), 0);
        // First-hit accounting restarts cleanly after a reset.
        map.probe().hit(BranchId::from_index(1));
        assert_eq!(map.covered_count(), 1);
        let mut acc = CoverageSnapshot::empty(2);
        assert_eq!(map.absorb_new(&mut acc), 1);
    }

    #[test]
    fn snapshot_reflects_covered_set() {
        let map = CoverageMap::new(4);
        let probe = map.probe();
        probe.hit(BranchId::from_index(0));
        probe.hit(BranchId::from_index(3));
        let snap = map.snapshot();
        assert!(snap.is_covered(BranchId::from_index(0)));
        assert!(!snap.is_covered(BranchId::from_index(1)));
        assert!(snap.is_covered(BranchId::from_index(3)));
        assert_eq!(snap.covered_count(), 2);
    }

    #[test]
    fn snapshot_into_matches_snapshot_and_reuses_buffer() {
        let map = CoverageMap::new(200);
        let probe = map.probe();
        for i in [0usize, 63, 64, 130, 199] {
            probe.hit(BranchId::from_index(i as u32));
        }
        let mut scratch = CoverageSnapshot::empty(1); // wrong capacity on purpose
        map.snapshot_into(&mut scratch);
        assert_eq!(scratch, map.snapshot());
        // A later refresh sees later hits and stale bits gone after reset.
        map.reset();
        probe.hit(BranchId::from_index(7));
        map.snapshot_into(&mut scratch);
        assert_eq!(scratch, map.snapshot());
        assert_eq!(scratch.covered_count(), 1);
    }

    #[test]
    fn absorb_new_equals_snapshot_based_feedback() {
        let map = CoverageMap::new(300);
        let probe = map.probe();
        let mut acc = CoverageSnapshot::empty(300);
        probe.hit(BranchId::from_index(5));
        probe.hit(BranchId::from_index(290));
        assert_eq!(map.absorb_new(&mut acc), 2);
        assert_eq!(acc, map.snapshot());
        // Re-hitting covered branches is not new and sets no dirty bits.
        probe.hit(BranchId::from_index(5));
        assert_eq!(map.absorb_new(&mut acc), 0);
        // A mix of old and new branches counts only the new ones.
        probe.hit(BranchId::from_index(6));
        probe.hit(BranchId::from_index(290));
        assert_eq!(map.absorb_new(&mut acc), 1);
        assert_eq!(acc, map.snapshot());
    }

    #[test]
    fn restore_from_reproduces_feedback_signal() {
        let map = CoverageMap::new(200);
        let probe = map.probe();
        for i in [0usize, 63, 64, 130, 199] {
            probe.hit(BranchId::from_index(i as u32));
            probe.hit(BranchId::from_index(i as u32));
        }
        let snap = map.snapshot();

        let fresh = CoverageMap::new(200);
        fresh.restore_from(&snap);
        assert_eq!(fresh.covered_count(), 5);
        assert_eq!(fresh.snapshot(), snap);
        // Restored branches are not first hits: re-hitting one yields no
        // new coverage, while a genuinely new branch still does.
        let probe = fresh.probe();
        probe.hit(BranchId::from_index(63));
        let mut acc = snap.clone();
        assert_eq!(fresh.absorb_new(&mut acc), 0);
        probe.hit(BranchId::from_index(7));
        assert_eq!(fresh.absorb_new(&mut acc), 1);
    }

    #[test]
    #[should_panic(expected = "different branch ID spaces")]
    fn restore_from_rejects_capacity_mismatch() {
        let map = CoverageMap::new(10);
        map.restore_from(&CoverageSnapshot::empty(11));
    }

    #[test]
    #[should_panic(expected = "different branch ID spaces")]
    fn absorb_new_rejects_capacity_mismatch() {
        let map = CoverageMap::new(10);
        let mut acc = CoverageSnapshot::empty(11);
        let _ = map.absorb_new(&mut acc);
    }

    #[test]
    fn covered_bits_track_recounted_cells() {
        let map = CoverageMap::new(200);
        let probe = map.probe();
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            probe.hit(BranchId::from_index(i as u32));
            probe.hit(BranchId::from_index(i as u32));
        }
        for w in 0..200usize.div_ceil(64) {
            assert_eq!(
                map.shared.coverage_word(w),
                map.shared.recount_word(w),
                "word {w}"
            );
        }
        map.reset();
        probe.hit(BranchId::from_index(70));
        assert_eq!(map.shared.coverage_word(1), map.shared.recount_word(1));
    }

    #[test]
    fn absorb_after_restore_skips_known_branches() {
        // A restored map starts with an empty skip list; only genuinely
        // new first hits repopulate it.
        let map = CoverageMap::new(130);
        let probe = map.probe();
        probe.hit(BranchId::from_index(3));
        probe.hit(BranchId::from_index(100));
        let snap = map.snapshot();

        let fresh = CoverageMap::new(130);
        fresh.restore_from(&snap);
        let mut acc = snap.clone();
        assert_eq!(fresh.absorb_new(&mut acc), 0);
        let probe = fresh.probe();
        probe.hit(BranchId::from_index(3)); // known: no dirty push
        probe.hit(BranchId::from_index(64)); // new: dirty push
        assert_eq!(fresh.absorb_new(&mut acc), 1);
        assert_eq!(acc, fresh.snapshot());
    }

    #[test]
    fn hits_from_threads_are_all_counted() {
        let map = CoverageMap::new(1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let probe = map.probe();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        probe.hit(BranchId::from_index(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(map.hit_count(BranchId::from_index(0)), 4000);
        assert_eq!(map.covered_count(), 1);
    }

    #[test]
    fn snapshot_into_agrees_with_snapshot_under_concurrent_hits() {
        let map = CoverageMap::new(4096);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let probe = map.probe();
                scope.spawn(move || {
                    for i in 0..4096u32 {
                        if (i + t) % 3 == 0 {
                            probe.hit(BranchId::from_index(i));
                        }
                    }
                });
            }
        });
        let mut scratch = CoverageSnapshot::empty(4096);
        map.snapshot_into(&mut scratch);
        let direct = map.snapshot();
        assert_eq!(scratch, direct);
        assert_eq!(scratch.covered_count(), map.covered_count());
        // absorb_new starting from empty reconstructs the same set.
        let mut acc = CoverageSnapshot::empty(4096);
        assert_eq!(map.absorb_new(&mut acc), direct.covered_count());
        assert_eq!(acc, direct);
    }
}
