//! The live coverage map and the probe handle targets hit it through.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::snapshot::CoverageSnapshot;
use crate::BranchId;

/// Shared per-target hit-count map, the analogue of the SanitizerCoverage
/// guard array.
///
/// The map is created once per fuzzing instance with the target's branch
/// count and shared with the target through [`CoverageProbe`] handles.
/// Recording a hit is a single relaxed atomic increment, so instrumentation
/// stays cheap even on hot parsing paths.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{BranchId, CoverageMap};
///
/// let map = CoverageMap::new(4);
/// let probe = map.probe();
/// probe.hit(BranchId::from_index(2));
/// assert_eq!(map.hit_count(BranchId::from_index(2)), 1);
/// assert_eq!(map.covered_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageMap {
    cells: Arc<[AtomicU32]>,
}

impl CoverageMap {
    /// Creates a map with `capacity` branch slots, all unhit.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cells: Vec<AtomicU32> = (0..capacity).map(|_| AtomicU32::new(0)).collect();
        CoverageMap {
            cells: cells.into(),
        }
    }

    /// Returns a cheap cloneable handle targets use to record hits.
    #[must_use]
    pub fn probe(&self) -> CoverageProbe {
        CoverageProbe {
            cells: Arc::clone(&self.cells),
        }
    }

    /// Number of branch slots in this map.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Hit count recorded for `id`; zero for out-of-range IDs.
    #[must_use]
    pub fn hit_count(&self, id: BranchId) -> u32 {
        self.cells
            .get(id.index() as usize)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Number of branches hit at least once.
    #[must_use]
    pub fn covered_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count()
    }

    /// Captures an immutable snapshot of which branches are covered.
    #[must_use]
    pub fn snapshot(&self) -> CoverageSnapshot {
        CoverageSnapshot::from_hits(
            self.cells.len(),
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
                .map(|(i, _)| i),
        )
    }

    /// Clears all hit counts back to zero.
    pub fn reset(&self) {
        for cell in self.cells.iter() {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// Cloneable handle through which instrumented code records branch hits.
///
/// This is the value handed to a protocol target when it starts; the target
/// calls [`CoverageProbe::hit`] at every instrumented branch, mirroring the
/// `trace-pc-guard` callback the paper inserts with Clang.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{BranchId, CoverageMap};
///
/// let map = CoverageMap::new(2);
/// let probe = map.probe();
/// let clone = probe.clone(); // handles share the same map
/// clone.hit(BranchId::from_index(0));
/// assert_eq!(map.covered_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageProbe {
    cells: Arc<[AtomicU32]>,
}

impl CoverageProbe {
    /// Creates a probe backed by a throwaway map of `capacity` slots.
    ///
    /// Useful in tests and in targets run outside a campaign; hits are
    /// recorded but observable only through probes cloned from this one.
    #[must_use]
    pub fn detached(capacity: usize) -> Self {
        CoverageMap::new(capacity).probe()
    }

    /// Records one execution of branch `id`.
    ///
    /// Out-of-range IDs are ignored rather than panicking: a mis-sized map
    /// should degrade to lost coverage, not a crashed campaign.
    pub fn hit(&self, id: BranchId) {
        if let Some(cell) = self.cells.get(id.index() as usize) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_empty() {
        let map = CoverageMap::new(8);
        assert_eq!(map.capacity(), 8);
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.snapshot().covered_count(), 0);
    }

    #[test]
    fn hits_accumulate_per_branch() {
        let map = CoverageMap::new(3);
        let probe = map.probe();
        probe.hit(BranchId::from_index(1));
        probe.hit(BranchId::from_index(1));
        probe.hit(BranchId::from_index(2));
        assert_eq!(map.hit_count(BranchId::from_index(0)), 0);
        assert_eq!(map.hit_count(BranchId::from_index(1)), 2);
        assert_eq!(map.hit_count(BranchId::from_index(2)), 1);
        assert_eq!(map.covered_count(), 2);
    }

    #[test]
    fn out_of_range_hits_are_ignored() {
        let map = CoverageMap::new(1);
        let probe = map.probe();
        probe.hit(BranchId::from_index(5));
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.hit_count(BranchId::from_index(5)), 0);
    }

    #[test]
    fn probes_share_one_map() {
        let map = CoverageMap::new(2);
        let p1 = map.probe();
        let p2 = p1.clone();
        p1.hit(BranchId::from_index(0));
        p2.hit(BranchId::from_index(0));
        assert_eq!(map.hit_count(BranchId::from_index(0)), 2);
    }

    #[test]
    fn reset_clears_counts() {
        let map = CoverageMap::new(2);
        map.probe().hit(BranchId::from_index(0));
        assert_eq!(map.covered_count(), 1);
        map.reset();
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.hit_count(BranchId::from_index(0)), 0);
    }

    #[test]
    fn snapshot_reflects_covered_set() {
        let map = CoverageMap::new(4);
        let probe = map.probe();
        probe.hit(BranchId::from_index(0));
        probe.hit(BranchId::from_index(3));
        let snap = map.snapshot();
        assert!(snap.is_covered(BranchId::from_index(0)));
        assert!(!snap.is_covered(BranchId::from_index(1)));
        assert!(snap.is_covered(BranchId::from_index(3)));
        assert_eq!(snap.covered_count(), 2);
    }

    #[test]
    fn hits_from_threads_are_all_counted() {
        let map = CoverageMap::new(1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let probe = map.probe();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        probe.hit(BranchId::from_index(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(map.hit_count(BranchId::from_index(0)), 4000);
    }
}
