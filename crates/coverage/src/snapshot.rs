//! Immutable coverage snapshots with set algebra.

use serde::{Deserialize, Serialize};

use crate::BranchId;

/// Immutable bitset of branches covered at some instant.
///
/// Snapshots are what the scheduler and metrics layers reason about: startup
/// coverage of a configuration pair, the union coverage of a parallel
/// campaign, or the "did this input reach anything new" feedback signal.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{BranchId, CoverageMap};
///
/// let map = CoverageMap::new(8);
/// let probe = map.probe();
/// probe.hit(BranchId::from_index(1));
/// let before = map.snapshot();
///
/// probe.hit(BranchId::from_index(5));
/// let after = map.snapshot();
///
/// assert_eq!(after.newly_covered(&before), 1);
/// assert!(before.is_subset_of(&after));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSnapshot {
    capacity: usize,
    words: Vec<u64>,
}

impl CoverageSnapshot {
    /// Creates an empty snapshot for a target with `capacity` branches.
    #[must_use]
    pub fn empty(capacity: usize) -> Self {
        CoverageSnapshot {
            capacity,
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Builds a snapshot from the indices of covered branches.
    ///
    /// Out-of-range indices are ignored.
    pub fn from_hits<I: IntoIterator<Item = usize>>(capacity: usize, hits: I) -> Self {
        let mut snap = CoverageSnapshot::empty(capacity);
        for index in hits {
            if index < capacity {
                snap.words[index / 64] |= 1u64 << (index % 64);
            }
        }
        snap
    }

    /// Number of branch slots this snapshot covers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears every bit and re-sizes the snapshot for `capacity` branches.
    ///
    /// Reuses the existing word buffer, so repeated calls with the same
    /// capacity never touch the heap — this is what makes scratch
    /// snapshots ([`crate::CoverageMap::snapshot_into`]) allocation-free.
    pub fn clear_to_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
    }

    /// Mutable view of the raw coverage bitset, 64 branches per word.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Read-only view of the raw coverage bitset, 64 branches per word.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes the snapshot as `<capacity>:<word>:<word>:...` with each
    /// bitset word in lowercase hex — a text-exact wire form for shard
    /// workers reporting coverage across a process boundary.
    #[must_use]
    pub fn to_hex(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.capacity.to_string();
        for word in &self.words {
            let _ = write!(out, ":{word:x}");
        }
        out
    }

    /// Parses [`CoverageSnapshot::to_hex`] output; `None` on malformed
    /// text or a word count that does not match the declared capacity.
    #[must_use]
    pub fn from_hex(text: &str) -> Option<CoverageSnapshot> {
        let mut parts = text.split(':');
        let capacity: usize = parts.next()?.parse().ok()?;
        let words = parts
            .map(|w| u64::from_str_radix(w, 16).ok())
            .collect::<Option<Vec<u64>>>()?;
        if words.len() != capacity.div_ceil(64) {
            return None;
        }
        Some(CoverageSnapshot { capacity, words })
    }

    /// Whether branch `id` was covered.
    #[must_use]
    pub fn is_covered(&self, id: BranchId) -> bool {
        let index = id.index() as usize;
        index < self.capacity && self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of covered branches.
    #[must_use]
    pub fn covered_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no branch is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of branches covered here but not in `baseline`.
    ///
    /// This is the fuzzing feedback signal: "how many new branches did this
    /// execution reach".
    ///
    /// # Panics
    ///
    /// Panics if the snapshots come from targets of different capacity;
    /// comparing coverage across ID spaces is always a bug.
    #[must_use]
    pub fn newly_covered(&self, baseline: &CoverageSnapshot) -> usize {
        assert_eq!(
            self.capacity, baseline.capacity,
            "snapshots from different branch ID spaces"
        );
        self.words
            .iter()
            .zip(&baseline.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether every branch covered here is also covered in `other`.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch, as for [`CoverageSnapshot::newly_covered`].
    #[must_use]
    pub fn is_subset_of(&self, other: &CoverageSnapshot) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "snapshots from different branch ID spaces"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Unions `other` into `self`, growing the covered set in place.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch, as for [`CoverageSnapshot::newly_covered`].
    pub fn union_with(&mut self, other: &CoverageSnapshot) {
        assert_eq!(
            self.capacity, other.capacity,
            "snapshots from different branch ID spaces"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns the union of two snapshots.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch, as for [`CoverageSnapshot::newly_covered`].
    #[must_use]
    pub fn union(&self, other: &CoverageSnapshot) -> CoverageSnapshot {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Unions any number of snapshots into one — the shard-merge half of
    /// multi-process execution: every worker serializes its final coverage
    /// and the parent folds them back together here. Returns `None` for an
    /// empty iterator (there is no capacity to build an empty set from).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have differing capacities, as for
    /// [`CoverageSnapshot::union_with`].
    pub fn merge<'a, I>(snapshots: I) -> Option<CoverageSnapshot>
    where
        I: IntoIterator<Item = &'a CoverageSnapshot>,
    {
        let mut iter = snapshots.into_iter();
        let mut merged = iter.next()?.clone();
        for snapshot in iter {
            merged.union_with(snapshot);
        }
        Some(merged)
    }

    /// Iterates over the covered branch IDs in ascending order.
    pub fn covered_ids(&self) -> impl Iterator<Item = BranchId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            (0..64).filter_map(move |bit| {
                let index = wi * 64 + bit;
                (word & (1u64 << bit) != 0 && index < self.capacity)
                    .then(|| BranchId::from_index(index as u32))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(capacity: usize, hits: &[usize]) -> CoverageSnapshot {
        CoverageSnapshot::from_hits(capacity, hits.iter().copied())
    }

    #[test]
    fn empty_snapshot_has_no_coverage() {
        let s = CoverageSnapshot::empty(100);
        assert_eq!(s.covered_count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn from_hits_sets_exact_bits() {
        let s = snap(70, &[0, 63, 64, 69]);
        assert_eq!(s.covered_count(), 4);
        for &i in &[0usize, 63, 64, 69] {
            assert!(s.is_covered(BranchId::from_index(i as u32)));
        }
        assert!(!s.is_covered(BranchId::from_index(1)));
    }

    #[test]
    fn out_of_range_hits_ignored() {
        let s = snap(10, &[3, 100]);
        assert_eq!(s.covered_count(), 1);
    }

    #[test]
    fn newly_covered_counts_difference() {
        let base = snap(128, &[1, 2, 3]);
        let now = snap(128, &[2, 3, 4, 5]);
        assert_eq!(now.newly_covered(&base), 2);
        assert_eq!(base.newly_covered(&now), 1);
    }

    #[test]
    fn subset_relation() {
        let small = snap(64, &[1, 2]);
        let big = snap(64, &[1, 2, 3]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn union_combines_coverage() {
        let a = snap(64, &[1, 2]);
        let b = snap(64, &[2, 3]);
        let u = a.union(&b);
        assert_eq!(u.covered_count(), 3);
        let mut a2 = a.clone();
        a2.union_with(&b);
        assert_eq!(a2, u);
    }

    #[test]
    fn covered_ids_ascending() {
        let s = snap(130, &[129, 5, 64]);
        let ids: Vec<u32> = s.covered_ids().map(BranchId::index).collect();
        assert_eq!(ids, vec![5, 64, 129]);
    }

    #[test]
    fn merge_folds_many_snapshots() {
        let parts = vec![snap(130, &[1, 64]), snap(130, &[64, 129]), snap(130, &[2])];
        let merged = CoverageSnapshot::merge(&parts).expect("non-empty");
        assert_eq!(merged, snap(130, &[1, 2, 64, 129]));
        assert_eq!(CoverageSnapshot::merge([]), None);
        assert_eq!(
            CoverageSnapshot::merge(std::iter::once(&parts[2])),
            Some(parts[2].clone())
        );
    }

    #[test]
    #[should_panic(expected = "different branch ID spaces")]
    fn merge_rejects_capacity_mismatch() {
        let parts = vec![snap(64, &[1]), snap(65, &[1])];
        let _ = CoverageSnapshot::merge(&parts);
    }

    #[test]
    #[should_panic(expected = "different branch ID spaces")]
    fn capacity_mismatch_panics() {
        let a = snap(64, &[1]);
        let b = snap(65, &[1]);
        let _ = a.newly_covered(&b);
    }

    #[test]
    fn is_covered_out_of_range_is_false() {
        let s = snap(10, &[9]);
        assert!(!s.is_covered(BranchId::from_index(10)));
        assert!(!s.is_covered(BranchId::from_index(1000)));
    }

    #[test]
    fn hex_round_trip_is_exact() {
        for snapshot in [
            snap(0, &[]),
            snap(1, &[0]),
            snap(130, &[0, 63, 64, 127, 129]),
            snap(4096, &[17, 1000, 4095]),
        ] {
            let text = CoverageSnapshot::from_hex(&snapshot.to_hex()).expect("round-trips");
            assert_eq!(text, snapshot);
            assert_eq!(text.covered_count(), snapshot.covered_count());
        }
    }

    #[test]
    fn from_hex_rejects_malformed_text() {
        assert!(CoverageSnapshot::from_hex("").is_none());
        assert!(CoverageSnapshot::from_hex("nope").is_none());
        assert!(
            CoverageSnapshot::from_hex("128:ff").is_none(),
            "one word short"
        );
        assert!(
            CoverageSnapshot::from_hex("64:ff:ff").is_none(),
            "extra word"
        );
        assert!(CoverageSnapshot::from_hex("64:xyzzy").is_none(), "bad hex");
    }
}
