//! Deterministic virtual campaign time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A duration or instant in virtual campaign time.
///
/// One tick corresponds to one unit of fuzzing work (by convention, a single
/// target execution). The paper's 24-hour wall-clock budget maps to a tick
/// budget chosen by the experiment harness; coverage-over-time curves and
/// speedup ratios are computed in ticks.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::Ticks;
///
/// let budget = Ticks::new(10_000);
/// let half = Ticks::new(5_000);
/// assert!(half < budget);
/// assert_eq!((budget - half).get(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(u64);

impl Ticks {
    /// Zero ticks.
    pub const ZERO: Ticks = Ticks(0);

    /// Creates a tick count.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Ticks(ticks)
    }

    /// Raw tick count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl std::ops::Add for Ticks {
    type Output = Ticks;
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Ticks {
    type Output = Ticks;
    /// # Panics
    ///
    /// Panics on underflow in debug builds, like integer subtraction.
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl From<u64> for Ticks {
    fn from(ticks: u64) -> Self {
        Ticks(ticks)
    }
}

/// Shared deterministic clock advanced by the campaign loop.
///
/// All parallel fuzzing instances of one campaign share a single clock so
/// that their coverage curves are sampled on a common time axis, standing in
/// for the shared wall clock of the paper's Docker host.
///
/// Cloning a `VirtualClock` yields a handle onto the same underlying time.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{Ticks, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let observer = clock.clone();
/// clock.advance(Ticks::new(3));
/// assert_eq!(observer.now(), Ticks::new(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Ticks {
        Ticks(self.now.load(Ordering::Relaxed))
    }

    /// Advances the clock by `delta`, returning the new time.
    pub fn advance(&self, delta: Ticks) -> Ticks {
        Ticks(self.now.fetch_add(delta.0, Ordering::Relaxed) + delta.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), Ticks::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let clock = VirtualClock::new();
        assert_eq!(clock.advance(Ticks::new(5)), Ticks::new(5));
        assert_eq!(clock.advance(Ticks::new(2)), Ticks::new(7));
        assert_eq!(clock.now(), Ticks::new(7));
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Ticks::new(10));
        assert_eq!(b.now(), Ticks::new(10));
    }

    #[test]
    fn ticks_arithmetic() {
        let a = Ticks::new(10);
        let b = Ticks::new(4);
        assert_eq!(a + b, Ticks::new(14));
        assert_eq!(a - b, Ticks::new(6));
        assert_eq!(b.saturating_sub(a), Ticks::ZERO);
        assert_eq!(Ticks::from(9u64).get(), 9);
        assert_eq!(Ticks::new(3).to_string(), "3t");
    }
}
