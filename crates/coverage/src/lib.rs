//! Branch-coverage instrumentation substrate for the CMFuzz reproduction.
//!
//! The CMFuzz paper instruments its targets with LLVM SanitizerCoverage
//! `trace-pc-guard`, which invokes a callback with a static guard ID at every
//! branch edge. Rust targets in this reproduction cannot be instrumented by
//! Clang, so this crate provides the equivalent mechanism as an explicit API:
//! protocol implementations call [`CoverageProbe::hit`] with a [`BranchId`]
//! at every branch they want counted, and campaign code reads the resulting
//! [`CoverageMap`] through cheap [`CoverageSnapshot`]s.
//!
//! The crate also hosts two small pieces of shared campaign machinery that
//! belong with coverage because they are defined in terms of it:
//!
//! * [`SaturationDetector`] — detects that "coverage has not increased over a
//!   set duration", the trigger for CMFuzz's adaptive configuration-value
//!   mutation (paper §III-B2).
//! * [`VirtualClock`] — deterministic campaign time standing in for the
//!   paper's 24-hour wall-clock budget.
//!
//! # Examples
//!
//! ```
//! use cmfuzz_coverage::{BranchRegistry, CoverageMap};
//!
//! let mut registry = BranchRegistry::new();
//! let parse_ok = registry.register("dns::parse_header#ok");
//! let parse_err = registry.register("dns::parse_header#err");
//!
//! let map = CoverageMap::new(registry.len());
//! let probe = map.probe();
//! probe.hit(parse_ok);
//! probe.hit(parse_ok);
//!
//! let snap = map.snapshot();
//! assert_eq!(snap.covered_count(), 1);
//! assert!(snap.is_covered(parse_ok));
//! assert!(!snap.is_covered(parse_err));
//! assert_eq!(registry.name(parse_ok), Some("dns::parse_header#ok"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod clock;
mod map;
mod saturation;
mod snapshot;

pub use branch::{BranchId, BranchRegistry};
pub use clock::{Ticks, VirtualClock};
pub use map::{CoverageMap, CoverageProbe};
pub use saturation::SaturationDetector;
pub use snapshot::CoverageSnapshot;
