//! Coverage saturation detection.

use crate::Ticks;

/// Detects that an instance's coverage "has not increased over a set
/// duration" (paper §III-B2), the trigger for CMFuzz's adaptive mutation of
/// configuration values.
///
/// Feed the detector `(now, covered_count)` observations; it reports
/// saturation once the covered count has failed to grow for at least the
/// configured window of virtual time. Any growth resets the window.
///
/// # Examples
///
/// ```
/// use cmfuzz_coverage::{SaturationDetector, Ticks};
///
/// let mut detector = SaturationDetector::new(Ticks::new(100));
/// assert!(!detector.observe(Ticks::new(0), 10));
/// assert!(!detector.observe(Ticks::new(50), 10));
/// assert!(detector.observe(Ticks::new(100), 10), "flat for a full window");
/// assert!(!detector.observe(Ticks::new(150), 11), "progress resets it");
/// ```
#[derive(Debug, Clone)]
pub struct SaturationDetector {
    window: Ticks,
    best_count: usize,
    last_progress: Ticks,
    primed: bool,
}

impl SaturationDetector {
    /// Creates a detector that declares saturation after `window` ticks
    /// without coverage growth.
    #[must_use]
    pub fn new(window: Ticks) -> Self {
        SaturationDetector {
            window,
            best_count: 0,
            last_progress: Ticks::ZERO,
            primed: false,
        }
    }

    /// The configured stagnation window.
    #[must_use]
    pub fn window(&self) -> Ticks {
        self.window
    }

    /// Records an observation and returns whether coverage is saturated.
    ///
    /// The first observation primes the detector and never reports
    /// saturation. Non-monotonic `covered_count` values (e.g. after a map
    /// reset) re-prime the progress marker rather than panicking.
    pub fn observe(&mut self, now: Ticks, covered_count: usize) -> bool {
        if !self.primed || covered_count > self.best_count {
            self.primed = true;
            self.best_count = covered_count;
            self.last_progress = now;
            return false;
        }
        now.saturating_sub(self.last_progress) >= self.window
    }

    /// Resets the stagnation window, as after the instance mutated its
    /// configuration and should be given a fresh chance to progress.
    pub fn reset_window(&mut self, now: Ticks) {
        self.last_progress = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_never_saturates() {
        let mut d = SaturationDetector::new(Ticks::new(0));
        assert!(!d.observe(Ticks::new(0), 0));
        // Zero window: the very next flat observation saturates.
        assert!(d.observe(Ticks::new(0), 0));
    }

    #[test]
    fn growth_postpones_saturation() {
        let mut d = SaturationDetector::new(Ticks::new(10));
        assert!(!d.observe(Ticks::new(0), 1));
        assert!(!d.observe(Ticks::new(9), 2));
        assert!(!d.observe(Ticks::new(18), 2));
        assert!(d.observe(Ticks::new(19), 2));
    }

    #[test]
    fn reset_window_gives_fresh_chance() {
        let mut d = SaturationDetector::new(Ticks::new(5));
        assert!(!d.observe(Ticks::new(0), 3));
        assert!(d.observe(Ticks::new(5), 3));
        d.reset_window(Ticks::new(5));
        assert!(!d.observe(Ticks::new(9), 3));
        assert!(d.observe(Ticks::new(10), 3));
    }

    #[test]
    fn count_decrease_reprimes() {
        let mut d = SaturationDetector::new(Ticks::new(5));
        assert!(!d.observe(Ticks::new(0), 10));
        // A lower count (map reset) is flat relative to best; stays armed.
        assert!(d.observe(Ticks::new(5), 4));
        // New growth beyond the best resets.
        assert!(!d.observe(Ticks::new(6), 11));
    }

    #[test]
    fn window_accessor() {
        assert_eq!(
            SaturationDetector::new(Ticks::new(7)).window(),
            Ticks::new(7)
        );
    }
}
