//! Differential gate for the word-parallel coverage diff.
//!
//! `CoverageMap::absorb_new` merges coverage 64 branches at a time through
//! a dirty-word skip list; this test drives it against a scalar reference
//! that tracks every branch individually, over seeded pseudo-random hit
//! patterns, word-boundary branches (bits 63/64), and the all-dirty /
//! no-dirty edge cases. Any divergence in either the returned new-branch
//! count or the accumulated set is a bug in the wide path.

use cmfuzz_coverage::{BranchId, CoverageMap, CoverageSnapshot};

/// Deterministic 64-bit LCG (MMIX constants); high bits are the output.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// The scalar model: one bool per branch, absorbed branch by branch.
struct ScalarReference {
    covered: Vec<bool>,
    accumulated: Vec<bool>,
}

impl ScalarReference {
    fn new(capacity: usize) -> Self {
        ScalarReference {
            covered: vec![false; capacity],
            accumulated: vec![false; capacity],
        }
    }

    fn hit(&mut self, index: usize) {
        self.covered[index] = true;
    }

    fn absorb_new(&mut self) -> usize {
        let mut new = 0;
        for (acc, &cov) in self.accumulated.iter_mut().zip(&self.covered) {
            if cov && !*acc {
                *acc = true;
                new += 1;
            }
        }
        new
    }

    fn accumulated_snapshot(&self) -> CoverageSnapshot {
        CoverageSnapshot::from_hits(
            self.accumulated.len(),
            self.accumulated
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| c.then_some(i)),
        )
    }
}

/// Applies the same hits to map and reference, then checks the absorbed
/// delta and the accumulated sets stay identical.
fn absorb_and_compare(
    map: &CoverageMap,
    acc: &mut CoverageSnapshot,
    reference: &mut ScalarReference,
    context: &str,
) {
    let wide = map.absorb_new(acc);
    let scalar = reference.absorb_new();
    assert_eq!(wide, scalar, "new-branch count diverged ({context})");
    assert_eq!(
        *acc,
        reference.accumulated_snapshot(),
        "accumulated set diverged ({context})"
    );
    assert_eq!(
        acc.covered_count(),
        map.covered_count(),
        "accumulated lags the map after a drain ({context})"
    );
}

#[test]
fn wide_absorb_matches_scalar_reference_on_random_patterns() {
    // Capacities straddling every interesting boundary: sub-word, exact
    // word, word+1, multi-word, and beyond one dirty-bitmap bit per word.
    for &capacity in &[1usize, 2, 63, 64, 65, 127, 128, 129, 300, 4096, 5000] {
        let map = CoverageMap::new(capacity);
        let probe = map.probe();
        let mut acc = CoverageSnapshot::empty(capacity);
        let mut reference = ScalarReference::new(capacity);
        let mut rng = Lcg(0x5EED ^ capacity as u64);

        for round in 0..8 {
            // Rounds draw 0..31 hits; an empty draw exercises the
            // no-dirty path (the drain must return 0 without scanning).
            let hits = (rng.next() % 32) as usize * usize::from(round != 3);
            for _ in 0..hits {
                let index = (rng.next() as usize) % capacity;
                probe.hit(BranchId::from_index(index as u32));
                reference.hit(index);
            }
            absorb_and_compare(
                &map,
                &mut acc,
                &mut reference,
                &format!("capacity {capacity}, round {round}"),
            );
        }
    }
}

#[test]
fn wide_absorb_matches_scalar_reference_at_word_boundaries() {
    let capacity = 130;
    let map = CoverageMap::new(capacity);
    let probe = map.probe();
    let mut acc = CoverageSnapshot::empty(capacity);
    let mut reference = ScalarReference::new(capacity);

    // Bits 63 and 64 land in different coverage words; 127/128 repeat the
    // pattern one word later, and 129 is the last valid branch.
    for &index in &[63usize, 64, 127, 128, 129, 0] {
        probe.hit(BranchId::from_index(index as u32));
        reference.hit(index);
        absorb_and_compare(&map, &mut acc, &mut reference, &format!("branch {index}"));
    }
}

#[test]
fn wide_absorb_matches_scalar_reference_all_dirty_and_no_dirty() {
    for &capacity in &[64usize, 100, 4096] {
        let map = CoverageMap::new(capacity);
        let probe = map.probe();
        let mut acc = CoverageSnapshot::empty(capacity);
        let mut reference = ScalarReference::new(capacity);

        // No-dirty on a fresh map.
        absorb_and_compare(&map, &mut acc, &mut reference, "fresh map");

        // All-dirty: every branch first-hit in one batch.
        for index in 0..capacity {
            probe.hit(BranchId::from_index(index as u32));
            reference.hit(index);
        }
        absorb_and_compare(&map, &mut acc, &mut reference, "all dirty");
        assert_eq!(acc.covered_count(), capacity);

        // Saturated map: re-hitting everything dirties nothing.
        for index in 0..capacity {
            probe.hit(BranchId::from_index(index as u32));
            reference.hit(index);
        }
        absorb_and_compare(&map, &mut acc, &mut reference, "saturated");
    }
}
