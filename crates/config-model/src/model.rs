//! The generalized configuration model and Algorithm 1.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::extract::{
    detect_format, extract_cli, extract_custom, extract_json, extract_key_value, extract_toml,
    extract_xml, extract_yaml, FileFormat, ParseRules,
};
use crate::{ConfigEntity, ConfigItem};

/// One configuration file belonging to a protocol's configuration surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigFile {
    /// File name, used for format detection and provenance.
    pub name: String,
    /// File content.
    pub content: String,
}

impl ConfigFile {
    /// Creates a configuration file description.
    #[must_use]
    pub fn named(name: &str, content: &str) -> Self {
        ConfigFile {
            name: name.to_owned(),
            content: content.to_owned(),
        }
    }
}

/// A protocol's complete configuration surface: the two inputs of
/// Algorithm 1 (`C_options` and `C_files`).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{ConfigSpace, ConfigFile};
///
/// let space = ConfigSpace {
///     cli: vec!["--port=5683".to_owned()],
///     files: vec![ConfigFile::named("coap.conf", "block-mode none\n")],
/// };
/// assert_eq!(space.cli.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// CLI option declarations (one per line, help-text style accepted).
    pub cli: Vec<String>,
    /// Configuration files in any supported format.
    pub files: Vec<ConfigFile>,
}

/// The generalized configuration model: the set of [`ConfigEntity`]s
/// extracted from a protocol (paper §III-A2).
///
/// Entity names are unique; when the same name appears in multiple sources,
/// the first extraction wins (CLI options are processed before files,
/// following Algorithm 1's order).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{extract_model, ConfigSpace};
///
/// let space = ConfigSpace {
///     cli: vec!["--retries=3".to_owned()],
///     files: vec![],
/// };
/// let model = extract_model(&space);
/// assert!(model.entity("retries").is_some());
/// assert_eq!(model.mutable_entities().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigModel {
    entities: Vec<ConfigEntity>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl ConfigModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from entities, dropping duplicates by name (first
    /// occurrence wins).
    #[must_use]
    pub fn from_entities<I: IntoIterator<Item = ConfigEntity>>(entities: I) -> Self {
        let mut model = ConfigModel::new();
        for entity in entities {
            model.insert(entity);
        }
        model
    }

    /// Inserts an entity; returns `false` (and drops it) if the name is
    /// already present.
    pub fn insert(&mut self, entity: ConfigEntity) -> bool {
        if self.by_name.contains_key(entity.name()) {
            return false;
        }
        self.by_name
            .insert(entity.name().to_owned(), self.entities.len());
        self.entities.push(entity);
        true
    }

    /// Looks up an entity by name.
    #[must_use]
    pub fn entity(&self, name: &str) -> Option<&ConfigEntity> {
        self.by_name.get(name).map(|&i| &self.entities[i])
    }

    /// All entities in extraction order.
    #[must_use]
    pub fn entities(&self) -> &[ConfigEntity] {
        &self.entities
    }

    /// Iterates over the entities whose *Flag* is MUTABLE.
    pub fn mutable_entities(&self) -> impl Iterator<Item = &ConfigEntity> {
        self.entities.iter().filter(|e| e.is_mutable())
    }

    /// Number of entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the model has no entities.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

impl fmt::Display for ConfigModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ConfigModel ({} entities)", self.entities.len())?;
        for entity in &self.entities {
            writeln!(f, "  {entity}")?;
        }
        Ok(())
    }
}

impl FromIterator<ConfigEntity> for ConfigModel {
    fn from_iter<I: IntoIterator<Item = ConfigEntity>>(iter: I) -> Self {
        ConfigModel::from_entities(iter)
    }
}

impl Extend<ConfigEntity> for ConfigModel {
    fn extend<I: IntoIterator<Item = ConfigEntity>>(&mut self, iter: I) {
        for entity in iter {
            self.insert(entity);
        }
    }
}

/// Extracts the generalized configuration model from a protocol's
/// configuration surface — Algorithm 1 of the paper, followed by the
/// model-construction step of §III-A2.
///
/// CLI options are extracted with the pattern-matching parser; each file's
/// format is detected and dispatched to the matching extractor (key-value,
/// hierarchical JSON/XML/YAML, or heuristic custom rules); every raw item is
/// then normalized into a [`ConfigEntity`].
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{extract_model, ConfigSpace, ConfigFile};
///
/// let space = ConfigSpace {
///     cli: vec!["--verbose".to_owned()],
///     files: vec![ConfigFile::named("c.json", r#"{"depth": 4}"#)],
/// };
/// let model = extract_model(&space);
/// assert_eq!(model.len(), 2);
/// ```
#[must_use]
pub fn extract_model(space: &ConfigSpace) -> ConfigModel {
    let mut items: Vec<ConfigItem> = Vec::new();
    // Lines 8-10: CLI options.
    items.extend(extract_cli(&space.cli));
    // Lines 11-21: files, dispatched by detected format.
    for file in &space.files {
        let format = detect_format(&file.name, &file.content);
        let file_items = match format {
            FileFormat::KeyValue => extract_key_value(&file.name, &file.content),
            FileFormat::Json => extract_json(&file.name, &file.content),
            FileFormat::Xml => extract_xml(&file.name, &file.content),
            FileFormat::Yaml => extract_yaml(&file.name, &file.content),
            FileFormat::Toml => extract_toml(&file.name, &file.content),
            FileFormat::Custom => extract_custom(&file.name, &file.content, &ParseRules::new()),
        };
        items.extend(file_items);
    }
    items.iter().map(ConfigEntity::from_item).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConfigValue, Mutability, ValueType};

    #[test]
    fn extracts_from_cli_and_files() {
        let space = ConfigSpace {
            cli: vec!["--qos {0,1,2}".to_owned(), "--verbose".to_owned()],
            files: vec![
                ConfigFile::named("b.conf", "persistence true\nmax_queued 100\n"),
                ConfigFile::named("d.json", r#"{"tls": {"enabled": false}}"#),
            ],
        };
        let model = extract_model(&space);
        assert_eq!(model.len(), 5);
        assert_eq!(model.entity("qos").unwrap().value_type(), ValueType::Number);
        assert_eq!(
            model.entity("tls.enabled").unwrap().value_type(),
            ValueType::Boolean
        );
    }

    #[test]
    fn duplicate_names_first_wins() {
        let space = ConfigSpace {
            cli: vec!["--port=1111".to_owned()],
            files: vec![ConfigFile::named("f.conf", "port 2222\n")],
        };
        let model = extract_model(&space);
        assert_eq!(model.len(), 1);
        assert_eq!(
            model.entity("port").unwrap().default_value(),
            &ConfigValue::Int(1111)
        );
    }

    #[test]
    fn mutable_iteration_filters_immutable() {
        let space = ConfigSpace {
            cli: vec![
                "--depth=4".to_owned(),
                "--certfile=/etc/ssl/srv.crt".to_owned(),
            ],
            files: vec![],
        };
        let model = extract_model(&space);
        assert_eq!(model.len(), 2);
        assert_eq!(
            model.entity("certfile").unwrap().mutability(),
            Mutability::Immutable
        );
        let mutable: Vec<_> = model.mutable_entities().map(|e| e.name()).collect();
        assert_eq!(mutable, vec!["depth"]);
    }

    #[test]
    fn empty_space_gives_empty_model() {
        let model = extract_model(&ConfigSpace::default());
        assert!(model.is_empty());
        assert_eq!(model.len(), 0);
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut model = ConfigModel::new();
        let e = ConfigEntity::new(
            "x",
            ValueType::Number,
            Mutability::Mutable,
            vec![ConfigValue::Int(1)],
        );
        assert!(model.insert(e.clone()));
        assert!(!model.insert(e));
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn display_lists_entities() {
        let space = ConfigSpace {
            cli: vec!["--a=1".to_owned()],
            files: vec![],
        };
        let rendered = extract_model(&space).to_string();
        assert!(rendered.contains("1 entities"));
        assert!(rendered.contains("a : Number"));
    }

    #[test]
    fn collect_and_extend() {
        let e1 = ConfigEntity::new(
            "a",
            ValueType::Number,
            Mutability::Mutable,
            vec![ConfigValue::Int(1)],
        );
        let e2 = ConfigEntity::new(
            "b",
            ValueType::Boolean,
            Mutability::Mutable,
            vec![ConfigValue::Bool(true)],
        );
        let mut model: ConfigModel = vec![e1].into_iter().collect();
        model.extend(vec![e2]);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn yaml_and_xml_files_route_to_extractors() {
        let space = ConfigSpace {
            cli: vec![],
            files: vec![
                ConfigFile::named("a.yaml", "alpha: 1\n"),
                ConfigFile::named("b.xml", "<C><Beta>2</Beta></C>"),
            ],
        };
        let model = extract_model(&space);
        assert!(model.entity("alpha").is_some());
        assert!(model.entity("C.Beta").is_some());
    }
}
