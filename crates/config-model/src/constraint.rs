//! Declarative configuration constraints.
//!
//! Every protocol server rejects certain configuration combinations at
//! startup (`StartError` with kind `ConfigConflict`): TLS authentication
//! without TLS, DTLS on a multicast socket, a fragment size above the
//! message size. Historically those rules lived only as imperative `if`
//! chains inside each server's `start()`, which meant a conflicting
//! configuration was discovered at target boot — after the grid had
//! already spun up.
//!
//! A [`ConstraintSet`] is the declarative mirror of those checks: each
//! [`ConfigConstraint`] is a conjunction of [`Condition`]s over resolved
//! configuration values, and a configuration that satisfies every
//! condition of a constraint is a conflict. Targets expose their set
//! through `Target::config_constraints`, which lets the static analyzer
//! (`cmfuzz-analyze`) and the campaign preflight detect the conflict at
//! *assembly* time instead of boot time.
//!
//! Evaluation deliberately uses the same lenient accessors the servers'
//! own config parsing uses ([`ResolvedConfig::bool_or`],
//! [`ResolvedConfig::int_or`], [`ResolvedConfig::str_or`]), with the same
//! per-item defaults, so a constraint matches exactly when the imperative
//! check in `start()` would fire.
//!
//! # Examples
//!
//! ```
//! use cmfuzz_config_model::{Condition, ConfigConstraint, ConfigValue, ConstraintSet, ResolvedConfig};
//!
//! let set = ConstraintSet::new().with(ConfigConstraint::new(
//!     "auth-method tls requires tls_enabled",
//!     vec![
//!         Condition::str_is("auth-method", "tls", "none"),
//!         Condition::bool_is("tls_enabled", false, false),
//!     ],
//! ));
//!
//! let mut config = ResolvedConfig::new();
//! config.set("auth-method", ConfigValue::Str("tls".into()));
//! assert_eq!(set.violations(&config).len(), 1);
//!
//! config.set("tls_enabled", ConfigValue::Bool(true));
//! assert!(set.violations(&config).is_empty());
//! ```

use std::fmt;

use crate::ResolvedConfig;

/// How one configuration item must look for a [`Condition`] to match.
///
/// Each variant carries the *default* the owning server would substitute
/// for an unbound item, so an empty configuration evaluates exactly like
/// the server's own `Config::parse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// The boolean value equals `expected`.
    BoolIs {
        /// Matching polarity.
        expected: bool,
        /// Fallback for an unbound item.
        default: bool,
    },
    /// The integer value equals `expected`.
    IntEquals {
        /// Matching value.
        expected: i64,
        /// Fallback for an unbound item.
        default: i64,
    },
    /// The integer value is strictly below `limit`.
    IntBelow {
        /// Exclusive upper bound that triggers the match.
        limit: i64,
        /// Fallback for an unbound item.
        default: i64,
    },
    /// The integer value lies inside `[min, max]` (inclusive).
    IntWithin {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
        /// Fallback for an unbound item.
        default: i64,
    },
    /// The integer value lies outside `[min, max]` (inclusive).
    IntOutside {
        /// Inclusive lower bound of the legal range.
        min: i64,
        /// Inclusive upper bound of the legal range.
        max: i64,
        /// Fallback for an unbound item.
        default: i64,
    },
    /// The integer value exceeds the value of another item (cross-item
    /// relation, e.g. a fragment size above the message size).
    IntAboveItem {
        /// The compared item's name.
        other: String,
        /// Fallback for this item when unbound.
        default: i64,
        /// Fallback for the compared item when unbound.
        other_default: i64,
    },
    /// The string value equals `expected`.
    StrIs {
        /// Matching value.
        expected: String,
        /// Fallback for an unbound item.
        default: String,
    },
    /// The string value is one of `any_of`.
    StrIn {
        /// Values that trigger the match.
        any_of: Vec<String>,
        /// Fallback for an unbound item.
        default: String,
    },
    /// The string value is *not* one of `allowed` (an unknown mode name).
    StrNotIn {
        /// The legal values; anything else matches.
        allowed: Vec<String>,
        /// Fallback for an unbound item.
        default: String,
    },
    /// An indexed string list (`{key}[0]`, `{key}[1]`, …) is empty or
    /// contains `value` — the shape flattened YAML sequences take, where
    /// an unconfigured list keeps its defaults.
    ListHasOrEmpty {
        /// The member that triggers the match (or an empty list).
        value: String,
    },
    /// An indexed string list does *not* contain `value`.
    ListLacks {
        /// The member whose absence triggers the match.
        value: String,
    },
}

/// Highest indexed-list slot scanned by the list predicates, matching the
/// flattened-sequence convention of the extraction layer.
const LIST_SCAN: usize = 8;

/// One requirement on one configuration item.
///
/// A condition pairs an item name with a [`Predicate`]; a constraint's
/// conditions must *all* match for the configuration to conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    key: String,
    predicate: Predicate,
}

impl Condition {
    /// Condition on a boolean item.
    #[must_use]
    pub fn bool_is(key: &str, expected: bool, default: bool) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::BoolIs { expected, default },
        }
    }

    /// Condition matching an exact integer value.
    #[must_use]
    pub fn int_equals(key: &str, expected: i64, default: i64) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::IntEquals { expected, default },
        }
    }

    /// Condition matching integers strictly below `limit`.
    #[must_use]
    pub fn int_below(key: &str, limit: i64, default: i64) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::IntBelow { limit, default },
        }
    }

    /// Condition matching integers inside `[min, max]`.
    #[must_use]
    pub fn int_within(key: &str, min: i64, max: i64, default: i64) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::IntWithin { min, max, default },
        }
    }

    /// Condition matching integers outside `[min, max]`.
    #[must_use]
    pub fn int_outside(key: &str, min: i64, max: i64, default: i64) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::IntOutside { min, max, default },
        }
    }

    /// Condition matching when `key` exceeds `other` (both integers).
    #[must_use]
    pub fn int_above_item(key: &str, other: &str, default: i64, other_default: i64) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::IntAboveItem {
                other: other.to_owned(),
                default,
                other_default: other_default.to_owned(),
            },
        }
    }

    /// Condition matching an exact string value.
    #[must_use]
    pub fn str_is(key: &str, expected: &str, default: &str) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::StrIs {
                expected: expected.to_owned(),
                default: default.to_owned(),
            },
        }
    }

    /// Condition matching any of several string values.
    #[must_use]
    pub fn str_in(key: &str, any_of: &[&str], default: &str) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::StrIn {
                any_of: any_of.iter().map(|s| (*s).to_owned()).collect(),
                default: default.to_owned(),
            },
        }
    }

    /// Condition matching any string *outside* the allowed set.
    #[must_use]
    pub fn str_not_in(key: &str, allowed: &[&str], default: &str) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::StrNotIn {
                allowed: allowed.iter().map(|s| (*s).to_owned()).collect(),
                default: default.to_owned(),
            },
        }
    }

    /// Condition on an indexed list being empty or containing `value`.
    #[must_use]
    pub fn list_has_or_empty(key: &str, value: &str) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::ListHasOrEmpty {
                value: value.to_owned(),
            },
        }
    }

    /// Condition on an indexed list lacking `value`.
    #[must_use]
    pub fn list_lacks(key: &str, value: &str) -> Self {
        Condition {
            key: key.to_owned(),
            predicate: Predicate::ListLacks {
                value: value.to_owned(),
            },
        }
    }

    /// The configuration item this condition constrains.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The predicate applied to the item's value.
    #[must_use]
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Every item name the condition reads (the key itself plus any
    /// cross-item comparison target).
    #[must_use]
    pub fn referenced_items(&self) -> Vec<&str> {
        match &self.predicate {
            Predicate::IntAboveItem { other, .. } => vec![self.key.as_str(), other.as_str()],
            _ => vec![self.key.as_str()],
        }
    }

    /// Whether `config` satisfies this condition, using the same lenient
    /// value coercions and defaults the owning server's config parsing
    /// uses.
    #[must_use]
    pub fn matches(&self, config: &ResolvedConfig) -> bool {
        match &self.predicate {
            Predicate::BoolIs { expected, default } => {
                config.bool_or(&self.key, *default) == *expected
            }
            Predicate::IntEquals { expected, default } => {
                config.int_or(&self.key, *default) == *expected
            }
            Predicate::IntBelow { limit, default } => config.int_or(&self.key, *default) < *limit,
            Predicate::IntWithin { min, max, default } => {
                let v = config.int_or(&self.key, *default);
                v >= *min && v <= *max
            }
            Predicate::IntOutside { min, max, default } => {
                let v = config.int_or(&self.key, *default);
                v < *min || v > *max
            }
            Predicate::IntAboveItem {
                other,
                default,
                other_default,
            } => config.int_or(&self.key, *default) > config.int_or(other, *other_default),
            Predicate::StrIs { expected, default } => config.str_or(&self.key, default) == expected,
            Predicate::StrIn { any_of, default } => {
                let v = config.str_or(&self.key, default);
                any_of.iter().any(|s| s == v)
            }
            Predicate::StrNotIn { allowed, default } => {
                let v = config.str_or(&self.key, default);
                !allowed.iter().any(|s| s == v)
            }
            Predicate::ListHasOrEmpty { value } => {
                let members = self.list_members(config);
                members.is_empty() || members.iter().any(|m| m == value)
            }
            Predicate::ListLacks { value } => !self.list_members(config).iter().any(|m| m == value),
        }
    }

    /// Binds a value under which this condition holds into `config`
    /// (best effort; leaves `config` alone when the condition already
    /// matches, e.g. because its default satisfies it).
    pub fn bind_witness(&self, config: &mut ResolvedConfig) {
        use crate::ConfigValue;
        if self.matches(config) {
            return;
        }
        match &self.predicate {
            Predicate::BoolIs { expected, .. } => {
                config.set(&self.key, ConfigValue::Bool(*expected));
            }
            Predicate::IntEquals { expected, .. } => {
                config.set(&self.key, ConfigValue::Int(*expected));
            }
            Predicate::IntBelow { limit, .. } => {
                config.set(&self.key, ConfigValue::Int(limit - 1));
            }
            Predicate::IntWithin { min, .. } => {
                config.set(&self.key, ConfigValue::Int(*min));
            }
            Predicate::IntOutside { max, .. } => {
                config.set(&self.key, ConfigValue::Int(max + 1));
            }
            Predicate::IntAboveItem {
                other,
                other_default,
                ..
            } => {
                let bar = config.int_or(other, *other_default);
                config.set(&self.key, ConfigValue::Int(bar + 1));
            }
            Predicate::StrIs { expected, .. } => {
                config.set(&self.key, ConfigValue::Str(expected.clone()));
            }
            Predicate::StrIn { any_of, .. } => {
                if let Some(first) = any_of.first() {
                    config.set(&self.key, ConfigValue::Str(first.clone()));
                }
            }
            Predicate::StrNotIn { .. } => {
                config.set(&self.key, ConfigValue::Str("cmfuzz-invalid".to_owned()));
            }
            Predicate::ListHasOrEmpty { value } => {
                for i in 0..LIST_SCAN {
                    let slot = format!("{}[{i}]", self.key);
                    if config.get(&slot).is_none() {
                        config.set(&slot, ConfigValue::Str(value.clone()));
                        break;
                    }
                }
            }
            // Removing a list member is not expressible as a binding; a
            // non-matching Lacks condition keeps the config unchanged.
            Predicate::ListLacks { .. } => {}
        }
    }

    fn list_members(&self, config: &ResolvedConfig) -> Vec<String> {
        (0..LIST_SCAN)
            .filter_map(|i| config.get(&format!("{}[{i}]", self.key)))
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect()
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.predicate {
            Predicate::BoolIs { expected, .. } => write!(f, "{} = {expected}", self.key),
            Predicate::IntEquals { expected, .. } => write!(f, "{} = {expected}", self.key),
            Predicate::IntBelow { limit, .. } => write!(f, "{} < {limit}", self.key),
            Predicate::IntWithin { min, max, .. } => {
                write!(f, "{} in [{min}, {max}]", self.key)
            }
            Predicate::IntOutside { min, max, .. } => {
                write!(f, "{} outside [{min}, {max}]", self.key)
            }
            Predicate::IntAboveItem { other, .. } => write!(f, "{} > {other}", self.key),
            Predicate::StrIs { expected, .. } => write!(f, "{} = {expected:?}", self.key),
            Predicate::StrIn { any_of, .. } => {
                write!(f, "{} in {{{}}}", self.key, any_of.join(", "))
            }
            Predicate::StrNotIn { allowed, .. } => {
                write!(f, "{} not in {{{}}}", self.key, allowed.join(", "))
            }
            Predicate::ListHasOrEmpty { value } => {
                write!(f, "{}[] has {value:?} (or is empty)", self.key)
            }
            Predicate::ListLacks { value } => write!(f, "{}[] lacks {value:?}", self.key),
        }
    }
}

/// One startup conflict: a conjunction of conditions that, when all
/// satisfied, makes the target refuse to boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigConstraint {
    reason: String,
    conditions: Vec<Condition>,
}

impl ConfigConstraint {
    /// Builds a constraint from its human-readable reason (the same text
    /// the server's `StartError` carries) and its conditions.
    #[must_use]
    pub fn new(reason: &str, conditions: Vec<Condition>) -> Self {
        ConfigConstraint {
            reason: reason.to_owned(),
            conditions,
        }
    }

    /// The failure reason the target would report at boot.
    #[must_use]
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// The conjunction of conditions.
    #[must_use]
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Whether `config` satisfies every condition (i.e. conflicts).
    #[must_use]
    pub fn violated_by(&self, config: &ResolvedConfig) -> bool {
        !self.conditions.is_empty() && self.conditions.iter().all(|c| c.matches(config))
    }

    /// Every configuration item the constraint reads, deduplicated in
    /// first-reference order.
    #[must_use]
    pub fn referenced_items(&self) -> Vec<&str> {
        let mut items: Vec<&str> = Vec::new();
        for condition in &self.conditions {
            for item in condition.referenced_items() {
                if !items.contains(&item) {
                    items.push(item);
                }
            }
        }
        items
    }

    /// A configuration that violates this constraint, built by binding a
    /// witness value for each condition (best effort — used by
    /// consistency tests and diagnostics examples).
    #[must_use]
    pub fn witness(&self) -> ResolvedConfig {
        let mut config = ResolvedConfig::new();
        for condition in &self.conditions {
            condition.bind_witness(&mut config);
        }
        config
    }
}

impl fmt::Display for ConfigConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.conditions.iter().map(Condition::to_string).collect();
        write!(f, "{} when {}", self.reason, rendered.join(" and "))
    }
}

/// A target's complete set of declared startup conflicts.
///
/// The empty set (the [`Default`]) declares nothing — targets that do not
/// describe their conflicts keep today's boot-time-only behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    constraints: Vec<ConfigConstraint>,
}

impl ConstraintSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint (builder style).
    #[must_use]
    pub fn with(mut self, constraint: ConfigConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds a constraint.
    pub fn push(&mut self, constraint: ConfigConstraint) {
        self.constraints.push(constraint);
    }

    /// The constraints in declaration order.
    #[must_use]
    pub fn constraints(&self) -> &[ConfigConstraint] {
        &self.constraints
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set declares nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Every constraint `config` violates, in declaration order.
    #[must_use]
    pub fn violations(&self, config: &ResolvedConfig) -> Vec<&ConfigConstraint> {
        self.constraints
            .iter()
            .filter(|c| c.violated_by(config))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigValue;

    fn tls_conflict() -> ConfigConstraint {
        ConfigConstraint::new(
            "auth-method tls requires tls_enabled",
            vec![
                Condition::str_is("auth-method", "tls", "none"),
                Condition::bool_is("tls_enabled", false, false),
            ],
        )
    }

    #[test]
    fn conjunction_requires_every_condition() {
        let constraint = tls_conflict();
        let mut config = ResolvedConfig::new();
        assert!(!constraint.violated_by(&config), "defaults are clean");
        config.set("auth-method", ConfigValue::Str("tls".into()));
        assert!(constraint.violated_by(&config), "tls without tls_enabled");
        config.set("tls_enabled", ConfigValue::Bool(true));
        assert!(!constraint.violated_by(&config), "enabling tls resolves it");
    }

    #[test]
    fn defaults_participate_in_evaluation() {
        let range = ConfigConstraint::new(
            "invalid listen port",
            vec![Condition::int_outside("port", 1, 65535, 70000)],
        );
        // The (deliberately broken) default already violates the range.
        assert!(range.violated_by(&ResolvedConfig::new()));
    }

    #[test]
    fn witness_violates_its_constraint() {
        let constraints = [
            tls_conflict(),
            ConfigConstraint::new(
                "invalid listen port",
                vec![Condition::int_outside("port", 1, 65535, 1883)],
            ),
            ConfigConstraint::new(
                "tls message floor",
                vec![
                    Condition::bool_is("tls_enabled", true, false),
                    Condition::int_within("message_size_limit", 1, 63, 0),
                ],
            ),
            ConfigConstraint::new(
                "fragment exceeds message size",
                vec![Condition::int_above_item(
                    "fragment",
                    "max-message",
                    1300,
                    1400,
                )],
            ),
            ConfigConstraint::new(
                "unknown cipher",
                vec![Condition::str_not_in(
                    "cipher",
                    &["aes128-gcm", "aes256-gcm"],
                    "aes128-gcm",
                )],
            ),
            ConfigConstraint::new(
                "chacha20 requires 1.2",
                vec![
                    Condition::str_in("version", &["1", "1.0"], "1.2"),
                    Condition::str_is("cipher", "chacha20", "aes128-gcm"),
                ],
            ),
            ConfigConstraint::new("worker floor", vec![Condition::int_below("threads", 1, 4)]),
            ConfigConstraint::new(
                "cache required",
                vec![
                    Condition::bool_is("rd-enable", true, false),
                    Condition::int_equals("cache-size", 0, 100),
                ],
            ),
        ];
        for constraint in &constraints {
            let witness = constraint.witness();
            assert!(
                constraint.violated_by(&witness),
                "witness fails to violate {constraint}"
            );
        }
    }

    #[test]
    fn list_predicates_scan_indexed_slots() {
        let plain = Condition::list_has_or_empty("auth.mechanisms", "PLAIN");
        let external = Condition::list_lacks("auth.mechanisms", "EXTERNAL");
        let empty = ResolvedConfig::new();
        assert!(plain.matches(&empty), "empty list counts as defaulted");
        assert!(external.matches(&empty), "empty list lacks EXTERNAL");

        let mut config = ResolvedConfig::new();
        config.set("auth.mechanisms[0]", ConfigValue::Str("EXTERNAL".into()));
        assert!(!plain.matches(&config));
        assert!(!external.matches(&config));

        let mut witness = config.clone();
        plain.bind_witness(&mut witness);
        assert!(plain.matches(&witness), "witness appended PLAIN");
    }

    #[test]
    fn violations_keep_declaration_order() {
        let set = ConstraintSet::new()
            .with(ConfigConstraint::new(
                "first",
                vec![Condition::bool_is("a", true, false)],
            ))
            .with(ConfigConstraint::new(
                "second",
                vec![Condition::bool_is("b", true, false)],
            ));
        let mut config = ResolvedConfig::new();
        config.set("a", ConfigValue::Bool(true));
        config.set("b", ConfigValue::Bool(true));
        let reasons: Vec<&str> = set.violations(&config).iter().map(|c| c.reason()).collect();
        assert_eq!(reasons, vec!["first", "second"]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn referenced_items_deduplicate_and_include_cross_items() {
        let constraint = ConfigConstraint::new(
            "r",
            vec![
                Condition::int_above_item("frag", "max", 0, 0),
                Condition::int_below("frag", 10, 0),
            ],
        );
        assert_eq!(constraint.referenced_items(), vec!["frag", "max"]);
    }

    #[test]
    fn display_renders_conditions() {
        let rendered = tls_conflict().to_string();
        assert!(rendered.contains("auth-method"));
        assert!(rendered.contains(" and "));
        assert!(Condition::int_within("x", 1, 2, 0)
            .to_string()
            .contains("[1, 2]"));
        assert!(Condition::list_lacks("m", "EXTERNAL")
            .to_string()
            .contains("lacks"));
    }

    #[test]
    fn empty_conjunction_never_violates() {
        let constraint = ConfigConstraint::new("vacuous", vec![]);
        assert!(!constraint.violated_by(&ResolvedConfig::new()));
    }
}
