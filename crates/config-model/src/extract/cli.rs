//! Pattern-matching extraction of CLI option declarations.

use crate::{ConfigItem, ItemSource};

/// Extracts configuration items from CLI option declarations.
///
/// Accepts the patterns the paper names (`--option=value`, `-flag`) plus the
/// common variants found in real `--help` output:
///
/// * `--option=value` — option with inline default.
/// * `--option value` — option with the default as the next token.
/// * `--option <placeholder>` — valued option, default unknown; a trailing
///   `(default: X)` annotation supplies the default.
/// * `--option {a,b,c}` — enumerated option; alternatives become candidate
///   values.
/// * `--option <LO-HI>` — numeric range; endpoints and midpoint become
///   candidates.
/// * `--flag` / `-f` — bare boolean flags.
///
/// Lines that contain no option token are ignored, so whole help screens can
/// be fed in unfiltered.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_cli;
///
/// let items = extract_cli(&[
///     "--max-connections=100".to_owned(),
///     "  --qos {0,1,2}   Quality of service (default: 0)".to_owned(),
///     "-v".to_owned(),
/// ]);
/// assert_eq!(items.len(), 3);
/// assert_eq!(items[0].name(), "max-connections");
/// assert_eq!(items[0].raw_value(), "100");
/// assert_eq!(items[1].candidates(), &["0", "1", "2"]);
/// assert_eq!(items[2].name(), "v");
/// ```
#[must_use]
pub fn extract_cli(lines: &[String]) -> Vec<ConfigItem> {
    lines.iter().filter_map(|line| parse_line(line)).collect()
}

fn parse_line(line: &str) -> Option<ConfigItem> {
    let mut tokens = line.split_whitespace().peekable();
    // Find the first option token on the line.
    let option = loop {
        let token = tokens.next()?;
        if let Some(stripped) = token.strip_prefix("--") {
            if !stripped.is_empty() {
                break stripped;
            }
        } else if token.len() >= 2 && token.starts_with('-') && !token.starts_with("--") {
            // Short flag: strip one dash; trailing comma from "-v, --verbose"
            // style help lines is dropped.
            break token[1..].trim_end_matches(',');
        }
    };

    let default_annotation = extract_default_annotation(line);

    // `--name=value`
    if let Some((name, value)) = option.split_once('=') {
        if !is_option_name(name) {
            return None;
        }
        return Some(ConfigItem::new(
            name,
            value.trim_matches(|c| c == '"' || c == '\''),
            ItemSource::Cli,
        ));
    }

    let name = option.trim_end_matches(',');
    if !is_option_name(name) {
        return None;
    }
    match tokens.peek().copied() {
        // `--name {a,b,c}` — enumerated alternatives.
        Some(next) if next.starts_with('{') && next.ends_with('}') => {
            let inner = &next[1..next.len() - 1];
            let candidates: Vec<String> = inner
                .split(',')
                .map(|c| c.trim().to_owned())
                .filter(|c| !c.is_empty())
                .collect();
            let default = default_annotation
                .or_else(|| candidates.first().cloned())
                .unwrap_or_default();
            Some(ConfigItem::new(name, &default, ItemSource::Cli).with_candidates(candidates))
        }
        // `--name <LO-HI>` or `--name <placeholder>` — valued option.
        Some(next) if next.starts_with('<') && next.ends_with('>') => {
            let inner = &next[1..next.len() - 1];
            if let Some((lo, hi)) = parse_range(inner) {
                let default = default_annotation.unwrap_or_else(|| lo.to_string());
                let mid = lo + (hi - lo) / 2;
                Some(
                    ConfigItem::new(name, &default, ItemSource::Cli).with_candidates([
                        lo.to_string(),
                        mid.to_string(),
                        hi.to_string(),
                    ]),
                )
            } else {
                Some(ConfigItem::new(
                    name,
                    &default_annotation.unwrap_or_default(),
                    ItemSource::Cli,
                ))
            }
        }
        // `--name value` — the next token is the default unless it reads
        // like prose (help text) or another option.
        Some(next)
            if !next.starts_with('-')
                && !next.contains(' ')
                && looks_like_value(next)
                && default_annotation.is_none() =>
        {
            Some(ConfigItem::new(name, next, ItemSource::Cli))
        }
        // Bare flag (possibly with a default annotation in the help text).
        _ => Some(ConfigItem::new(
            name,
            &default_annotation.unwrap_or_default(),
            ItemSource::Cli,
        )),
    }
}

/// A plausible option name: non-empty, starts alphanumeric, and contains
/// only identifier-ish characters.
fn is_option_name(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parses `(default: X)` annotations from help text.
fn extract_default_annotation(line: &str) -> Option<String> {
    let lower = line.to_ascii_lowercase();
    let start = lower.find("(default:")?;
    let rest = &line[start + "(default:".len()..];
    let end = rest.find(')')?;
    let value = rest[..end].trim();
    (!value.is_empty()).then(|| value.to_owned())
}

fn parse_range(inner: &str) -> Option<(i64, i64)> {
    let (lo, hi) = inner.split_once('-')?;
    let lo: i64 = lo.trim().parse().ok()?;
    let hi: i64 = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Distinguishes a default value token from the start of prose help text:
/// values are numbers, booleans, or short identifier-like words.
fn looks_like_value(token: &str) -> bool {
    if token.parse::<f64>().is_ok() {
        return true;
    }
    matches!(
        token.to_ascii_lowercase().as_str(),
        "true" | "false" | "yes" | "no" | "on" | "off"
    ) || (token.len() <= 16
        && token
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '/' || c == '.')
        && token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> ConfigItem {
        let items = extract_cli(&[line.to_owned()]);
        assert_eq!(items.len(), 1, "expected one item from {line:?}");
        items.into_iter().next().unwrap()
    }

    #[test]
    fn equals_form() {
        let item = one("--max-connections=100");
        assert_eq!(item.name(), "max-connections");
        assert_eq!(item.raw_value(), "100");
    }

    #[test]
    fn equals_form_strips_quotes() {
        let item = one("--mode=\"bridge\"");
        assert_eq!(item.raw_value(), "bridge");
    }

    #[test]
    fn space_separated_value() {
        let item = one("--log-level debug");
        assert_eq!(item.name(), "log-level");
        assert_eq!(item.raw_value(), "debug");
    }

    #[test]
    fn bare_long_flag() {
        let item = one("--verbose");
        assert_eq!(item.name(), "verbose");
        assert_eq!(item.raw_value(), "");
    }

    #[test]
    fn short_flag() {
        let item = one("-d");
        assert_eq!(item.name(), "d");
        assert_eq!(item.raw_value(), "");
    }

    #[test]
    fn enumerated_candidates() {
        let item = one("--qos {0,1,2}");
        assert_eq!(item.candidates(), &["0", "1", "2"]);
        assert_eq!(item.raw_value(), "0", "first alternative is the default");
    }

    #[test]
    fn enumeration_with_default_annotation() {
        let item = one("--block-mode {none,block1,qblock1}  Block transfer mode (default: none)");
        assert_eq!(item.raw_value(), "none");
        assert_eq!(item.candidates().len(), 3);
    }

    #[test]
    fn numeric_range() {
        let item = one("--ttl <1-255>");
        assert_eq!(item.raw_value(), "1");
        assert_eq!(item.candidates(), &["1", "128", "255"]);
    }

    #[test]
    fn placeholder_with_default_annotation() {
        let item = one("  --port <num>   Port to listen on (default: 1883)");
        assert_eq!(item.name(), "port");
        assert_eq!(item.raw_value(), "1883");
    }

    #[test]
    fn placeholder_without_default() {
        let item = one("--name <string>");
        assert_eq!(item.raw_value(), "");
    }

    #[test]
    fn help_prose_is_not_a_value() {
        let item = one("--daemon    Run the broker as a daemon");
        assert_eq!(item.name(), "daemon");
        assert_eq!(item.raw_value(), "", "prose 'Run' must not become a value");
    }

    #[test]
    fn non_option_lines_ignored() {
        assert!(extract_cli(&["Usage: broker [OPTIONS]".to_owned()]).is_empty());
        assert!(extract_cli(&[String::new()]).is_empty());
    }

    #[test]
    fn combined_short_long_help_line() {
        let item = one("-v, --verbose   Increase verbosity");
        // First option token wins; the short alias names the item.
        assert_eq!(item.name(), "v");
    }

    #[test]
    fn multiple_lines_extracted_in_order() {
        let items = extract_cli(&[
            "--a=1".to_owned(),
            "not an option".to_owned(),
            "--b=2".to_owned(),
        ]);
        let names: Vec<_> = items.iter().map(|i| i.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
