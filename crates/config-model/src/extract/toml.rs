//! TOML configuration file extraction (hierarchical format, subset).

use crate::{ConfigItem, ItemSource};

/// Extracts items from a TOML configuration file.
///
/// Supports the subset common in deployment configs: `[table]` and
/// `[table.subtable]` headers, `key = value` pairs with strings, numbers,
/// booleans and flat arrays, and `#` comments. Multi-line strings, inline
/// tables and arrays-of-tables are out of scope; lines using them are
/// skipped.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_toml;
///
/// let items = extract_toml(
///     "broker.toml",
///     "[network]\nport = 1883\n[auth]\nmethods = [\"plain\", \"scram\"]\n",
/// );
/// let pairs: Vec<_> = items.iter().map(|i| (i.name(), i.raw_value())).collect();
/// assert_eq!(
///     pairs,
///     vec![
///         ("network.port", "1883"),
///         ("auth.methods[0]", "plain"),
///         ("auth.methods[1]", "scram"),
///     ]
/// );
/// ```
#[must_use]
pub fn extract_toml(file_name: &str, content: &str) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut items = Vec::new();
    let mut table = String::new();

    for raw_line in content.lines() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            // `[[array.of.tables]]` is unsupported; skip its header.
            if inner.starts_with('[') {
                table.clear();
                continue;
            }
            table = inner.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key.is_empty() || key.contains(char::is_whitespace) {
            continue;
        }
        let name = if table.is_empty() {
            key.to_owned()
        } else {
            format!("{table}.{key}")
        };
        let value = value.trim();
        if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
            for (i, element) in inner.split(',').enumerate() {
                let element = unquote(element.trim());
                if element.is_empty() {
                    continue;
                }
                items.push(ConfigItem::new(
                    &format!("{name}[{i}]"),
                    &element,
                    source.clone(),
                ));
            }
        } else if !value.starts_with('{') && !value.starts_with("\"\"\"") {
            items.push(ConfigItem::new(&name, &unquote(value), source.clone()));
        }
    }
    items
}

fn strip_comment(line: &str) -> &str {
    // '#' inside quotes is rare in config defaults; honour the common case.
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(value: &str) -> String {
    let v = value.trim();
    if v.len() >= 2
        && ((v.starts_with('"') && v.ends_with('"')) || (v.starts_with('\'') && v.ends_with('\'')))
    {
        v[1..v.len() - 1].to_owned()
    } else {
        v.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(content: &str) -> Vec<(String, String)> {
        extract_toml("t.toml", content)
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect()
    }

    #[test]
    fn bare_and_tabled_keys() {
        assert_eq!(
            pairs("top = 1\n[net]\nport = 53\n[net.tls]\nenabled = false\n"),
            vec![
                ("top".to_owned(), "1".to_owned()),
                ("net.port".to_owned(), "53".to_owned()),
                ("net.tls.enabled".to_owned(), "false".to_owned()),
            ]
        );
    }

    #[test]
    fn strings_unquoted() {
        assert_eq!(
            pairs("name = \"gateway\"\nmode = 'fast'\n"),
            vec![
                ("name".to_owned(), "gateway".to_owned()),
                ("mode".to_owned(), "fast".to_owned()),
            ]
        );
    }

    #[test]
    fn arrays_are_indexed() {
        assert_eq!(
            pairs("ports = [1883, 8883]\n"),
            vec![
                ("ports[0]".to_owned(), "1883".to_owned()),
                ("ports[1]".to_owned(), "8883".to_owned()),
            ]
        );
    }

    #[test]
    fn comments_stripped_outside_strings() {
        assert_eq!(
            pairs("a = 1 # trailing\nb = \"x # y\"\n"),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "x # y".to_owned()),
            ]
        );
    }

    #[test]
    fn unsupported_constructs_skipped() {
        assert!(pairs("[[servers]]\nx = { a = 1 }\n").is_empty());
        assert!(pairs("").is_empty());
        assert!(pairs("not a toml line\n").is_empty());
    }

    #[test]
    fn quoted_keys_accepted() {
        assert_eq!(
            pairs("\"odd key\" = 1\n\"plain\" = 2\n"),
            vec![("plain".to_owned(), "2".to_owned())],
            "keys with whitespace rejected, quoted simple keys kept"
        );
    }
}
