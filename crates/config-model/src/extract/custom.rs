//! Heuristic extraction for unstandardized configuration formats.

use crate::{ConfigItem, ItemSource};

/// Configurable parsing rules for custom formats (paper §III-A1: "CMFuzz
/// uses heuristics and configurable parsing rules to identify adjustable
/// parameters based on keywords and contextual clues").
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::{extract_custom, ParseRules};
///
/// let rules = ParseRules::new()
///     .with_directive("set")
///     .with_comment_marker("//");
/// let items = extract_custom(
///     "target.cfg",
///     "// custom format\nset timeout 30\nretries=5\n",
///     &rules,
/// );
/// assert_eq!(items.len(), 2);
/// assert_eq!(items[0].name(), "timeout");
/// assert_eq!(items[1].name(), "retries");
/// ```
#[derive(Debug, Clone)]
pub struct ParseRules {
    directives: Vec<String>,
    comment_markers: Vec<String>,
    separators: Vec<char>,
}

impl ParseRules {
    /// Default rules: `=`/`:`/whitespace separators, `#` and `;` comments,
    /// no directive keywords.
    #[must_use]
    pub fn new() -> Self {
        ParseRules {
            directives: Vec::new(),
            comment_markers: vec!["#".to_owned(), ";".to_owned()],
            separators: vec!['=', ':'],
        }
    }

    /// Adds a directive keyword: lines of the form `keyword name value`
    /// extract `name=value`.
    #[must_use]
    pub fn with_directive(mut self, keyword: &str) -> Self {
        self.directives.push(keyword.to_owned());
        self
    }

    /// Adds a comment-line marker.
    #[must_use]
    pub fn with_comment_marker(mut self, marker: &str) -> Self {
        self.comment_markers.push(marker.to_owned());
        self
    }

    /// Adds an explicit key/value separator character.
    #[must_use]
    pub fn with_separator(mut self, separator: char) -> Self {
        self.separators.push(separator);
        self
    }
}

impl Default for ParseRules {
    fn default() -> Self {
        ParseRules::new()
    }
}

/// Extracts items from a custom-format configuration file using heuristics
/// and `rules` (Algorithm 1's `ExtractCustom`).
///
/// Per line, in order:
/// 1. comment lines (per `rules`) are skipped;
/// 2. `directive name value` lines extract `name=value`;
/// 3. `name<sep>value` with an explicit separator extracts directly;
/// 4. `name value` extracts when `name` is identifier-like;
/// 5. a lone identifier-like token extracts as a flag.
///
/// # Examples
///
/// See [`ParseRules`].
#[must_use]
pub fn extract_custom(file_name: &str, content: &str, rules: &ParseRules) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut items = Vec::new();
    for raw_line in content.lines() {
        let line = raw_line.trim();
        if line.is_empty()
            || rules
                .comment_markers
                .iter()
                .any(|m| line.starts_with(m.as_str()))
        {
            continue;
        }

        // Directive form: `set name value`.
        if let Some(rest) = rules.directives.iter().find_map(|d| {
            line.strip_prefix(d.as_str())
                .filter(|r| r.starts_with(char::is_whitespace))
        }) {
            let mut parts = rest.split_whitespace();
            if let Some(name) = parts.next() {
                if is_identifier_like(name) {
                    let value = parts.collect::<Vec<_>>().join(" ");
                    items.push(ConfigItem::new(name, &value, source.clone()));
                    continue;
                }
            }
        }

        // Explicit separator form.
        if let Some((key, value)) = rules
            .separators
            .iter()
            .find_map(|&sep| line.split_once(sep))
        {
            let key = key.trim();
            if is_identifier_like(key) {
                items.push(ConfigItem::new(key, value.trim(), source.clone()));
            }
            continue;
        }

        // Whitespace form or bare flag.
        let mut parts = line.split_whitespace();
        let key = parts.next().unwrap_or_default();
        if !is_identifier_like(key) {
            continue;
        }
        let rest: Vec<&str> = parts.collect();
        match rest.len() {
            0 => items.push(ConfigItem::new(key, "", source.clone())),
            1 => items.push(ConfigItem::new(key, rest[0], source.clone())),
            // Multi-word remainders are prose unless the key carries config
            // punctuation.
            _ if key.contains(['_', '-', '.']) => {
                items.push(ConfigItem::new(key, &rest.join(" "), source.clone()));
            }
            _ => {}
        }
    }
    items
}

fn is_identifier_like(token: &str) -> bool {
    !token.is_empty()
        && token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && token
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(content: &str, rules: &ParseRules) -> Vec<(String, String)> {
        extract_custom("t.cfg", content, rules)
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect()
    }

    #[test]
    fn default_rules_extract_separators_and_flags() {
        let rules = ParseRules::new();
        assert_eq!(
            pairs("a=1\nb: 2\nc 3\nflag-only\n", &rules),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned()),
                ("c".to_owned(), "3".to_owned()),
                ("flag-only".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn directive_form() {
        let rules = ParseRules::new().with_directive("set");
        assert_eq!(
            pairs("set window 8\n", &rules),
            vec![("window".to_owned(), "8".to_owned())]
        );
    }

    #[test]
    fn custom_comment_marker() {
        let rules = ParseRules::new().with_comment_marker("//");
        assert_eq!(pairs("// note\nx=1\n", &rules).len(), 1);
    }

    #[test]
    fn custom_separator() {
        let rules = ParseRules::new().with_separator('>');
        assert_eq!(
            pairs("depth > 4\n", &rules),
            vec![("depth".to_owned(), "4".to_owned())]
        );
    }

    #[test]
    fn prose_is_rejected() {
        let rules = ParseRules::new();
        assert!(pairs("this is a readme sentence\n", &rules).is_empty());
        assert!(pairs("123 starts with digit\n", &rules).is_empty());
    }

    #[test]
    fn config_punctuated_keys_keep_multiword_values() {
        let rules = ParseRules::new();
        assert_eq!(
            pairs("log_dest file stdout\n", &rules),
            vec![("log_dest".to_owned(), "file stdout".to_owned())]
        );
    }

    #[test]
    fn directive_with_prose_name_falls_through() {
        let rules = ParseRules::new().with_directive("set");
        // "set 123 x" has a non-identifier name; the whole line is then
        // re-examined and rejected as prose.
        assert!(pairs("set 123 x\n", &rules).is_empty());
    }
}
