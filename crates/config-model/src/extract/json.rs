//! JSON configuration file extraction (hierarchical format).

use crate::{ConfigItem, ItemSource};

/// Extracts items from a JSON configuration file by recursively walking the
/// structure and flattening nested keys into dotted paths (Algorithm 1's
/// `ExtractHierarchical` for JSON).
///
/// Scalars become items; objects recurse with `parent.child` paths; array
/// elements recurse with `parent[index]` paths. `null` extracts as an empty
/// value. Malformed JSON yields the items found up to the error point — the
/// extractor is intentionally forgiving, since real-world configuration
/// files are often sloppy.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_json;
///
/// let items = extract_json(
///     "dds.json",
///     r#"{"qos": {"reliability": "reliable", "depth": 8}, "peers": ["a", "b"]}"#,
/// );
/// let names: Vec<_> = items.iter().map(|i| i.name()).collect();
/// assert_eq!(names, vec!["qos.reliability", "qos.depth", "peers[0]", "peers[1]"]);
/// ```
#[must_use]
pub fn extract_json(file_name: &str, content: &str) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut parser = Parser {
        bytes: content.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let mut items = Vec::new();
    if let Some(value) = parser.parse_value() {
        flatten("", &value, &source, &mut items);
    }
    items
}

/// Minimal JSON document model.
#[derive(Debug, Clone)]
enum Json {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

fn flatten(path: &str, value: &Json, source: &ItemSource, out: &mut Vec<ConfigItem>) {
    match value {
        Json::Object(fields) => {
            for (key, child) in fields {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(&child_path, child, source, out);
            }
        }
        Json::Array(elements) => {
            for (i, child) in elements.iter().enumerate() {
                flatten(&format!("{path}[{i}]"), child, source, out);
            }
        }
        scalar => {
            if path.is_empty() {
                return; // A bare top-level scalar has no name to extract.
            }
            let raw = match scalar {
                Json::Null => String::new(),
                Json::Bool(b) => b.to_string(),
                Json::Number(n) => n.clone(),
                Json::String(s) => s.clone(),
                Json::Array(_) | Json::Object(_) => unreachable!(),
            };
            out.push(ConfigItem::new(path, &raw, source.clone()));
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Json::String),
            b't' => self.eat_literal("true").then_some(Json::Bool(true)),
            b'f' => self.eat_literal("false").then_some(Json::Bool(false)),
            b'n' => self.eat_literal("null").then_some(Json::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => None,
        }
    }

    fn parse_object(&mut self) -> Option<Json> {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Some(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Some(Json::Object(fields));
            }
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.eat(b'}');
            return Some(Json::Object(fields));
        }
    }

    fn parse_array(&mut self) -> Option<Json> {
        self.eat(b'[');
        let mut elements = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Some(Json::Array(elements));
        }
        loop {
            let value = self.parse_value()?;
            elements.push(value);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.eat(b']');
            return Some(Json::Array(elements));
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16 + u32::from((d as char).to_digit(16)? as u8);
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => out.push(other as char),
                },
                byte => {
                    // Re-assemble UTF-8 sequences byte by byte.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(byte);
                        let end = (start + len).min(self.bytes.len());
                        if let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) {
                            out.push_str(s);
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        (!text.is_empty() && text != "-").then(|| Json::Number(text.to_owned()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_values(content: &str) -> Vec<(String, String)> {
        extract_json("t.json", content)
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect()
    }

    #[test]
    fn flat_object() {
        assert_eq!(
            names_values(r#"{"port": 5683, "secure": true, "name": "gw"}"#),
            vec![
                ("port".to_owned(), "5683".to_owned()),
                ("secure".to_owned(), "true".to_owned()),
                ("name".to_owned(), "gw".to_owned()),
            ]
        );
    }

    #[test]
    fn nested_objects_use_dotted_paths() {
        assert_eq!(
            names_values(r#"{"a": {"b": {"c": 1}}}"#),
            vec![("a.b.c".to_owned(), "1".to_owned())]
        );
    }

    #[test]
    fn arrays_use_indexed_paths() {
        assert_eq!(
            names_values(r#"{"peers": [10, 20]}"#),
            vec![
                ("peers[0]".to_owned(), "10".to_owned()),
                ("peers[1]".to_owned(), "20".to_owned()),
            ]
        );
    }

    #[test]
    fn null_extracts_as_empty() {
        assert_eq!(
            names_values(r#"{"token": null}"#),
            vec![("token".to_owned(), String::new())]
        );
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(
            names_values(r#"{"a": -3, "b": 2.5, "c": 1e3}"#),
            vec![
                ("a".to_owned(), "-3".to_owned()),
                ("b".to_owned(), "2.5".to_owned()),
                ("c".to_owned(), "1e3".to_owned()),
            ]
        );
    }

    #[test]
    fn string_escapes_decoded() {
        assert_eq!(
            names_values(r#"{"s": "a\"b\\c\nd"}"#),
            vec![("s".to_owned(), "a\"b\\c\nd".to_owned())]
        );
    }

    #[test]
    fn unicode_escape_decoded() {
        assert_eq!(
            names_values(r#"{"s": "A"}"#),
            vec![("s".to_owned(), "A".to_owned())]
        );
    }

    #[test]
    fn objects_inside_arrays() {
        assert_eq!(
            names_values(r#"{"listeners": [{"port": 1}, {"port": 2}]}"#),
            vec![
                ("listeners[0].port".to_owned(), "1".to_owned()),
                ("listeners[1].port".to_owned(), "2".to_owned()),
            ]
        );
    }

    #[test]
    fn malformed_json_is_forgiving() {
        // Truncated input: items before the break point are still produced.
        let items = extract_json("t.json", r#"{"a": 1, "b": "#);
        assert!(items.len() <= 1);
        assert!(extract_json("t.json", "not json").is_empty());
        assert!(extract_json("t.json", "").is_empty());
    }

    #[test]
    fn empty_containers_yield_nothing() {
        assert!(names_values("{}").is_empty());
        assert!(names_values(r#"{"a": [], "b": {}}"#).is_empty());
    }

    #[test]
    fn bare_scalar_has_no_name() {
        assert!(names_values("42").is_empty());
    }

    #[test]
    fn whitespace_tolerant() {
        assert_eq!(
            names_values("  {\n  \"a\"\t:  1  }\n"),
            vec![("a".to_owned(), "1".to_owned())]
        );
    }
}
