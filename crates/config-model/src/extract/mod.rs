//! Format-specific configuration item extractors (Algorithm 1's
//! `ExtractCliOptions`, `ExtractKeyValue`, `ExtractHierarchical` and
//! `ExtractCustom` procedures).
//!
//! Each extractor consumes source text and yields raw
//! [`ConfigItem`](crate::ConfigItem)s; interpretation (typing, mutability,
//! typical values) happens later in
//! [`ConfigEntity::from_item`](crate::ConfigEntity::from_item).

mod cli;
mod custom;
mod detect;
mod json;
mod keyvalue;
mod toml;
mod xml;
mod yaml;

pub use cli::extract_cli;
pub use custom::{extract_custom, ParseRules};
pub use detect::{detect_format, FileFormat};
pub use json::extract_json;
pub use keyvalue::extract_key_value;
pub use toml::extract_toml;
pub use xml::extract_xml;
pub use yaml::extract_yaml;
