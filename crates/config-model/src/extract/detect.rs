//! Configuration file format detection (Algorithm 1, line 13).

/// Configuration file formats CMFuzz can extract from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    /// INI-style key-value pairs, possibly with `[sections]`.
    KeyValue,
    /// JSON documents.
    Json,
    /// XML documents.
    Xml,
    /// YAML documents (indentation-nested subset).
    Yaml,
    /// TOML documents (tables + key-value subset).
    Toml,
    /// Anything else: handled by heuristic [`extract_custom`](super::extract_custom).
    Custom,
}

/// Detects a configuration file's format from its name and content
/// (`DetectFileFormat` in Algorithm 1).
///
/// Extension is consulted first; ambiguous or unknown extensions fall back
/// to content sniffing (leading `{`/`[` → JSON, leading `<` → XML, an
/// indented `key: value` shape → YAML, `key = value` or `key value` lines →
/// key-value, otherwise custom).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::{detect_format, FileFormat};
///
/// assert_eq!(detect_format("broker.json", "{}"), FileFormat::Json);
/// assert_eq!(detect_format("cyclonedds.xml", "<C/>"), FileFormat::Xml);
/// assert_eq!(detect_format("app.conf", "port = 1\n"), FileFormat::KeyValue);
/// assert_eq!(detect_format("notes.txt", "free text"), FileFormat::Custom);
/// ```
#[must_use]
pub fn detect_format(file_name: &str, content: &str) -> FileFormat {
    if let Some(ext) = file_name
        .rsplit_once('.')
        .map(|(_, e)| e.to_ascii_lowercase())
    {
        match ext.as_str() {
            "json" => return FileFormat::Json,
            "xml" | "pit" => return FileFormat::Xml,
            "yaml" | "yml" => return FileFormat::Yaml,
            "toml" => return FileFormat::Toml,
            "ini" => return FileFormat::KeyValue,
            _ => {}
        }
    }
    sniff_content(content)
}

fn sniff_content(content: &str) -> FileFormat {
    let trimmed = content.trim_start();
    if trimmed.starts_with('{') || trimmed.starts_with('[') && trimmed.contains(':') {
        return FileFormat::Json;
    }
    if trimmed.starts_with('<') {
        return FileFormat::Xml;
    }

    let mut kv_lines = 0usize;
    let mut yaml_hints = 0usize;
    let mut other_lines = 0usize;
    for raw_line in content.lines().take(64) {
        let line = raw_line.trim_end();
        let body = line.trim_start();
        if body.is_empty() || body.starts_with('#') || body.starts_with(';') {
            continue;
        }
        let indented = line.len() != body.len();
        if body.starts_with("- ") {
            yaml_hints += 1;
        } else if let Some((key, value)) = body.split_once(':') {
            if !key.trim().contains(char::is_whitespace)
                && (indented || value.is_empty() || value.starts_with(' '))
            {
                yaml_hints += 1;
            } else {
                kv_lines += 1;
            }
        } else if body.contains('=')
            || body.starts_with('[') && body.ends_with(']')
            || looks_like_bare_kv(body)
        {
            kv_lines += 1;
        } else {
            other_lines += 1;
        }
    }
    if yaml_hints > kv_lines && yaml_hints > 0 {
        FileFormat::Yaml
    } else if kv_lines > 0 && kv_lines >= other_lines {
        FileFormat::KeyValue
    } else {
        FileFormat::Custom
    }
}

fn looks_like_bare_kv(body: &str) -> bool {
    let mut parts = body.split_whitespace();
    let key_ok = parts.next().is_some_and(|k| {
        k.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
            && k.contains(['_', '-'])
    });
    key_ok && parts.clone().count() <= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_wins() {
        assert_eq!(detect_format("a.json", "<xml/>"), FileFormat::Json);
        assert_eq!(detect_format("a.yml", "x=1"), FileFormat::Yaml);
        assert_eq!(detect_format("a.ini", "{}"), FileFormat::KeyValue);
        assert_eq!(detect_format("model.pit", "<Peach/>"), FileFormat::Xml);
    }

    #[test]
    fn json_sniffed_from_brace() {
        assert_eq!(detect_format("cfg", " {\"a\":1}"), FileFormat::Json);
    }

    #[test]
    fn xml_sniffed_from_angle_bracket() {
        assert_eq!(detect_format("cfg", "<?xml?><a/>"), FileFormat::Xml);
    }

    #[test]
    fn yaml_sniffed_from_structure() {
        let yaml = "top:\n  nested: 1\nitems:\n  - a\n";
        assert_eq!(detect_format("cfg", yaml), FileFormat::Yaml);
    }

    #[test]
    fn keyvalue_sniffed_from_equals_lines() {
        assert_eq!(
            detect_format("dnsmasq.conf", "cache-size=150\nno-resolv\n"),
            FileFormat::KeyValue
        );
    }

    #[test]
    fn mosquitto_style_space_kv() {
        assert_eq!(
            detect_format(
                "mosquitto.conf",
                "max_inflight_messages 20\npersistence true\n"
            ),
            FileFormat::KeyValue
        );
    }

    #[test]
    fn prose_falls_back_to_custom() {
        assert_eq!(
            detect_format("readme", "This file explains the setup.\nNothing here.\n"),
            FileFormat::Custom
        );
        assert_eq!(detect_format("empty", ""), FileFormat::Custom);
    }
}
