//! Key-value (INI-style) configuration file extraction.

use crate::{ConfigItem, ItemSource};

/// Extracts items from key-value configuration files (Algorithm 1's
/// `ExtractKeyValue`): INI files with optional `[sections]`, plus the
/// bare `key value` dialect used by daemons such as Mosquitto.
///
/// Recognized separators, in order of precedence: `=`, `:`, whitespace.
/// Comment lines start with `#` or `;`. Keys inside a section are prefixed
/// `section.key`.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_key_value;
///
/// let items = extract_key_value(
///     "broker.conf",
///     "# broker config\n[listener]\nport = 1883\npersistence true\n",
/// );
/// assert_eq!(items.len(), 2);
/// assert_eq!(items[0].name(), "listener.port");
/// assert_eq!(items[0].raw_value(), "1883");
/// assert_eq!(items[1].name(), "listener.persistence");
/// ```
#[must_use]
pub fn extract_key_value(file_name: &str, content: &str) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut items = Vec::new();
    let mut section = String::new();

    for raw_line in content.lines() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = inner.trim().to_owned();
            continue;
        }
        let (key, value, separator) = split_key_value(line);
        if key.is_empty() || !is_key_like(key) {
            continue;
        }
        // The whitespace-separated dialect is ambiguous with prose; accept
        // it only when the key looks like a config identifier (contains
        // `_`/`-`/`.`) or the value is a single token.
        if separator == Separator::Whitespace
            && !key.contains(['_', '-', '.'])
            && value.split_whitespace().count() > 1
        {
            continue;
        }
        let name = if section.is_empty() {
            key.to_owned()
        } else {
            format!("{section}.{key}")
        };
        items.push(ConfigItem::new(
            &name,
            value.trim_matches(|c| c == '"' || c == '\''),
            source.clone(),
        ));
    }
    items
}

fn strip_comment(line: &str) -> &str {
    for marker in ['#', ';'] {
        if let Some(pos) = line.find(marker) {
            return &line[..pos];
        }
    }
    line
}

#[derive(PartialEq, Eq)]
enum Separator {
    Explicit,
    Whitespace,
}

fn split_key_value(line: &str) -> (&str, &str, Separator) {
    for sep in ['=', ':'] {
        if let Some((k, v)) = line.split_once(sep) {
            return (k.trim(), v.trim(), Separator::Explicit);
        }
    }
    match line.split_once(char::is_whitespace) {
        Some((k, v)) => (k.trim(), v.trim(), Separator::Whitespace),
        None => (line, "", Separator::Whitespace),
    }
}

fn is_key_like(key: &str) -> bool {
    !key.contains(char::is_whitespace)
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_and_colon_and_space_separators() {
        let items = extract_key_value("f.conf", "a = 1\nb: 2\nc 3\n");
        let pairs: Vec<_> = items
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned()),
                ("c".to_owned(), "3".to_owned()),
            ]
        );
    }

    #[test]
    fn sections_prefix_keys() {
        let items = extract_key_value("f.ini", "[tls]\ncert = x\n[net]\nport = 1\n");
        assert_eq!(items[0].name(), "tls.cert");
        assert_eq!(items[1].name(), "net.port");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let items = extract_key_value("f.conf", "# comment\n; also\n\nkey = v # trailing\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].raw_value(), "v");
    }

    #[test]
    fn bare_key_is_flag() {
        let items = extract_key_value("f.conf", "allow_anonymous\n");
        assert_eq!(items[0].name(), "allow_anonymous");
        assert_eq!(items[0].raw_value(), "");
    }

    #[test]
    fn quoted_values_unquoted() {
        let items = extract_key_value("f.conf", "motd = \"hello\"\n");
        assert_eq!(items[0].raw_value(), "hello");
    }

    #[test]
    fn prose_lines_rejected() {
        let items = extract_key_value("f.conf", "this is not a config line at all\n");
        assert!(items.is_empty());
    }

    #[test]
    fn source_carries_file_name() {
        let items = extract_key_value("dnsmasq.conf", "cache-size=150\n");
        assert_eq!(
            items[0].source(),
            &ItemSource::File {
                name: "dnsmasq.conf".to_owned()
            }
        );
    }

    #[test]
    fn value_with_spaces_preserved() {
        let items = extract_key_value("f.conf", "greeting = hello world\n");
        assert_eq!(items[0].raw_value(), "hello world");
    }
}
