//! YAML configuration file extraction (hierarchical format, subset).

use std::collections::HashMap;

use crate::{ConfigItem, ItemSource};

/// Extracts items from a YAML configuration file (Algorithm 1's
/// `ExtractHierarchical` for YAML).
///
/// Supports the subset used by real-world protocol configurations:
/// indentation-nested mappings, scalar values, `- ` sequences of scalars or
/// single-key mappings, quoted strings, and `#` comments. Anchors, aliases,
/// multi-line scalars and flow collections are out of scope; lines using
/// them are skipped.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_yaml;
///
/// let items = extract_yaml(
///     "qpid.yaml",
///     "broker:\n  frame_max: 65535\n  sasl:\n    - PLAIN\n    - ANONYMOUS\n",
/// );
/// let pairs: Vec<_> = items.iter().map(|i| (i.name(), i.raw_value())).collect();
/// assert_eq!(
///     pairs,
///     vec![
///         ("broker.frame_max", "65535"),
///         ("broker.sasl[0]", "PLAIN"),
///         ("broker.sasl[1]", "ANONYMOUS"),
///     ]
/// );
/// ```
#[must_use]
pub fn extract_yaml(file_name: &str, content: &str) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut items = Vec::new();
    // Stack of (indent, path component) for open mapping levels.
    let mut stack: Vec<(usize, String)> = Vec::new();
    // Sequence counters per container path.
    let mut seq_counters: HashMap<String, usize> = HashMap::new();

    for raw_line in content.lines() {
        let line = strip_comment(raw_line);
        if line.trim().is_empty() || line.trim() == "---" {
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        let body = line.trim();

        // Close mapping levels that this line's indentation exits.
        while stack.last().is_some_and(|(i, _)| *i >= indent) {
            stack.pop();
        }
        let parent_path = || -> String {
            stack
                .iter()
                .map(|(_, p)| p.as_str())
                .collect::<Vec<_>>()
                .join(".")
        };

        if let Some(element) = body.strip_prefix("- ") {
            let container = parent_path();
            let index = seq_counters.entry(container.clone()).or_insert(0);
            let indexed = if container.is_empty() {
                format!("[{index}]")
            } else {
                format!("{container}[{index}]")
            };
            *index += 1;
            if let Some((key, value)) = split_mapping(element) {
                if value.is_empty() {
                    // `- key:` opening a nested mapping inside a sequence is
                    // rare in protocol configs; treat as a flag.
                    items.push(ConfigItem::new(
                        &format!("{indexed}.{key}"),
                        "",
                        source.clone(),
                    ));
                } else {
                    items.push(ConfigItem::new(
                        &format!("{indexed}.{key}"),
                        &unquote(value),
                        source.clone(),
                    ));
                }
            } else {
                items.push(ConfigItem::new(&indexed, &unquote(element), source.clone()));
            }
            continue;
        }

        let Some((key, value)) = split_mapping(body) else {
            continue; // Unsupported construct (anchor, flow, etc.).
        };
        if value.is_empty() {
            // Opens a nested mapping (or sequence) level.
            stack.push((indent, key.to_owned()));
        } else {
            let path = if stack.is_empty() {
                key.to_owned()
            } else {
                format!("{}.{}", parent_path(), key)
            };
            items.push(ConfigItem::new(&path, &unquote(value), source.clone()));
        }
    }
    items
}

fn strip_comment(line: &str) -> &str {
    // A '#' starts a comment when at line start or preceded by whitespace
    // (so URLs like `http://x#y` inside values survive).
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            return &line[..i];
        }
    }
    line
}

fn split_mapping(body: &str) -> Option<(&str, &str)> {
    let (key, value) = body.split_once(':')?;
    let key = key.trim();
    if key.is_empty() || key.contains(char::is_whitespace) {
        return None;
    }
    Some((key, value.trim()))
}

fn unquote(value: &str) -> String {
    let v = value.trim();
    if v.len() >= 2
        && ((v.starts_with('"') && v.ends_with('"')) || (v.starts_with('\'') && v.ends_with('\'')))
    {
        v[1..v.len() - 1].to_owned()
    } else {
        v.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(content: &str) -> Vec<(String, String)> {
        extract_yaml("t.yaml", content)
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect()
    }

    #[test]
    fn flat_mapping() {
        assert_eq!(
            pairs("port: 5672\nheartbeat: 30\n"),
            vec![
                ("port".to_owned(), "5672".to_owned()),
                ("heartbeat".to_owned(), "30".to_owned()),
            ]
        );
    }

    #[test]
    fn nested_mappings_use_dotted_paths() {
        assert_eq!(
            pairs("a:\n  b:\n    c: 1\n  d: 2\ne: 3\n"),
            vec![
                ("a.b.c".to_owned(), "1".to_owned()),
                ("a.d".to_owned(), "2".to_owned()),
                ("e".to_owned(), "3".to_owned()),
            ]
        );
    }

    #[test]
    fn sequences_are_indexed() {
        assert_eq!(
            pairs("mechs:\n  - PLAIN\n  - EXTERNAL\n"),
            vec![
                ("mechs[0]".to_owned(), "PLAIN".to_owned()),
                ("mechs[1]".to_owned(), "EXTERNAL".to_owned()),
            ]
        );
    }

    #[test]
    fn sequence_of_single_key_mappings() {
        assert_eq!(
            pairs("listeners:\n  - port: 1\n  - port: 2\n"),
            vec![
                ("listeners[0].port".to_owned(), "1".to_owned()),
                ("listeners[1].port".to_owned(), "2".to_owned()),
            ]
        );
    }

    #[test]
    fn comments_and_document_marker_skipped() {
        assert_eq!(
            pairs("---\n# top\nkey: v # inline\n"),
            vec![("key".to_owned(), "v".to_owned())]
        );
    }

    #[test]
    fn quoted_values_unquoted() {
        assert_eq!(
            pairs("a: \"x y\"\nb: 'z'\n"),
            vec![
                ("a".to_owned(), "x y".to_owned()),
                ("b".to_owned(), "z".to_owned()),
            ]
        );
    }

    #[test]
    fn url_hash_survives() {
        assert_eq!(
            pairs("u: http://h/p#frag\n"),
            vec![("u".to_owned(), "http://h/p#frag".to_owned())]
        );
    }

    #[test]
    fn dedent_closes_levels() {
        assert_eq!(
            pairs("a:\n  b: 1\nc:\n  d: 2\n"),
            vec![
                ("a.b".to_owned(), "1".to_owned()),
                ("c.d".to_owned(), "2".to_owned()),
            ]
        );
    }

    #[test]
    fn unsupported_lines_are_skipped() {
        assert!(pairs("&anchor\n*alias\n").is_empty());
        assert!(pairs("").is_empty());
    }

    #[test]
    fn prose_keys_rejected() {
        assert!(pairs("note: this is fine\nthis is: not a key\n")
            .iter()
            .all(|(k, _)| k == "note"));
    }
}
