//! XML configuration file extraction (hierarchical format).

use crate::{ConfigItem, ItemSource};

/// Extracts items from an XML configuration file (Algorithm 1's
/// `ExtractHierarchical` for XML), as used by DDS deployments
/// (`cyclonedds.xml`) and Peach Pit files.
///
/// Elements containing only text become items at their dotted element path;
/// attributes become items at `path@attribute`. The document root element is
/// part of the path. Repeated sibling elements of the same name get
/// `[index]` suffixes starting from the second occurrence.
///
/// The parser handles declarations (`<?xml ...?>`), comments and
/// self-closing tags, and is forgiving about malformed input (it extracts
/// what it can).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::extract::extract_xml;
///
/// let items = extract_xml(
///     "dds.xml",
///     "<CycloneDDS><Domain id=\"0\"><Threads>4</Threads></Domain></CycloneDDS>",
/// );
/// let names: Vec<_> = items.iter().map(|i| i.name()).collect();
/// assert_eq!(names, vec!["CycloneDDS.Domain@id", "CycloneDDS.Domain.Threads"]);
/// ```
#[must_use]
pub fn extract_xml(file_name: &str, content: &str) -> Vec<ConfigItem> {
    let source = ItemSource::File {
        name: file_name.to_owned(),
    };
    let mut items = Vec::new();
    let mut lexer = Lexer {
        bytes: content.as_bytes(),
        pos: 0,
    };
    // path stack; sibling-name occurrence counts per depth for indexing
    let mut path: Vec<String> = Vec::new();
    let mut sibling_counts: Vec<std::collections::HashMap<String, usize>> =
        vec![Default::default()];
    let mut pending_text = String::new();

    while let Some(event) = lexer.next_event() {
        match event {
            Event::Open {
                name,
                attrs,
                self_closing,
            } => {
                let counts = sibling_counts.last_mut().expect("depth tracked");
                let seen = counts.entry(name.clone()).or_insert(0);
                let indexed = if *seen == 0 {
                    name.clone()
                } else {
                    format!("{name}[{seen}]")
                };
                *seen += 1;
                path.push(indexed);
                let elem_path = path.join(".");
                for (attr, value) in attrs {
                    items.push(ConfigItem::new(
                        &format!("{elem_path}@{attr}"),
                        &value,
                        source.clone(),
                    ));
                }
                if self_closing {
                    path.pop();
                } else {
                    sibling_counts.push(Default::default());
                    pending_text.clear();
                }
            }
            Event::Text(text) => {
                pending_text.push_str(&text);
            }
            Event::Close => {
                let text = pending_text.trim();
                if !text.is_empty() && !path.is_empty() {
                    items.push(ConfigItem::new(&path.join("."), text, source.clone()));
                }
                pending_text.clear();
                path.pop();
                if sibling_counts.len() > 1 {
                    sibling_counts.pop();
                }
            }
        }
    }
    items
}

enum Event {
    Open {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    Text(String),
    Close,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn next_event(&mut self) -> Option<Event> {
        loop {
            if self.pos >= self.bytes.len() {
                return None;
            }
            if self.bytes[self.pos] == b'<' {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"<!--") {
                    self.skip_until(b"-->");
                    continue;
                }
                if rest.starts_with(b"<?") {
                    self.skip_until(b"?>");
                    continue;
                }
                if rest.starts_with(b"<!") {
                    self.skip_until(b">");
                    continue;
                }
                if rest.starts_with(b"</") {
                    self.skip_until(b">");
                    return Some(Event::Close);
                }
                return self.read_open_tag();
            }
            // Text run until the next '<'.
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            if !text.trim().is_empty() {
                return Some(Event::Text(decode_entities(text.trim())));
            }
        }
    }

    fn skip_until(&mut self, terminator: &[u8]) {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(terminator) {
                self.pos += terminator.len();
                return;
            }
            self.pos += 1;
        }
    }

    fn read_open_tag(&mut self) -> Option<Event> {
        self.pos += 1; // consume '<'
        let name = self.read_name();
        if name.is_empty() {
            self.skip_until(b">");
            return self.next_event();
        }
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b'>' => {
                    self.pos += 1;
                    break;
                }
                b'/' => {
                    self_closing = true;
                    self.pos += 1;
                }
                _ => {
                    let attr = self.read_name();
                    if attr.is_empty() {
                        self.pos += 1;
                        continue;
                    }
                    self.skip_ws();
                    let mut value = String::new();
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        self.skip_ws();
                        if let Some(&quote @ (b'"' | b'\'')) = self.bytes.get(self.pos) {
                            self.pos += 1;
                            let start = self.pos;
                            while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                                self.pos += 1;
                            }
                            value =
                                String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                            self.pos += 1; // closing quote
                        }
                    }
                    attrs.push((attr, decode_entities(&value)));
                }
            }
        }
        Some(Event::Open {
            name,
            attrs,
            self_closing,
        })
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }
}

fn decode_entities(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_values(content: &str) -> Vec<(String, String)> {
        extract_xml("t.xml", content)
            .iter()
            .map(|i| (i.name().to_owned(), i.raw_value().to_owned()))
            .collect()
    }

    #[test]
    fn leaf_text_becomes_item() {
        assert_eq!(
            names_values("<Config><Port>1883</Port></Config>"),
            vec![("Config.Port".to_owned(), "1883".to_owned())]
        );
    }

    #[test]
    fn attributes_use_at_paths() {
        assert_eq!(
            names_values("<C><Listener port=\"1\" tls='on'/></C>"),
            vec![
                ("C.Listener@port".to_owned(), "1".to_owned()),
                ("C.Listener@tls".to_owned(), "on".to_owned()),
            ]
        );
    }

    #[test]
    fn repeated_siblings_are_indexed() {
        assert_eq!(
            names_values("<C><Peer>a</Peer><Peer>b</Peer></C>"),
            vec![
                ("C.Peer".to_owned(), "a".to_owned()),
                ("C.Peer[1]".to_owned(), "b".to_owned()),
            ]
        );
    }

    #[test]
    fn declaration_and_comments_skipped() {
        assert_eq!(
            names_values("<?xml version=\"1.0\"?><!-- c --><C><X>1</X></C>"),
            vec![("C.X".to_owned(), "1".to_owned())]
        );
    }

    #[test]
    fn entities_decoded() {
        assert_eq!(
            names_values("<C><M>a&amp;b &lt;x&gt;</M></C>"),
            vec![("C.M".to_owned(), "a&b <x>".to_owned())]
        );
    }

    #[test]
    fn nested_structure() {
        assert_eq!(
            names_values("<A><B><C>1</C><D>2</D></B><E>3</E></A>"),
            vec![
                ("A.B.C".to_owned(), "1".to_owned()),
                ("A.B.D".to_owned(), "2".to_owned()),
                ("A.E".to_owned(), "3".to_owned()),
            ]
        );
    }

    #[test]
    fn container_text_is_not_extracted_for_parent() {
        // Only leaf-ish text runs are attributed; whitespace between child
        // elements is ignored.
        assert_eq!(
            names_values("<A>\n  <B>1</B>\n</A>"),
            vec![("A.B".to_owned(), "1".to_owned())]
        );
    }

    #[test]
    fn malformed_is_forgiving() {
        assert!(names_values("").is_empty());
        assert!(names_values("<unclosed").is_empty());
        let items = names_values("<A><B>1</B>");
        assert_eq!(items, vec![("A.B".to_owned(), "1".to_owned())]);
    }
}
