//! The generalized configuration entity (paper Figure 2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfigItem, ConfigValue, ValueType};

/// The *Flag* attribute of a configuration entity: whether the scheduler may
/// mutate its value during fuzzing (paper Figure 2).
///
/// Static values such as paths or system directories are `Immutable`;
/// adjustable values such as numeric ranges or mode settings are `Mutable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mutability {
    /// The scheduler may substitute typical values during fuzzing.
    Mutable,
    /// The value is environmental (paths, identities) and is left alone.
    Immutable,
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mutability::Mutable => "MUTABLE",
            Mutability::Immutable => "IMMUTABLE",
        })
    }
}

/// A configuration entity: the 4-tuple `(Name, Type, Flag, Values)` of the
/// paper's generalized configuration model (Figure 2).
///
/// Entities are produced from raw [`ConfigItem`]s by
/// [`ConfigEntity::from_item`], which performs the three inferences the
/// paper describes: *Type* from the value pattern, *Flag* from whether the
/// value looks environmental, and *Values* (the typical mutation values)
/// from the default, declared candidates, and type-directed neighbours.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{ConfigEntity, ConfigItem, ItemSource, Mutability, ValueType};
///
/// let item = ConfigItem::new("max_inflight", "20", ItemSource::Cli);
/// let entity = ConfigEntity::from_item(&item);
/// assert_eq!(entity.name(), "max_inflight");
/// assert_eq!(entity.value_type(), ValueType::Number);
/// assert_eq!(entity.mutability(), Mutability::Mutable);
/// assert!(entity.values().len() >= 3, "typical values derived");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigEntity {
    name: String,
    value_type: ValueType,
    mutability: Mutability,
    values: Vec<ConfigValue>,
}

impl ConfigEntity {
    /// Builds an entity directly from its four attributes.
    ///
    /// Prefer [`ConfigEntity::from_item`]; this constructor serves targets
    /// that declare their configuration model programmatically. Duplicate
    /// values are removed, preserving first occurrence (the default).
    #[must_use]
    pub fn new(
        name: &str,
        value_type: ValueType,
        mutability: Mutability,
        values: Vec<ConfigValue>,
    ) -> Self {
        ConfigEntity {
            name: name.to_owned(),
            value_type,
            mutability,
            values: dedup_values(values),
        }
    }

    /// Normalizes a raw extracted item into an entity, inferring *Type*,
    /// *Flag* and *Values* as described in paper §III-A2.
    #[must_use]
    pub fn from_item(item: &ConfigItem) -> Self {
        let raw = item.raw_value();
        let value_type = if raw.is_empty() && item.candidates().is_empty() {
            // A bare flag with no value is an on/off toggle.
            ValueType::Boolean
        } else {
            ValueType::infer(raw)
        };
        let mutability = infer_mutability(item.name(), raw, value_type);
        let default = if raw.is_empty() {
            match value_type {
                ValueType::Boolean => ConfigValue::Bool(false),
                ValueType::Number => ConfigValue::Int(0),
                ValueType::String => ConfigValue::Str(String::new()),
            }
        } else {
            ConfigValue::parse(raw)
        };
        let values = match mutability {
            Mutability::Immutable => vec![default],
            Mutability::Mutable => typical_values(&default, value_type, item.candidates()),
        };
        ConfigEntity {
            name: item.name().to_owned(),
            value_type,
            mutability,
            values: dedup_values(values),
        }
    }

    /// The *Name* attribute.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The *Type* attribute.
    #[must_use]
    pub fn value_type(&self) -> ValueType {
        self.value_type
    }

    /// The *Flag* attribute.
    #[must_use]
    pub fn mutability(&self) -> Mutability {
        self.mutability
    }

    /// The *Values* attribute: typical values, default first.
    #[must_use]
    pub fn values(&self) -> &[ConfigValue] {
        &self.values
    }

    /// The default value (the first typical value).
    #[must_use]
    pub fn default_value(&self) -> &ConfigValue {
        &self.values[0]
    }

    /// Whether the scheduler may mutate this entity during fuzzing.
    #[must_use]
    pub fn is_mutable(&self) -> bool {
        self.mutability == Mutability::Mutable
    }
}

impl fmt::Display for ConfigEntity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} : {} [{}] {{{}}}",
            self.name,
            self.value_type,
            self.mutability,
            self.values
                .iter()
                .map(ConfigValue::render)
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

fn dedup_values(values: Vec<ConfigValue>) -> Vec<ConfigValue> {
    let mut out: Vec<ConfigValue> = Vec::with_capacity(values.len());
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Keywords that mark an item as environmental and therefore IMMUTABLE.
const IMMUTABLE_NAME_HINTS: &[&str] = &[
    "path",
    "dir",
    "file",
    "cert",
    "cafile",
    "keyfile",
    "pid",
    "socket",
    "home",
    "user",
    "group",
    "uri",
    "url",
    "host",
    "interface",
];

fn infer_mutability(name: &str, raw: &str, value_type: ValueType) -> Mutability {
    if value_type == ValueType::String {
        let lower = name.to_ascii_lowercase();
        if IMMUTABLE_NAME_HINTS.iter().any(|hint| lower.contains(hint)) {
            return Mutability::Immutable;
        }
        if looks_like_path_or_url(raw) {
            return Mutability::Immutable;
        }
    }
    Mutability::Mutable
}

fn looks_like_path_or_url(raw: &str) -> bool {
    raw.contains("://") || raw.starts_with('/') || raw.starts_with("./") || raw.starts_with("~/")
}

/// Derives the typical-value set for a mutable entity (paper Figure 2's
/// *Values* attribute: "derived from the item's standardized configuration
/// model", seeded with the default, declared candidates, and type-directed
/// neighbours).
fn typical_values(default: &ConfigValue, ty: ValueType, candidates: &[String]) -> Vec<ConfigValue> {
    let mut values = vec![default.clone()];
    values.extend(candidates.iter().map(|c| ConfigValue::parse(c)));
    match ty {
        ValueType::Boolean => {
            if let Some(b) = default.as_bool() {
                values.push(ConfigValue::Bool(!b));
            } else {
                values.push(ConfigValue::Bool(true));
                values.push(ConfigValue::Bool(false));
            }
        }
        ValueType::Number => {
            if let Some(n) = default.as_int() {
                // Most-diverse first: scheduling probes take a prefix of
                // this list, so the extremes that unlock different code
                // must precede the near-default neighbours.
                for candidate in [0, n.saturating_mul(2), 65535, 1, n / 2, n.saturating_add(1)] {
                    values.push(ConfigValue::Int(candidate));
                }
            } else if let ConfigValue::Float(f) = default {
                values.push(ConfigValue::Float(0.0));
                values.push(ConfigValue::Float(f * 2.0));
            }
        }
        ValueType::String => {
            // Without declared candidates there is nothing sensible to try
            // beyond the default; the empty string probes missing-value
            // handling.
            values.push(ConfigValue::Str(String::new()));
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemSource;

    fn cli(name: &str, value: &str) -> ConfigItem {
        ConfigItem::new(name, value, ItemSource::Cli)
    }

    #[test]
    fn numeric_item_becomes_mutable_number() {
        let e = ConfigEntity::from_item(&cli("keepalive", "60"));
        assert_eq!(e.value_type(), ValueType::Number);
        assert_eq!(e.mutability(), Mutability::Mutable);
        assert_eq!(e.default_value(), &ConfigValue::Int(60));
        assert!(e.values().contains(&ConfigValue::Int(120)), "double");
        assert!(e.values().contains(&ConfigValue::Int(0)), "zero");
        assert!(e.values().contains(&ConfigValue::Int(65535)), "extreme");
    }

    #[test]
    fn boolean_item_gets_both_polarities() {
        let e = ConfigEntity::from_item(&cli("persistence", "true"));
        assert_eq!(e.value_type(), ValueType::Boolean);
        assert_eq!(
            e.values(),
            &[ConfigValue::Bool(true), ConfigValue::Bool(false)]
        );
    }

    #[test]
    fn bare_flag_is_boolean_defaulting_off() {
        let e = ConfigEntity::from_item(&cli("verbose", ""));
        assert_eq!(e.value_type(), ValueType::Boolean);
        assert_eq!(e.default_value(), &ConfigValue::Bool(false));
        assert!(e.values().contains(&ConfigValue::Bool(true)));
    }

    #[test]
    fn path_value_is_immutable_string() {
        let e = ConfigEntity::from_item(&cli("log", "/var/log/broker.log"));
        assert_eq!(e.value_type(), ValueType::String);
        assert_eq!(e.mutability(), Mutability::Immutable);
        assert_eq!(e.values().len(), 1, "immutable entities keep one value");
    }

    #[test]
    fn path_like_name_is_immutable() {
        let e = ConfigEntity::from_item(&cli("certfile", "server.crt"));
        assert_eq!(e.mutability(), Mutability::Immutable);
    }

    #[test]
    fn url_value_is_immutable() {
        let e = ConfigEntity::from_item(&cli("upstream", "coap://gateway"));
        assert_eq!(e.mutability(), Mutability::Immutable);
    }

    #[test]
    fn mode_string_is_mutable() {
        let e = ConfigEntity::from_item(&cli("log_level", "info"));
        assert_eq!(e.value_type(), ValueType::String);
        assert_eq!(e.mutability(), Mutability::Mutable);
    }

    #[test]
    fn declared_candidates_seed_values() {
        let item = cli("qos", "0").with_candidates(["0", "1", "2"]);
        let e = ConfigEntity::from_item(&item);
        assert!(e.values().contains(&ConfigValue::Int(1)));
        assert!(e.values().contains(&ConfigValue::Int(2)));
    }

    #[test]
    fn values_are_deduplicated_default_first() {
        let item = cli("depth", "1").with_candidates(["1", "1", "2"]);
        let e = ConfigEntity::from_item(&item);
        assert_eq!(e.values()[0], ConfigValue::Int(1));
        let ones = e
            .values()
            .iter()
            .filter(|v| **v == ConfigValue::Int(1))
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn direct_constructor_dedups() {
        let e = ConfigEntity::new(
            "x",
            ValueType::Number,
            Mutability::Mutable,
            vec![
                ConfigValue::Int(1),
                ConfigValue::Int(1),
                ConfigValue::Int(2),
            ],
        );
        assert_eq!(e.values().len(), 2);
    }

    #[test]
    fn display_shows_all_four_attributes() {
        let e = ConfigEntity::from_item(&cli("persistence", "true"));
        let s = e.to_string();
        assert!(s.contains("persistence"));
        assert!(s.contains("Boolean"));
        assert!(s.contains("MUTABLE"));
        assert!(s.contains("true"));
        assert_eq!(Mutability::Immutable.to_string(), "IMMUTABLE");
    }

    #[test]
    fn float_default_gets_neighbours() {
        let e = ConfigEntity::from_item(&cli("timeout", "2.5"));
        assert_eq!(e.value_type(), ValueType::Number);
        assert!(e.values().contains(&ConfigValue::Float(5.0)));
    }
}
