//! Configuration values and type inference.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The *Type* attribute of a configuration entity (paper Figure 2).
///
/// Inferred from the raw value's pattern: numeric values are `Number`,
/// boolean-like values are `Boolean`, everything else (including file paths
/// and URLs) is `String`.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::ValueType;
///
/// assert_eq!(ValueType::infer("1883"), ValueType::Number);
/// assert_eq!(ValueType::infer("true"), ValueType::Boolean);
/// assert_eq!(ValueType::infer("/etc/mosquitto/ca.crt"), ValueType::String);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// Integer or floating-point quantity.
    Number,
    /// Two-state toggle (`true`/`false`, `yes`/`no`, `on`/`off`).
    Boolean,
    /// Free-form text, paths, URLs, mode names.
    String,
}

impl ValueType {
    /// Infers the type of a raw textual value.
    #[must_use]
    pub fn infer(raw: &str) -> ValueType {
        let trimmed = raw.trim();
        if is_boolean_like(trimmed) {
            ValueType::Boolean
        } else if trimmed.parse::<i64>().is_ok() || trimmed.parse::<f64>().is_ok() {
            ValueType::Number
        } else {
            ValueType::String
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Number => "Number",
            ValueType::Boolean => "Boolean",
            ValueType::String => "String",
        };
        f.write_str(s)
    }
}

fn is_boolean_like(raw: &str) -> bool {
    matches!(
        raw.to_ascii_lowercase().as_str(),
        "true" | "false" | "yes" | "no" | "on" | "off"
    )
}

/// A concrete configuration value.
///
/// `ConfigValue` is what the scheduler feeds back into a target when
/// exploring value combinations and what [`ResolvedConfig`] carries at
/// target startup.
///
/// [`ResolvedConfig`]: crate::ResolvedConfig
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{ConfigValue, ValueType};
///
/// let v = ConfigValue::parse("20");
/// assert_eq!(v, ConfigValue::Int(20));
/// assert_eq!(v.value_type(), ValueType::Number);
/// assert_eq!(v.render(), "20");
/// assert_eq!(ConfigValue::parse("off"), ConfigValue::Bool(false));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigValue {
    /// Boolean toggle.
    Bool(bool),
    /// Integer quantity.
    Int(i64),
    /// Floating-point quantity.
    Float(f64),
    /// Text value.
    Str(String),
}

impl ConfigValue {
    /// Parses a raw textual value into its most specific representation.
    #[must_use]
    pub fn parse(raw: &str) -> ConfigValue {
        let trimmed = raw.trim();
        match trimmed.to_ascii_lowercase().as_str() {
            "true" | "yes" | "on" => return ConfigValue::Bool(true),
            "false" | "no" | "off" => return ConfigValue::Bool(false),
            _ => {}
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return ConfigValue::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return ConfigValue::Float(f);
        }
        ConfigValue::Str(trimmed.to_owned())
    }

    /// The [`ValueType`] this value belongs to.
    #[must_use]
    pub fn value_type(&self) -> ValueType {
        match self {
            ConfigValue::Bool(_) => ValueType::Boolean,
            ConfigValue::Int(_) | ConfigValue::Float(_) => ValueType::Number,
            ConfigValue::Str(_) => ValueType::String,
        }
    }

    /// Renders the value back to configuration-file / CLI text.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ConfigValue::Bool(b) => b.to_string(),
            ConfigValue::Int(i) => i.to_string(),
            ConfigValue::Float(f) => f.to_string(),
            ConfigValue::Str(s) => s.clone(),
        }
    }

    /// The boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfigValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int` (or an integral `Float`).
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConfigValue::Int(i) => Some(*i),
            ConfigValue::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for ConfigValue {
    fn from(b: bool) -> Self {
        ConfigValue::Bool(b)
    }
}

impl From<i64> for ConfigValue {
    fn from(i: i64) -> Self {
        ConfigValue::Int(i)
    }
}

impl From<&str> for ConfigValue {
    fn from(s: &str) -> Self {
        ConfigValue::Str(s.to_owned())
    }
}

impl From<String> for ConfigValue {
    fn from(s: String) -> Self {
        ConfigValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_number() {
        assert_eq!(ValueType::infer("42"), ValueType::Number);
        assert_eq!(ValueType::infer("-3"), ValueType::Number);
        assert_eq!(ValueType::infer("3.14"), ValueType::Number);
        assert_eq!(ValueType::infer(" 7 "), ValueType::Number);
    }

    #[test]
    fn infer_boolean() {
        for raw in ["true", "FALSE", "Yes", "no", "ON", "off"] {
            assert_eq!(ValueType::infer(raw), ValueType::Boolean, "{raw}");
        }
    }

    #[test]
    fn infer_string_for_everything_else() {
        for raw in ["/var/lib/db", "mqtt://host", "none", "", "1a"] {
            assert_eq!(ValueType::infer(raw), ValueType::String, "{raw:?}");
        }
    }

    #[test]
    fn parse_round_trips_through_render() {
        for raw in ["true", "false", "10", "-5", "2.5", "plain"] {
            let v = ConfigValue::parse(raw);
            assert_eq!(ConfigValue::parse(&v.render()), v, "{raw}");
        }
    }

    #[test]
    fn parse_boolean_synonyms_normalize() {
        assert_eq!(ConfigValue::parse("Yes"), ConfigValue::Bool(true));
        assert_eq!(ConfigValue::parse("off"), ConfigValue::Bool(false));
    }

    #[test]
    fn accessors() {
        assert_eq!(ConfigValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ConfigValue::Int(5).as_int(), Some(5));
        assert_eq!(ConfigValue::Float(4.0).as_int(), Some(4));
        assert_eq!(ConfigValue::Float(4.5).as_int(), None);
        assert_eq!(ConfigValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(ConfigValue::Int(5).as_bool(), None);
        assert_eq!(ConfigValue::Bool(true).as_str(), None);
    }

    #[test]
    fn value_type_of_value() {
        assert_eq!(ConfigValue::Bool(true).value_type(), ValueType::Boolean);
        assert_eq!(ConfigValue::Int(1).value_type(), ValueType::Number);
        assert_eq!(ConfigValue::Float(0.5).value_type(), ValueType::Number);
        assert_eq!(ConfigValue::Str("a".into()).value_type(), ValueType::String);
    }

    #[test]
    fn display_matches_render() {
        let v = ConfigValue::Int(88);
        assert_eq!(v.to_string(), v.render());
        assert_eq!(ValueType::Number.to_string(), "Number");
        assert_eq!(ValueType::Boolean.to_string(), "Boolean");
        assert_eq!(ValueType::String.to_string(), "String");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(ConfigValue::from(true), ConfigValue::Bool(true));
        assert_eq!(ConfigValue::from(3i64), ConfigValue::Int(3));
        assert_eq!(ConfigValue::from("s"), ConfigValue::Str("s".into()));
        assert_eq!(
            ConfigValue::from(String::from("s")),
            ConfigValue::Str("s".into())
        );
    }
}
