//! Branch guards: the config predicates gating a target's coverage regions.
//!
//! A *branch guard* declares, for one instrumented branch, the set of
//! configuration [`Condition`]s that must hold for the branch to be
//! coverable at all. Guards are the specification the reachability
//! analyzer (`cmfuzz-analyze`) mines: a branch whose guard is
//! unsatisfiable within a partition's configuration space is *statically
//! dead* for that partition, and budget spent chasing it is wasted.
//!
//! Guards come in two strengths ([`GuardKind`]):
//!
//! * [`GuardKind::Startup`] — **exact**: the branch is covered *iff* the
//!   conditions hold and the server boots (startup-path branches fire
//!   unconditionally once their gate is open).
//! * [`GuardKind::Handler`] — **necessary-only**: the conditions are
//!   required for the branch to fire, but actually covering it also needs
//!   the right wire traffic. A satisfiable handler guard proves the branch
//!   *may* be reachable; an unsatisfiable one still proves it dead.
//!
//! Declaring a guard is therefore always sound for dead-branch claims and
//! never promises coverage the fuzzer must deliver.
//!
//! # Examples
//!
//! ```
//! use cmfuzz_config_model::{BranchGuard, Condition, GuardKind, GuardTable};
//!
//! let table = GuardTable::new().with(BranchGuard::new(
//!     7,
//!     "start::tls",
//!     GuardKind::Startup,
//!     vec![Condition::bool_is("tls_enabled", true, false)],
//! ));
//! assert_eq!(table.len(), 1);
//! assert_eq!(table.guards()[0].region(), "start::tls");
//! ```

use std::fmt;

use crate::Condition;

/// How tightly a guard's conditions bind the branch (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// Exact: covered iff the conditions hold and startup succeeds.
    Startup,
    /// Necessary-only: conditions must hold, traffic must also cooperate.
    Handler,
}

impl fmt::Display for GuardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardKind::Startup => "startup",
            GuardKind::Handler => "handler",
        })
    }
}

/// One branch's guard: the conditions gating one coverage region.
///
/// `branch` is the dense [`cmfuzz_coverage`-style] branch index inside the
/// declaring target's ID space; `region` is a stable human-readable label
/// (`"module::function#case"` by convention) used in diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchGuard {
    branch: u32,
    region: String,
    kind: GuardKind,
    conditions: Vec<Condition>,
}

impl BranchGuard {
    /// Builds a guard over `branch` labelled `region`.
    ///
    /// The conjunction of `conditions` must be *necessary* for the branch
    /// to fire; an empty conjunction means the branch is config-unguarded
    /// (reachable under every bootable configuration).
    #[must_use]
    pub fn new(branch: u32, region: &str, kind: GuardKind, conditions: Vec<Condition>) -> Self {
        BranchGuard {
            branch,
            region: region.to_owned(),
            kind,
            conditions,
        }
    }

    /// The dense branch index inside the declaring target's ID space.
    #[must_use]
    pub fn branch(&self) -> u32 {
        self.branch
    }

    /// The stable human-readable region label.
    #[must_use]
    pub fn region(&self) -> &str {
        &self.region
    }

    /// Whether the guard is exact (startup) or necessary-only (handler).
    #[must_use]
    pub fn kind(&self) -> GuardKind {
        self.kind
    }

    /// The conjunction of conditions gating the branch.
    #[must_use]
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Every config item name referenced by the guard's conditions.
    #[must_use]
    pub fn referenced_items(&self) -> Vec<&str> {
        let mut items: Vec<&str> = Vec::new();
        for cond in &self.conditions {
            for item in cond.referenced_items() {
                if !items.contains(&item) {
                    items.push(item);
                }
            }
        }
        items
    }
}

impl fmt::Display for BranchGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} [{}]:", self.branch, self.region, self.kind)?;
        if self.conditions.is_empty() {
            return write!(f, " (unguarded)");
        }
        for (i, cond) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " &&")?;
            }
            write!(f, " {cond}")?;
        }
        Ok(())
    }
}

/// A target's full guard declaration: one entry per guarded branch.
///
/// Branches absent from the table are treated as unguarded — the analyzer
/// never claims them dead. The table is ordered as declared; targets list
/// guards in ascending branch order by convention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardTable {
    guards: Vec<BranchGuard>,
}

impl GuardTable {
    /// Creates an empty table (a target with no declared guards).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style push.
    #[must_use]
    pub fn with(mut self, guard: BranchGuard) -> Self {
        self.guards.push(guard);
        self
    }

    /// Appends a guard.
    pub fn push(&mut self, guard: BranchGuard) {
        self.guards.push(guard);
    }

    /// All declared guards, in declaration order.
    #[must_use]
    pub fn guards(&self) -> &[BranchGuard] {
        &self.guards
    }

    /// Number of guarded branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Whether the target declares no guards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// Iterates over the declared guards.
    pub fn iter(&self) -> impl Iterator<Item = &BranchGuard> {
        self.guards.iter()
    }
}

impl FromIterator<BranchGuard> for GuardTable {
    fn from_iter<I: IntoIterator<Item = BranchGuard>>(iter: I) -> Self {
        GuardTable {
            guards: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BranchGuard {
        BranchGuard::new(
            3,
            "start::auth",
            GuardKind::Startup,
            vec![
                Condition::str_is("auth-method", "tls", "none"),
                Condition::bool_is("tls_enabled", true, false),
            ],
        )
    }

    #[test]
    fn guard_exposes_attributes() {
        let g = sample();
        assert_eq!(g.branch(), 3);
        assert_eq!(g.region(), "start::auth");
        assert_eq!(g.kind(), GuardKind::Startup);
        assert_eq!(g.conditions().len(), 2);
    }

    #[test]
    fn referenced_items_dedup_in_order() {
        let g = BranchGuard::new(
            0,
            "r",
            GuardKind::Handler,
            vec![
                Condition::int_above_item("frame", "mtu", 0, 0),
                Condition::int_within("mtu", 1, 10, 5),
            ],
        );
        assert_eq!(g.referenced_items(), vec!["frame", "mtu"]);
    }

    #[test]
    fn display_joins_conditions() {
        let s = sample().to_string();
        assert!(s.contains("start::auth"), "{s}");
        assert!(s.contains("startup"), "{s}");
        assert!(s.contains("&&"), "{s}");
        let unguarded = BranchGuard::new(1, "r", GuardKind::Handler, vec![]);
        assert!(unguarded.to_string().contains("unguarded"));
    }

    #[test]
    fn table_builder_and_iter() {
        let table = GuardTable::new().with(sample());
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert_eq!(table.iter().count(), 1);
        let collected: GuardTable = table.guards().iter().cloned().collect();
        assert_eq!(collected, table);
        assert!(GuardTable::new().is_empty());
    }
}
