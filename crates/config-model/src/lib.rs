//! Protocol configuration model identification (CMFuzz paper §III-A).
//!
//! IoT protocols expose their configuration surface through command-line
//! options and configuration files in many formats. This crate implements
//! the *Configuration Model Identification* module of CMFuzz:
//!
//! 1. **Extraction** ([`extract_model`], Algorithm 1 in the paper) — parse
//!    CLI option declarations and configuration files (key-value, JSON, XML,
//!    YAML, and unstandardized custom formats) into raw [`ConfigItem`]s.
//! 2. **Generalized model construction** (Figure 2) — normalize each item
//!    into a [`ConfigEntity`], the 4-tuple of *Name*, *Type*
//!    ([`ValueType`]), *Flag* ([`Mutability`]) and *Values* (typical
//!    mutation values), collected into a [`ConfigModel`].
//! 3. **Reassembly** ([`Assembler`]) — render a group of entities with
//!    chosen values back into runtime-ready CLI argv or config-file text for
//!    a parallel fuzzing instance (paper §III-B2).
//!
//! # Examples
//!
//! ```
//! use cmfuzz_config_model::{extract_model, ConfigSpace, ConfigFile, ValueType};
//!
//! let space = ConfigSpace {
//!     cli: vec!["--max-connections=100".to_owned(), "--verbose".to_owned()],
//!     files: vec![ConfigFile::named(
//!         "broker.conf",
//!         "persistence true\nmax_inflight_messages 20\n",
//!     )],
//! };
//! let model = extract_model(&space);
//! assert_eq!(model.len(), 4);
//! let entity = model.entity("max-connections").expect("extracted");
//! assert_eq!(entity.value_type(), ValueType::Number);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod constraint;
mod entity;
pub mod extract;
mod guard;
mod item;
mod model;
mod value;

pub use assemble::{Assembler, ResolvedConfig};
pub use constraint::{Condition, ConfigConstraint, ConstraintSet, Predicate};
pub use entity::{ConfigEntity, Mutability};
pub use guard::{BranchGuard, GuardKind, GuardTable};
pub use item::{ConfigItem, ItemSource};
pub use model::{extract_model, ConfigFile, ConfigModel, ConfigSpace};
pub use value::{ConfigValue, ValueType};
