//! Reassembly of entity groups into runtime-ready configurations.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfigEntity, ConfigModel, ConfigValue};

/// A concrete configuration handed to a protocol target at startup: entity
/// names bound to chosen values.
///
/// This is the runtime-ready form of paper §III-B2 ("each instance
/// reassembles the configuration entities within its assigned group back
/// into runtime-ready forms"). Protocol targets read it with the typed
/// accessors; anything a target asks for that is not bound falls back to the
/// supplied default, matching how real daemons treat absent options.
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{ConfigValue, ResolvedConfig};
///
/// let mut config = ResolvedConfig::new();
/// config.set("max_inflight", ConfigValue::Int(20));
/// config.set("persistence", ConfigValue::Bool(true));
///
/// assert_eq!(config.int_or("max_inflight", 5), 20);
/// assert_eq!(config.bool_or("persistence", false), true);
/// assert_eq!(config.int_or("absent", 7), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResolvedConfig {
    values: BTreeMap<String, ConfigValue>,
}

impl ResolvedConfig {
    /// Creates an empty configuration (every lookup falls back to its
    /// default — the target's stock behaviour).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds every entity of `model` to its default value.
    #[must_use]
    pub fn defaults_of(model: &ConfigModel) -> Self {
        let mut config = ResolvedConfig::new();
        for entity in model.entities() {
            config.set(entity.name(), entity.default_value().clone());
        }
        config
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: &str, value: ConfigValue) {
        self.values.insert(name.to_owned(), value);
    }

    /// Removes the binding for `name`, returning it if present.
    pub fn unset(&mut self, name: &str) -> Option<ConfigValue> {
        self.values.remove(name)
    }

    /// The bound value for `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ConfigValue> {
        self.values.get(name)
    }

    /// Boolean accessor with fallback; numeric bindings are truthy when
    /// non-zero, string bindings parse leniently.
    #[must_use]
    pub fn bool_or(&self, name: &str, default: bool) -> bool {
        match self.values.get(name) {
            Some(ConfigValue::Bool(b)) => *b,
            Some(ConfigValue::Int(i)) => *i != 0,
            Some(ConfigValue::Float(f)) => *f != 0.0,
            Some(ConfigValue::Str(s)) => match ConfigValue::parse(s) {
                ConfigValue::Bool(b) => b,
                _ => default,
            },
            None => default,
        }
    }

    /// Integer accessor with fallback; booleans coerce to 0/1.
    #[must_use]
    pub fn int_or(&self, name: &str, default: i64) -> i64 {
        match self.values.get(name) {
            Some(ConfigValue::Int(i)) => *i,
            Some(ConfigValue::Float(f)) if f.fract() == 0.0 => *f as i64,
            Some(ConfigValue::Bool(b)) => i64::from(*b),
            Some(ConfigValue::Str(s)) => s.trim().parse().unwrap_or(default),
            _ => default,
        }
    }

    /// String accessor with fallback.
    #[must_use]
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        match self.values.get(name) {
            Some(ConfigValue::Str(s)) => s,
            _ => default,
        }
    }

    /// Iterates over `(name, value)` bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfigValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for ResolvedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect();
        write!(f, "{{{}}}", rendered.join(", "))
    }
}

impl FromIterator<(String, ConfigValue)> for ResolvedConfig {
    fn from_iter<I: IntoIterator<Item = (String, ConfigValue)>>(iter: I) -> Self {
        ResolvedConfig {
            values: iter.into_iter().collect(),
        }
    }
}

/// Renders an entity group with chosen values back into runtime-ready
/// forms: CLI argv or configuration-file text (paper §III-B2).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{Assembler, ConfigValue, ResolvedConfig};
///
/// let mut config = ResolvedConfig::new();
/// config.set("cache-size", ConfigValue::Int(150));
/// config.set("no-resolv", ConfigValue::Bool(true));
///
/// let argv = Assembler::to_cli_args(&config);
/// assert_eq!(argv, vec!["--cache-size=150", "--no-resolv"]);
///
/// let text = Assembler::to_key_value_file(&config);
/// assert_eq!(text, "cache-size=150\nno-resolv=true\n");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Assembler;

impl Assembler {
    /// Renders a configuration as CLI arguments: `--name=value`, with `true`
    /// booleans as bare `--name` flags and `false` booleans omitted.
    #[must_use]
    pub fn to_cli_args(config: &ResolvedConfig) -> Vec<String> {
        let mut argv = Vec::with_capacity(config.len());
        for (name, value) in config.iter() {
            match value {
                ConfigValue::Bool(true) => argv.push(format!("--{name}")),
                ConfigValue::Bool(false) => {}
                other => argv.push(format!("--{name}={}", other.render())),
            }
        }
        argv
    }

    /// Renders a configuration as key-value configuration-file text.
    #[must_use]
    pub fn to_key_value_file(config: &ResolvedConfig) -> String {
        let mut out = String::new();
        for (name, value) in config.iter() {
            out.push_str(name);
            out.push('=');
            out.push_str(&value.render());
            out.push('\n');
        }
        out
    }

    /// Renders a configuration as a JSON document for targets configured
    /// through hierarchical files; dotted names reconstruct nesting
    /// (`a.b=1` becomes `{"a":{"b":1}}`).
    ///
    /// # Examples
    ///
    /// ```
    /// use cmfuzz_config_model::{Assembler, ConfigValue, ResolvedConfig};
    ///
    /// let mut config = ResolvedConfig::new();
    /// config.set("qos.depth", ConfigValue::Int(8));
    /// config.set("qos.reliable", ConfigValue::Bool(true));
    /// config.set("name", ConfigValue::Str("gw".into()));
    /// assert_eq!(
    ///     Assembler::to_json_file(&config),
    ///     r#"{"name":"gw","qos":{"depth":8,"reliable":true}}"#
    /// );
    /// ```
    #[must_use]
    pub fn to_json_file(config: &ResolvedConfig) -> String {
        #[derive(Default)]
        struct Node {
            children: BTreeMap<String, Node>,
            value: Option<ConfigValue>,
        }
        let mut root = Node::default();
        for (name, value) in config.iter() {
            let mut node = &mut root;
            for part in name.split('.') {
                node = node.children.entry(part.to_owned()).or_default();
            }
            node.value = Some(value.clone());
        }
        fn render(node: &Node) -> String {
            if let Some(value) = &node.value {
                return match value {
                    ConfigValue::Str(s) => {
                        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
                    }
                    other => other.render(),
                };
            }
            let fields: Vec<String> = node
                .children
                .iter()
                .map(|(key, child)| format!("\"{key}\":{}", render(child)))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        render(&root)
    }

    /// Checks an assembled configuration against a target's declared
    /// startup constraints, returning every violated constraint.
    ///
    /// This is the assembly-time mirror of the `ConfigConflict` check the
    /// target itself performs at boot: a non-empty return means handing
    /// this configuration to `start()` would fail, so the conflict can be
    /// reported as a diagnostic *before* any instance spins up.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmfuzz_config_model::{
    ///     Assembler, Condition, ConfigConstraint, ConfigValue, ConstraintSet, ResolvedConfig,
    /// };
    ///
    /// let constraints = ConstraintSet::new().with(ConfigConstraint::new(
    ///     "dtls cannot run on a multicast socket",
    ///     vec![
    ///         Condition::bool_is("dtls", true, false),
    ///         Condition::bool_is("multicast", true, false),
    ///     ],
    /// ));
    /// let mut config = ResolvedConfig::new();
    /// config.set("dtls", ConfigValue::Bool(true));
    /// config.set("multicast", ConfigValue::Bool(true));
    /// let conflicts = Assembler::conflicts(&config, &constraints);
    /// assert_eq!(conflicts[0].reason(), "dtls cannot run on a multicast socket");
    /// ```
    #[must_use]
    pub fn conflicts<'a>(
        config: &ResolvedConfig,
        constraints: &'a crate::ConstraintSet,
    ) -> Vec<&'a crate::ConfigConstraint> {
        constraints.violations(config)
    }

    /// Produces the configuration binding a group of entities to specific
    /// values: group members take the provided `choices` (or their default
    /// when absent); entities outside the group are left unbound.
    #[must_use]
    pub fn bind_group(group: &[&ConfigEntity], choices: &ResolvedConfig) -> ResolvedConfig {
        let mut config = ResolvedConfig::new();
        for entity in group {
            let value = choices
                .get(entity.name())
                .cloned()
                .unwrap_or_else(|| entity.default_value().clone());
            config.set(entity.name(), value);
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConfigSpace, Mutability, ValueType};

    #[test]
    fn defaults_of_binds_every_entity() {
        let space = ConfigSpace {
            cli: vec!["--a=1".to_owned(), "--b=true".to_owned()],
            files: vec![],
        };
        let model = crate::extract_model(&space);
        let config = ResolvedConfig::defaults_of(&model);
        assert_eq!(config.len(), 2);
        assert_eq!(config.int_or("a", 0), 1);
        assert!(config.bool_or("b", false));
    }

    #[test]
    fn typed_accessors_coerce() {
        let mut c = ResolvedConfig::new();
        c.set("n", ConfigValue::Str("42".into()));
        c.set("b", ConfigValue::Int(1));
        c.set("f", ConfigValue::Float(8.0));
        c.set("s", ConfigValue::Str("mode".into()));
        assert_eq!(c.int_or("n", 0), 42);
        assert!(c.bool_or("b", false));
        assert_eq!(c.int_or("f", 0), 8);
        assert_eq!(c.str_or("s", "x"), "mode");
        assert_eq!(c.str_or("missing", "x"), "x");
        assert_eq!(c.int_or("s", 9), 9, "non-numeric string falls back");
    }

    #[test]
    fn unset_removes_binding() {
        let mut c = ResolvedConfig::new();
        c.set("a", ConfigValue::Int(1));
        assert_eq!(c.unset("a"), Some(ConfigValue::Int(1)));
        assert_eq!(c.unset("a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn cli_rendering_rules() {
        let mut c = ResolvedConfig::new();
        c.set("flag", ConfigValue::Bool(true));
        c.set("off", ConfigValue::Bool(false));
        c.set("num", ConfigValue::Int(5));
        c.set("word", ConfigValue::Str("x".into()));
        assert_eq!(
            Assembler::to_cli_args(&c),
            vec!["--flag", "--num=5", "--word=x"]
        );
    }

    #[test]
    fn key_value_rendering_round_trips_through_extraction() {
        let mut c = ResolvedConfig::new();
        c.set("cache", ConfigValue::Int(150));
        c.set("secure", ConfigValue::Bool(true));
        let text = Assembler::to_key_value_file(&c);
        let items = crate::extract::extract_key_value("r.conf", &text);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name(), "cache");
        assert_eq!(items[0].raw_value(), "150");
    }

    #[test]
    fn json_rendering_round_trips_through_extraction() {
        let mut c = ResolvedConfig::new();
        c.set("net.port", ConfigValue::Int(5683));
        c.set("net.secure", ConfigValue::Bool(false));
        c.set("label", ConfigValue::Str("edge \"gw\"".into()));
        let text = Assembler::to_json_file(&c);
        let items = crate::extract::extract_json("r.json", &text);
        assert_eq!(items.len(), 3);
        let find = |name: &str| {
            items
                .iter()
                .find(|i| i.name() == name)
                .unwrap_or_else(|| panic!("{name} extracted"))
                .raw_value()
                .to_owned()
        };
        assert_eq!(find("net.port"), "5683");
        assert_eq!(find("net.secure"), "false");
        assert_eq!(find("label"), "edge \"gw\"");
    }

    #[test]
    fn bind_group_uses_choices_then_defaults() {
        let e1 = ConfigEntity::new(
            "a",
            ValueType::Number,
            Mutability::Mutable,
            vec![ConfigValue::Int(1), ConfigValue::Int(2)],
        );
        let e2 = ConfigEntity::new(
            "b",
            ValueType::Boolean,
            Mutability::Mutable,
            vec![ConfigValue::Bool(false), ConfigValue::Bool(true)],
        );
        let mut choices = ResolvedConfig::new();
        choices.set("a", ConfigValue::Int(2));
        let bound = Assembler::bind_group(&[&e1, &e2], &choices);
        assert_eq!(bound.get("a"), Some(&ConfigValue::Int(2)));
        assert_eq!(bound.get("b"), Some(&ConfigValue::Bool(false)));
    }

    #[test]
    fn conflicts_flags_violations_at_assembly_time() {
        use crate::{Condition, ConfigConstraint, ConstraintSet};
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "strict-order requires resolv.conf servers",
            vec![
                Condition::bool_is("strict-order", true, false),
                Condition::bool_is("no-resolv", true, false),
            ],
        ));
        let mut config = ResolvedConfig::new();
        config.set("strict-order", ConfigValue::Bool(true));
        assert!(Assembler::conflicts(&config, &constraints).is_empty());
        config.set("no-resolv", ConfigValue::Bool(true));
        let found = Assembler::conflicts(&config, &constraints);
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].reason(),
            "strict-order requires resolv.conf servers"
        );
    }

    #[test]
    fn display_and_from_iterator() {
        let c: ResolvedConfig = vec![("k".to_owned(), ConfigValue::Int(3))]
            .into_iter()
            .collect();
        assert_eq!(c.to_string(), "{k=3}");
    }
}
