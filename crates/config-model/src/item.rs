//! Raw configuration items as extracted from their sources.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Where a configuration item was extracted from (Algorithm 1 inputs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemSource {
    /// A command-line option (`--option=value`, `-flag`, help text).
    Cli,
    /// A configuration file, identified by its name.
    File {
        /// File name the item came from (e.g. `mosquitto.conf`).
        name: String,
    },
}

impl fmt::Display for ItemSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemSource::Cli => f.write_str("cli"),
            ItemSource::File { name } => write!(f, "file:{name}"),
        }
    }
}

/// A raw configuration item: the direct output of extraction, before
/// normalization into a [`ConfigEntity`](crate::ConfigEntity).
///
/// Items keep the value exactly as it appeared in the source so that the
/// model-construction step owns all interpretation (type inference,
/// mutability, typical values).
///
/// # Examples
///
/// ```
/// use cmfuzz_config_model::{ConfigItem, ItemSource};
///
/// let item = ConfigItem::new("max_inflight", "20", ItemSource::Cli);
/// assert_eq!(item.name(), "max_inflight");
/// assert_eq!(item.raw_value(), "20");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigItem {
    name: String,
    raw_value: String,
    source: ItemSource,
    candidates: Vec<String>,
}

impl ConfigItem {
    /// Creates an item with no declared candidate values.
    #[must_use]
    pub fn new(name: &str, raw_value: &str, source: ItemSource) -> Self {
        ConfigItem {
            name: name.to_owned(),
            raw_value: raw_value.to_owned(),
            source,
            candidates: Vec::new(),
        }
    }

    /// Attaches candidate values declared by the source, e.g. the
    /// alternatives of an enumerated CLI option (`--qos {0,1,2}`) or a
    /// numeric range hint (`<1-100>`). These seed the entity's *Values*
    /// attribute.
    #[must_use]
    pub fn with_candidates<I, S>(mut self, candidates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.candidates = candidates.into_iter().map(Into::into).collect();
        self
    }

    /// Item name as it appeared in the source (without leading dashes).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw default value text; empty for bare flags.
    #[must_use]
    pub fn raw_value(&self) -> &str {
        &self.raw_value
    }

    /// Which source the item came from.
    #[must_use]
    pub fn source(&self) -> &ItemSource {
        &self.source
    }

    /// Candidate values declared by the source.
    #[must_use]
    pub fn candidates(&self) -> &[String] {
        &self.candidates
    }
}

impl fmt::Display for ConfigItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={} ({})", self.name, self.raw_value, self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let item = ConfigItem::new("port", "1883", ItemSource::Cli);
        assert_eq!(item.name(), "port");
        assert_eq!(item.raw_value(), "1883");
        assert_eq!(item.source(), &ItemSource::Cli);
        assert!(item.candidates().is_empty());
    }

    #[test]
    fn candidates_attach() {
        let item = ConfigItem::new("qos", "0", ItemSource::Cli).with_candidates(["0", "1", "2"]);
        assert_eq!(item.candidates(), &["0", "1", "2"]);
    }

    #[test]
    fn display_includes_source() {
        let item = ConfigItem::new(
            "cache",
            "150",
            ItemSource::File {
                name: "dnsmasq.conf".to_owned(),
            },
        );
        assert_eq!(item.to_string(), "cache=150 (file:dnsmasq.conf)");
        assert_eq!(
            ConfigItem::new("v", "", ItemSource::Cli).to_string(),
            "v= (cli)"
        );
    }
}
