//! Client-side abuse controls: per-connection token buckets and the
//! global kill switch.
//!
//! Modeled on the fuzzfox exemplar's operator controls: a classic token
//! bucket (capacity = burst, refilled continuously at the configured
//! rate) in front of every client connection, plus an environment kill
//! switch an operator can flip to stop all fuzzing without reaching the
//! protocol. The bucket is driven by caller-supplied timestamps rather
//! than reading a clock itself, so its behaviour is exactly testable —
//! and trivially outside the engine's deterministic core.

use std::time::Duration;

/// Environment variable engaging the global kill switch. Any non-empty
/// value stops admission, kills every running campaign, and shuts the
/// server down.
pub const KILL_SWITCH_ENV: &str = "CMFUZZ_KILL";

/// Whether the operator engaged the global kill switch.
#[must_use]
pub fn kill_switch_engaged() -> bool {
    std::env::var_os(KILL_SWITCH_ENV).is_some_and(|value| !value.is_empty())
}

/// A token bucket admitting `rate` requests per second with bursts up to
/// `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Steady refill rate in tokens per second.
    rate_per_sec: u64,
    /// Bucket capacity in fill units (one token = `UNITS_PER_TOKEN`).
    capacity_units: u128,
    /// Current fill, in the same units. Refilling one nanosecond of
    /// elapsed time adds exactly `rate_per_sec` units, so the math is
    /// exact integer arithmetic with no rounding drift.
    tokens_units: u128,
    /// Timestamp of the last acquire, in nanoseconds.
    last_nanos: u64,
}

/// Fill units per whole token: the nanoseconds in a second, so that
/// `elapsed_nanos * rate_per_sec` is exactly the refill in units.
const UNITS_PER_TOKEN: u128 = 1_000_000_000;

impl TokenBucket {
    /// A bucket admitting `rate_per_sec` requests per second, with up to
    /// `burst` back-to-back. A zero rate disables limiting entirely.
    #[must_use]
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        let capacity_units = u128::from(burst.max(1)) * UNITS_PER_TOKEN;
        TokenBucket {
            rate_per_sec,
            capacity_units,
            tokens_units: capacity_units,
            last_nanos: 0,
        }
    }

    /// Tries to take one token at time `now` (monotonic, from any epoch —
    /// only deltas matter). Returns false when the bucket is empty.
    pub fn try_acquire_at(&mut self, now: Duration) -> bool {
        let now_nanos = u64::try_from(now.as_nanos()).unwrap_or(u64::MAX);
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = self.last_nanos.max(now_nanos);
        self.tokens_units = self
            .tokens_units
            .saturating_add(u128::from(elapsed).saturating_mul(u128::from(self.rate_per_sec)))
            .min(self.capacity_units);
        if self.tokens_units >= UNITS_PER_TOKEN {
            self.tokens_units -= UNITS_PER_TOKEN;
            true
        } else {
            false
        }
    }
}

/// Per-client limits the server applies to every connection.
#[derive(Debug, Clone, Copy)]
pub struct RateLimits {
    /// Requests per second each client may issue; 0 disables limiting.
    pub requests_per_sec: u64,
    /// Burst allowance on top of the steady rate.
    pub burst: u64,
}

impl Default for RateLimits {
    fn default() -> Self {
        RateLimits {
            requests_per_sec: 100,
            burst: 200,
        }
    }
}

impl RateLimits {
    /// A fresh bucket enforcing these limits (`None` when disabled).
    #[must_use]
    pub fn bucket(&self) -> Option<TokenBucket> {
        if self.requests_per_sec == 0 {
            None
        } else {
            Some(TokenBucket::new(self.requests_per_sec, self.burst))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_rate() {
        // 2/s with a burst of 3: three immediate acquires pass, the
        // fourth fails, and half a second later one token is back.
        let mut bucket = TokenBucket::new(2, 3);
        let t0 = Duration::from_secs(5);
        assert!(bucket.try_acquire_at(t0));
        assert!(bucket.try_acquire_at(t0));
        assert!(bucket.try_acquire_at(t0));
        assert!(!bucket.try_acquire_at(t0));
        assert!(!bucket.try_acquire_at(t0 + Duration::from_millis(100)));
        assert!(bucket.try_acquire_at(t0 + Duration::from_millis(500)));
        assert!(!bucket.try_acquire_at(t0 + Duration::from_millis(500)));
    }

    #[test]
    fn refill_caps_at_burst_capacity() {
        let mut bucket = TokenBucket::new(1000, 2);
        let t0 = Duration::from_secs(1);
        assert!(bucket.try_acquire_at(t0));
        // An hour idle still refills to exactly the burst capacity.
        let later = t0 + Duration::from_secs(3600);
        assert!(bucket.try_acquire_at(later));
        assert!(bucket.try_acquire_at(later));
        assert!(!bucket.try_acquire_at(later));
    }

    #[test]
    fn time_going_backwards_never_mints_tokens() {
        let mut bucket = TokenBucket::new(1, 1);
        let t0 = Duration::from_secs(100);
        assert!(bucket.try_acquire_at(t0));
        assert!(!bucket.try_acquire_at(Duration::from_secs(1)));
        assert!(!bucket.try_acquire_at(t0 + Duration::from_millis(500)));
        assert!(bucket.try_acquire_at(t0 + Duration::from_secs(1)));
    }

    #[test]
    fn zero_rate_means_no_bucket() {
        assert!(RateLimits {
            requests_per_sec: 0,
            burst: 5
        }
        .bucket()
        .is_none());
        let mut bucket = RateLimits::default().bucket().expect("limited");
        assert!(bucket.try_acquire_at(Duration::ZERO));
    }

    #[test]
    fn kill_switch_reads_the_environment() {
        // Process-global env: use a scoped unique check via the public
        // predicate against the documented variable semantics.
        let engaged_before = kill_switch_engaged();
        std::env::set_var(KILL_SWITCH_ENV, "1");
        assert!(kill_switch_engaged());
        std::env::set_var(KILL_SWITCH_ENV, "");
        assert!(!kill_switch_engaged(), "empty value means disengaged");
        std::env::remove_var(KILL_SWITCH_ENV);
        assert!(!kill_switch_engaged());
        let _ = engaged_before;
    }
}
