//! The campaign control plane: a [`FleetManager`] stepped by a dedicated
//! engine thread, with thread-safe admission and live control around it.
//!
//! The split is strict: the engine thread is the *only* caller of
//! [`FleetManager::step_wave`], so campaign execution — and with it every
//! engine RNG draw — is serialized exactly as an offline
//! [`cmfuzz_fleet::run_fleet`] would serialize it. The network side only
//! takes the manager lock between waves, for bounded-time operations
//! (admission, status, control flips), and streams telemetry through a
//! [`FanoutHub`] that is fed *after* each wave commits. Nothing a client
//! does can reorder engine randomness; the worst it can do is decide
//! *which* campaigns the next wave schedules, which per-campaign results
//! are invariant to (the soak gate holds the service to exactly that).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use cmfuzz::CampaignError;
use cmfuzz_coverage::{Ticks, VirtualClock};
use cmfuzz_fleet::{
    CampaignStatus, CoverageGradient, FleetManager, FleetOptions, RoundRobin, SchedulingPolicy,
    UcbBandit, WaveOutcome,
};
use cmfuzz_telemetry::json::ObjectWriter;
use cmfuzz_telemetry::sink::JsonlSink;
use cmfuzz_telemetry::{FanoutHub, FanoutOptions, FanoutSink, FanoutSubscriber, Telemetry};

use crate::proto::{result_digest, Submission};

/// Configuration for one control plane.
#[derive(Debug, Clone)]
pub struct PlaneOptions {
    /// Fleet scheduling knobs (slots, slice, total budget, seed sharing).
    pub fleet: FleetOptions,
    /// Scheduling policy name; see [`build_policy`].
    pub policy: String,
    /// Telemetry fan-out tuning (per-subscriber queues, eviction).
    pub fanout: FanoutOptions,
    /// Also append every event to this JSONL file (schema header first).
    pub jsonl_out: Option<PathBuf>,
}

impl Default for PlaneOptions {
    fn default() -> Self {
        PlaneOptions {
            fleet: FleetOptions::default(),
            policy: "round-robin".into(),
            fanout: FanoutOptions::default(),
            jsonl_out: None,
        }
    }
}

/// Instantiates a scheduling policy by its stable name.
#[must_use]
pub fn build_policy(name: &str) -> Option<Box<dyn SchedulingPolicy>> {
    match name {
        "round-robin" => Some(Box::new(RoundRobin::new())),
        "coverage-gradient" => Some(Box::new(CoverageGradient::new())),
        "ucb-bandit" => Some(Box::new(UcbBandit::new())),
        _ => None,
    }
}

struct PlaneShared {
    manager: Mutex<FleetManager>,
    /// Signaled on admission/resume/extension so an idle engine re-checks
    /// eligibility immediately instead of at its next poll tick.
    wake: Condvar,
    stop: AtomicBool,
    last_error: Mutex<Option<String>>,
    telemetry: Telemetry,
    hub: FanoutHub,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running control plane; dropping it without [`ControlPlane::shutdown`]
/// leaks the engine thread until process exit, so servers call `shutdown`.
pub struct ControlPlane {
    shared: Arc<PlaneShared>,
    policy_name: String,
    engine: Option<JoinHandle<()>>,
}

impl ControlPlane {
    /// Starts an empty control plane and its engine thread.
    ///
    /// # Errors
    ///
    /// Unknown policy names and an unwritable `jsonl_out` path.
    pub fn start(options: PlaneOptions) -> Result<Self, String> {
        let mut policy = build_policy(&options.policy)
            .ok_or_else(|| format!("unknown policy {:?}", options.policy))?;
        let hub = FanoutHub::new(options.fanout);
        let mut builder = Telemetry::builder(VirtualClock::new())
            .capacity(64 * 1024)
            .sink(Box::new(FanoutSink::new(&hub)));
        if let Some(path) = &options.jsonl_out {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            builder = builder.sink(Box::new(sink));
        }
        let telemetry = builder.build();
        hub.attach_metrics(&telemetry);

        let shared = Arc::new(PlaneShared {
            manager: Mutex::new(FleetManager::new(options.fleet, &telemetry)),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            last_error: Mutex::new(None),
            telemetry,
            hub,
        });

        let engine_shared = Arc::clone(&shared);
        let engine = std::thread::Builder::new()
            .name("cmfuzz-plane-engine".into())
            .spawn(move || {
                let shared = engine_shared;
                let mut manager = lock(&shared.manager);
                while !shared.stop.load(Ordering::Acquire) {
                    match manager.step_wave(policy.as_mut()) {
                        Ok(WaveOutcome::Ran { .. }) => {
                            // Publish the wave's events to subscribers
                            // before the next wave starts; drain without
                            // the manager lock so clients are never
                            // blocked behind sink I/O.
                            drop(manager);
                            shared.telemetry.drain();
                            manager = lock(&shared.manager);
                        }
                        Ok(WaveOutcome::Idle(_)) => {
                            let (guard, _timeout) = shared
                                .wake
                                .wait_timeout(manager, Duration::from_millis(5))
                                .unwrap_or_else(PoisonError::into_inner);
                            manager = guard;
                        }
                        Err(error) => {
                            *lock(&shared.last_error) = Some(error.to_string());
                            break;
                        }
                    }
                }
                drop(manager);
                shared.telemetry.drain();
            })
            .map_err(|e| format!("cannot spawn engine thread: {e}"))?;

        Ok(ControlPlane {
            shared,
            policy_name: options.policy,
            engine: Some(engine),
        })
    }

    /// The scheduling policy this plane runs.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Admits a submission (all-or-nothing, preflight-validated against
    /// the live fleet) and wakes the engine. Returns the admitted ids.
    ///
    /// Campaigns submitted with `paused: true` are paused under the same
    /// manager lock that admits them — the engine cannot take the lock in
    /// between, so a staged campaign is guaranteed to run zero waves
    /// until an explicit resume.
    ///
    /// # Errors
    ///
    /// `(exit_code, message)` following the repo convention: 3 for
    /// preflight/model rejections, 2 for operational failures (unknown
    /// subjects).
    pub fn submit(&self, submission: &Submission) -> Result<Vec<String>, (i32, String)> {
        let campaigns = submission.materialize().map_err(|m| (2, m))?;
        let ids: Vec<String> = campaigns.iter().map(|c| c.id.clone()).collect();
        let mut manager = lock(&self.shared.manager);
        manager
            .admit_batch(campaigns)
            .map_err(|error: CampaignError| (error.exit_code(), error.to_string()))?;
        for campaign in &submission.campaigns {
            if campaign.paused {
                manager.pause(&campaign.id);
            }
        }
        drop(manager);
        self.shared.wake.notify_all();
        Ok(ids)
    }

    /// Status rows for every admitted campaign, in admission order.
    #[must_use]
    pub fn status(&self) -> Vec<CampaignStatus> {
        lock(&self.shared.manager).status()
    }

    /// Pauses a campaign at its next round boundary.
    pub fn pause(&self, id: &str) -> bool {
        lock(&self.shared.manager).pause(id)
    }

    /// Resumes a paused campaign and wakes the engine.
    pub fn resume(&self, id: &str) -> bool {
        let resumed = lock(&self.shared.manager).resume(id);
        if resumed {
            self.shared.wake.notify_all();
        }
        resumed
    }

    /// Permanently kills a campaign (its slice stops at the next round
    /// boundary; its checkpoint is kept for reporting).
    pub fn kill(&self, id: &str) -> bool {
        let killed = lock(&self.shared.manager).kill(id);
        if killed {
            self.shared.wake.notify_all();
        }
        killed
    }

    /// Kills every campaign — the global kill switch path.
    pub fn kill_all(&self) -> usize {
        let mut manager = lock(&self.shared.manager);
        let ids: Vec<String> = manager.status().iter().map(|s| s.id.clone()).collect();
        let killed = ids.iter().filter(|id| manager.kill(id)).count();
        drop(manager);
        self.shared.wake.notify_all();
        killed
    }

    /// Extends a campaign's budget (strictly upward) and wakes the engine.
    pub fn extend_budget(&self, id: &str, budget: Ticks) -> bool {
        let extended = lock(&self.shared.manager).extend_budget(id, budget);
        if extended {
            self.shared.wake.notify_all();
        }
        extended
    }

    /// Deterministic FNV-1a digest of the campaign's current result
    /// (`None` until it has been scheduled at least once).
    #[must_use]
    pub fn result_digest(&self, id: &str) -> Option<String> {
        lock(&self.shared.manager)
            .campaign_result(id)
            .map(|result| result_digest(&result))
    }

    /// Whether every non-killed campaign ran to its budget.
    #[must_use]
    pub fn all_complete(&self) -> bool {
        let manager = lock(&self.shared.manager);
        !manager.is_empty() && manager.all_complete()
    }

    /// Virtual ticks consumed across the whole fleet so far.
    #[must_use]
    pub fn spent(&self) -> Ticks {
        lock(&self.shared.manager).spent()
    }

    /// The error that halted the engine, if any.
    #[must_use]
    pub fn last_error(&self) -> Option<String> {
        lock(&self.shared.last_error).clone()
    }

    /// The telemetry fan-out hub (for in-process subscribers).
    #[must_use]
    pub fn hub(&self) -> &FanoutHub {
        &self.shared.hub
    }

    /// Subscribes a named telemetry tail.
    #[must_use]
    pub fn subscribe(&self, name: &str) -> FanoutSubscriber {
        self.shared.hub.subscribe(name)
    }

    /// Metrics registry snapshot rendered as one JSON object with
    /// `counters` and `gauges` maps (bus overflow/lag and fan-out
    /// drop/eviction counters included).
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let snapshot = self.shared.telemetry.metrics_snapshot();
        let mut counters = ObjectWriter::new();
        for (name, value) in &snapshot.counters {
            counters.u64_field(name, *value);
        }
        let mut gauges = ObjectWriter::new();
        for (name, value) in &snapshot.gauges {
            gauges.u64_field(name, *value);
        }
        let mut obj = ObjectWriter::new();
        obj.raw_field("counters", &counters.finish());
        obj.raw_field("gauges", &gauges.finish());
        obj.finish()
    }

    /// Stops the engine thread, publishes any buffered events, and flushes
    /// file sinks. Idempotent-by-construction: consumes the plane.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        self.shared.telemetry.drain();
        self.shared.telemetry.flush();
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::CampaignSubmission;
    use cmfuzz_fleet::CampaignState;

    fn submission() -> Submission {
        Submission {
            campaigns: vec![
                CampaignSubmission {
                    id: "m/0".into(),
                    subject: "mosquitto".into(),
                    instances: 1,
                    budget: 300,
                    sample_interval: 100,
                    saturation_window: 200,
                    seed: 3,
                    share_group: None,
                    paused: false,
                },
                CampaignSubmission {
                    id: "d/0".into(),
                    subject: "dnsmasq".into(),
                    instances: 1,
                    budget: 300,
                    sample_interval: 100,
                    saturation_window: 200,
                    seed: 7,
                    share_group: None,
                    paused: false,
                },
            ],
        }
    }

    fn plane_options() -> PlaneOptions {
        PlaneOptions {
            fleet: FleetOptions {
                slots: 2,
                slice: Ticks::new(100),
                ..FleetOptions::default()
            },
            ..PlaneOptions::default()
        }
    }

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        for _ in 0..deadline_ms {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        done()
    }

    #[test]
    fn served_results_match_offline_run_fleet() {
        let submission = submission();
        let plane = ControlPlane::start(plane_options()).expect("plane starts");
        let admitted = plane.submit(&submission).expect("admitted");
        assert_eq!(admitted, vec!["m/0".to_owned(), "d/0".to_owned()]);
        assert!(
            wait_until(10_000, || plane.all_complete()),
            "fleet completes under the engine thread"
        );

        let offline = cmfuzz_fleet::run_fleet(
            &submission.materialize().expect("materialize"),
            &mut RoundRobin::new(),
            &plane_options().fleet,
        )
        .expect("offline fleet");
        for outcome in &offline.campaigns {
            assert_eq!(
                plane.result_digest(&outcome.id).expect("served digest"),
                result_digest(&outcome.result()),
                "{} drifted between served and offline execution",
                outcome.id
            );
        }
        plane.shutdown();
    }

    #[test]
    fn duplicate_submission_is_rejected_with_preflight_code() {
        let plane = ControlPlane::start(plane_options()).expect("plane starts");
        plane.submit(&submission()).expect("first admission");
        let (code, message) = plane.submit(&submission()).expect_err("duplicate ids");
        assert_eq!(code, 3, "preflight rejections map to exit code 3");
        assert!(message.contains("CM050"), "{message}");
        let (code, _) = plane
            .submit(&Submission {
                campaigns: vec![CampaignSubmission {
                    subject: "no-such-subject".into(),
                    ..submission().campaigns[0].clone()
                }],
            })
            .expect_err("unknown subject");
        assert_eq!(code, 2, "operational failures map to exit code 2");
        plane.shutdown();
    }

    #[test]
    fn live_control_signals_apply_between_waves() {
        // Stage both campaigns paused so no wave can run before the
        // control verbs land — pre-pause is applied atomically with
        // admission, making every assertion below race-free.
        let mut staged = submission();
        for campaign in &mut staged.campaigns {
            campaign.paused = true;
        }
        let plane = ControlPlane::start(plane_options()).expect("plane starts");
        plane.submit(&staged).expect("admitted");
        assert!(plane.kill("d/0"));
        assert!(!plane.pause("d/0"), "killed campaigns reject control");
        assert!(!plane.resume("d/0"), "kills are permanent");
        let status = plane.status();
        assert_eq!(status[0].state, CampaignState::Paused);
        assert_eq!(status[0].leases, 0, "pre-paused campaign never ran");
        assert_eq!(status[1].state, CampaignState::Killed);
        assert!(!plane.all_complete(), "paused campaign is not complete");

        assert!(plane.resume("m/0"));
        assert!(
            wait_until(10_000, || plane.all_complete()),
            "resumed campaign runs to its budget"
        );
        plane.shutdown();
    }

    #[test]
    fn subscribers_see_the_event_stream_and_metrics_surface_fanout() {
        let plane = ControlPlane::start(plane_options()).expect("plane starts");
        let tail = plane.subscribe("test-tail");
        plane.submit(&submission()).expect("admitted");
        let mut seen_finish = 0usize;
        assert!(
            wait_until(10_000, || {
                seen_finish += tail
                    .poll()
                    .iter()
                    .filter(|r| r.event.kind() == "campaign_finished")
                    .count();
                seen_finish >= 2
            }),
            "both campaigns publish campaign_finished to the tail"
        );
        let metrics = plane.metrics_json();
        assert!(metrics.contains("\"fanout.subscribers\":1"), "{metrics}");
        assert!(metrics.contains("\"bus.events_emitted\""), "{metrics}");
        plane.shutdown();
    }
}
