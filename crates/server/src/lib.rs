//! `cmfuzz-server`: campaign-as-a-service over the telemetry bus.
//!
//! The rest of the workspace runs campaigns as batch jobs: build a fleet,
//! call [`cmfuzz_fleet::run_fleet`], read the result. This crate turns
//! that machinery into a long-lived service without touching its
//! determinism story:
//!
//! - [`plane::ControlPlane`] owns a [`cmfuzz_fleet::FleetManager`] and a
//!   dedicated engine thread — the only thread that ever steps waves, so
//!   engine RNG order is exactly the offline order.
//! - [`net::serve`] is a non-blocking `std::net` readiness loop speaking
//!   line-delimited JSON ([`proto`]): submit, status, pause, resume,
//!   kill, extend, result, metrics, tail, shutdown.
//! - Telemetry streams to any number of subscribers through the
//!   [`cmfuzz_telemetry::FanoutHub`], with per-subscriber bounded queues
//!   and slow-consumer eviction; the TCP layer adds its own output-buffer
//!   bound on top.
//! - [`rate`] puts a token bucket in front of every connection and a
//!   global `CMFUZZ_KILL` switch in front of the whole service.
//! - [`soak::run_soak`] is the CI gate: ~1000 concurrent subscribers,
//!   every control verb exercised over live sockets, and zero digest
//!   drift between served and offline execution of the same submission.
//!
//! The protocol deliberately has no authentication story: the server
//! binds loopback by default and fuzzing campaigns are not secrets. What
//! it *does* defend is isolation between clients (rate limits, bounded
//! buffers) and the engine's reproducibility (control signals only ever
//! land at round boundaries, where workers are parked).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod net;
pub mod plane;
pub mod proto;
pub mod rate;
pub mod soak;

pub use json::{parse as parse_json, JsonValue};
pub use net::{serve, BlockingClient, ServeSummary, ServerOptions, StopReason};
pub use plane::{build_policy, ControlPlane, PlaneOptions};
pub use proto::{
    error_response, fnv1a_hex, ok_response, result_digest, CampaignSubmission, Request, Submission,
};
pub use rate::{kill_switch_engaged, RateLimits, TokenBucket, KILL_SWITCH_ENV};
pub use soak::{run_soak, SoakOptions, SoakReport};
