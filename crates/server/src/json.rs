//! A small owning JSON parser for control-plane requests.
//!
//! The telemetry crate emits JSON with a push-based writer and only ever
//! *validates* it ([`cmfuzz_telemetry::json::is_valid`]); the control
//! plane additionally has to read values out of client submissions, so
//! this module extends the same recursive-descent shape into a parser
//! that builds a [`JsonValue`] tree. Kept dependency-free on purpose:
//! the protocol is tiny and fully known, and the offline-shims build
//! policy rules out serde_json.

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64; integral accessors re-check range).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as insertion-ordered key/value pairs (duplicate keys:
    /// last one wins on lookup, matching common parser behaviour).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` on other variants or missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .rev()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-oriented description.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as exactly one JSON value (trailing whitespace allowed).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first defect.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8], value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.pos += 1;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.error("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a leading surrogate must be
                            // followed by "\uXXXX" with a trailing one.
                            if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                match char::from_u32(code) {
                                    Some(c) => out.push(c),
                                    None => return Err(self.error("invalid code point")),
                                }
                            } else {
                                match char::from_u32(unit) {
                                    Some(c) => out.push(c),
                                    None => return Err(self.error("unpaired surrogate")),
                                }
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                0x00..=0x1F => return Err(self.error("raw control character in string")),
                _ => {
                    // Advance over one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    /// Reads the `XXXX` of a `\uXXXX` escape; on entry `pos` is at `u`.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let mut unit = 0u32;
        for &d in digits {
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            unit = (unit << 4) | nibble;
        }
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.error("expected digit"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected fraction digits"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\nA"], "c": {"d": -2.5e2}}"#).expect("valid");
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).expect("array");
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[1].is_null());
        assert_eq!(b[2].as_str(), Some("x\nA"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&JsonValue::Number(-250.0))
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).expect("valid pair");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,]",
            "01x",
            r#""unterminated"#,
            "{}extra",
            r#""bad \q escape""#,
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn round_trips_the_telemetry_writer_output() {
        use cmfuzz_telemetry::json::ObjectWriter;
        let mut obj = ObjectWriter::new();
        obj.str_field("msg", "quote \" backslash \\ tab \t");
        obj.u64_field("n", 42);
        let v = parse(&obj.finish()).expect("writer output parses");
        assert_eq!(
            v.get("msg").and_then(JsonValue::as_str),
            Some("quote \" backslash \\ tab \t")
        );
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(42));
    }

    #[test]
    fn integral_accessor_guards_range_and_sign() {
        assert_eq!(parse("3.5").expect("ok").as_u64(), None);
        assert_eq!(parse("-1").expect("ok").as_u64(), None);
        assert_eq!(
            parse("9007199254740992").expect("ok").as_u64(),
            Some(1 << 53)
        );
    }
}
