//! The control-plane soak harness behind `cmfuzz-serve --smoke`.
//!
//! One run stands up a real plane + TCP server, attaches on the order of
//! a thousand concurrent telemetry subscribers, drives the whole client
//! command surface over live sockets (submit, status, pause/resume, kill,
//! tail, metrics, a deliberate rate-limit burst), and then holds the
//! service to the determinism gate: the digests of every surviving
//! campaign, fetched over the wire, must be bit-identical to an offline
//! [`cmfuzz_fleet::run_fleet`] of the same submission. Per-campaign
//! results are slicing- and scheduling-invariant (rare-seed sharing off),
//! so any drift here means the control plane leaked into engine RNG.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::{FleetOptions, RoundRobin};
use cmfuzz_telemetry::json::ObjectWriter;
use cmfuzz_telemetry::FanoutOptions;

use crate::json::{parse, JsonValue};
use crate::net::{serve, BlockingClient, ServerOptions};
use crate::plane::{ControlPlane, PlaneOptions};
use crate::proto::{result_digest, CampaignSubmission, Request, Submission};
use crate::rate::RateLimits;

/// Soak harness knobs.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Concurrent in-process telemetry subscribers.
    pub subscribers: usize,
    /// Threads polling those subscribers.
    pub poll_threads: usize,
    /// Per-campaign budget in virtual ticks.
    pub budget: u64,
    /// Where to write the JSONL telemetry artifact, if anywhere.
    pub jsonl_out: Option<PathBuf>,
    /// Overall deadline before the harness gives up.
    pub deadline: Duration,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            subscribers: 1000,
            poll_threads: 8,
            budget: 600,
            jsonl_out: None,
            deadline: Duration::from_secs(120),
        }
    }
}

/// What the soak run observed; [`SoakReport::passed`] is the gate.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Subscribers attached to the fan-out hub.
    pub subscribers: usize,
    /// Events the hub published.
    pub events_published: u64,
    /// Events delivered across all subscribers (sum of polls).
    pub events_delivered: u64,
    /// Events dropped on full subscriber queues.
    pub events_dropped: u64,
    /// Subscribers evicted for lagging.
    pub subscribers_evicted: u64,
    /// Telemetry lines the TCP tail client received.
    pub tail_lines: u64,
    /// Whether the tail stream led with the versioned schema header.
    pub tail_schema_ok: bool,
    /// Served-vs-offline digest comparisons that matched.
    pub digest_matches: usize,
    /// Digest comparisons performed (the surviving campaigns).
    pub digest_total: usize,
    /// Whether the pause → status → resume cycle behaved.
    pub paused_resumed: bool,
    /// Whether the sacrificial campaign was killed and stayed killed.
    pub killed: bool,
    /// Whether the deliberate burst tripped the rate limiter.
    pub rate_limited: bool,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl SoakReport {
    /// The CI gate: all control paths exercised, zero digest drift, and
    /// the full subscriber fleet stayed attached (evictions are allowed —
    /// they're the backpressure design working — but delivery must have
    /// happened at scale).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.digest_total > 0
            && self.digest_matches == self.digest_total
            && self.paused_resumed
            && self.killed
            && self.rate_limited
            && self.tail_schema_ok
            && self.tail_lines > 0
            && self.events_delivered > 0
    }

    /// Renders the report as a JSON object for the bench artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = ObjectWriter::new();
        obj.str_field("experiment", "serve_soak");
        obj.u64_field("subscribers", self.subscribers as u64);
        obj.u64_field("events_published", self.events_published);
        obj.u64_field("events_delivered", self.events_delivered);
        obj.u64_field("events_dropped", self.events_dropped);
        obj.u64_field("subscribers_evicted", self.subscribers_evicted);
        obj.u64_field("tail_lines", self.tail_lines);
        obj.raw_field("tail_schema_ok", bool_json(self.tail_schema_ok));
        obj.u64_field("digest_matches", self.digest_matches as u64);
        obj.u64_field("digest_total", self.digest_total as u64);
        obj.raw_field("paused_resumed", bool_json(self.paused_resumed));
        obj.raw_field("killed", bool_json(self.killed));
        obj.raw_field("rate_limited", bool_json(self.rate_limited));
        obj.raw_field("passed", bool_json(self.passed()));
        obj.raw_field("wall_seconds", &format!("{:.3}", self.wall.as_secs_f64()));
        obj.finish()
    }
}

fn bool_json(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// The soak fleet: two survivors the digest gate compares, plus a
/// sacrificial campaign whose budget is far too large to finish — it
/// exists to be killed mid-run.
fn soak_submission(budget: u64) -> Submission {
    let campaign = |id: &str, subject: &str, seed: u64, budget: u64| CampaignSubmission {
        id: id.into(),
        subject: subject.into(),
        instances: 2,
        budget,
        sample_interval: 100,
        saturation_window: 200,
        seed,
        share_group: None,
        paused: false,
    };
    Submission {
        campaigns: vec![
            campaign("soak/mosquitto", "mosquitto", 3, budget),
            campaign("soak/dnsmasq", "dnsmasq", 7, budget),
            campaign("soak/sacrifice", "libcoap", 11, 1_000_000),
        ],
    }
}

fn fleet_options() -> FleetOptions {
    FleetOptions {
        slots: 2,
        slice: Ticks::new(100),
        ..FleetOptions::default()
    }
}

fn ok(line: &str) -> bool {
    parse(line)
        .ok()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        == Some(true)
}

/// Runs the full soak. Failures of the *harness* (sockets, timeouts)
/// come back as `Err`; gate verdicts live in the report.
///
/// # Errors
///
/// Harness-level failures: bind/connect errors, protocol violations, and
/// the deadline expiring before the fleet completes.
#[allow(clippy::too_many_lines)]
pub fn run_soak(options: &SoakOptions) -> Result<SoakReport, String> {
    let started = Instant::now();
    let submission = soak_submission(options.budget);

    let plane = Arc::new(
        ControlPlane::start(PlaneOptions {
            fleet: fleet_options(),
            policy: "round-robin".into(),
            fanout: FanoutOptions::default(),
            jsonl_out: options.jsonl_out.clone(),
        })
        .map_err(|e| format!("plane: {e}"))?,
    );

    // Subscriber fleet first, so every subscriber sees the whole stream.
    let delivered = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let subscribers: Vec<_> = (0..options.subscribers)
        .map(|i| plane.subscribe(&format!("soak-{i}")))
        .collect();
    let poll_threads: Vec<_> = chunk_evenly(subscribers, options.poll_threads.max(1))
        .into_iter()
        .map(|chunk| {
            let delivered = Arc::clone(&delivered);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let mut any = false;
                    for subscriber in &chunk {
                        let n = subscriber.poll().len();
                        if n > 0 {
                            any = true;
                            delivered.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    }
                    if !any {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                // Final drain so end-of-run events are counted.
                for subscriber in &chunk {
                    delivered.fetch_add(subscriber.poll().len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // TCP front end.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let server_options = ServerOptions {
        limits: RateLimits {
            requests_per_sec: 50,
            burst: 20,
        },
        ..ServerOptions::default()
    };
    let server_plane = Arc::clone(&plane);
    let server = std::thread::spawn(move || serve(&listener, &server_plane, &server_options));

    let connect = || {
        BlockingClient::connect(&addr, Duration::from_secs(30)).map_err(|e| format!("connect: {e}"))
    };
    let mut control = connect()?;

    // Tail client: runs on its own connection + thread, collecting lines.
    let tail_lines = Arc::new(AtomicU64::new(0));
    let tail_schema_ok = Arc::new(AtomicBool::new(false));
    let mut tail_client = connect()?;
    let tail_thread = {
        let tail_lines = Arc::clone(&tail_lines);
        let tail_schema_ok = Arc::clone(&tail_schema_ok);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            if !matches!(tail_client.request(&Request::Tail), Ok(line) if ok(&line)) {
                return;
            }
            if let Ok(header) = tail_client.read_line() {
                tail_schema_ok.store(
                    header == cmfuzz_telemetry::schema_header_line(),
                    Ordering::Release,
                );
            }
            while !stop.load(Ordering::Acquire) {
                match tail_client.read_line() {
                    Ok(_line) => {
                        tail_lines.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => break,
                }
            }
        })
    };

    // Submit over the wire.
    let response = control
        .request(&Request::Submit(submission.clone()))
        .map_err(|e| format!("submit: {e}"))?;
    if !ok(&response) {
        return Err(format!("submission rejected: {response}"));
    }

    // Pause the first campaign once it has made some progress, verify it
    // stops leasing, then resume it.
    let survivor = &submission.campaigns[0].id;
    let mut paused_resumed = false;
    let deadline = started + options.deadline;
    wait_for(deadline, || {
        plane.status().first().is_some_and(|s| s.leases > 0)
    })?;
    if ok(&control
        .request(&Request::Pause {
            id: survivor.clone(),
        })
        .map_err(|e| format!("pause: {e}"))?)
    {
        wait_for(deadline, || {
            plane
                .status()
                .first()
                .is_some_and(|s| s.state.label() == "paused")
        })?;
        let leases_at_pause = plane.status()[0].leases;
        std::thread::sleep(Duration::from_millis(50));
        let still_paused = plane.status()[0].leases == leases_at_pause;
        let resumed = ok(&control
            .request(&Request::Resume {
                id: survivor.clone(),
            })
            .map_err(|e| format!("resume: {e}"))?);
        paused_resumed = still_paused && resumed;
    }

    // Kill the sacrificial campaign mid-run.
    let sacrifice = &submission.campaigns[2].id;
    let kill_ok = ok(&control
        .request(&Request::Kill {
            id: sacrifice.clone(),
        })
        .map_err(|e| format!("kill: {e}"))?);
    // A killed campaign rejects further control — that's what makes the
    // kill permanent rather than a pause with different spelling.
    let kill_permanent = !ok(&control
        .request(&Request::Resume {
            id: sacrifice.clone(),
        })
        .map_err(|e| format!("resume-after-kill: {e}"))?);

    // Deliberate burst from a dedicated connection to trip the limiter.
    let mut burst = connect()?;
    let mut rate_limited = false;
    for _ in 0..60 {
        let line = burst
            .request(&Request::Status)
            .map_err(|e| format!("burst: {e}"))?;
        if line.contains("rate limited") {
            rate_limited = true;
            break;
        }
    }

    // Let the survivors run to their budgets.
    wait_for(deadline, || plane.all_complete())?;

    // Digest gate: served digests vs the offline fleet of the survivors.
    // (Per-campaign results are invariant to the sacrifice's presence —
    // sharing is off — so the offline fleet omits it rather than paying
    // for its million-tick budget.)
    let survivors = Submission {
        campaigns: submission.campaigns[..2].to_vec(),
    };
    let offline = cmfuzz_fleet::run_fleet(
        &survivors
            .materialize()
            .map_err(|e| format!("materialize: {e}"))?,
        &mut RoundRobin::new(),
        &fleet_options(),
    )
    .map_err(|e| format!("offline fleet: {e}"))?;
    let mut digest_matches = 0;
    for outcome in &offline.campaigns {
        let line = control
            .request(&Request::Result {
                id: outcome.id.clone(),
            })
            .map_err(|e| format!("result: {e}"))?;
        let served = parse(&line)
            .ok()
            .and_then(|v| v.get("digest").and_then(|d| d.as_str().map(str::to_owned)))
            .ok_or_else(|| format!("malformed result response: {line}"))?;
        if served == result_digest(&outcome.result()) {
            digest_matches += 1;
        }
    }

    // Tear down: server first (so the tail connection closes), then the
    // subscriber fleet, then the plane.
    let _ = control.request(&Request::Shutdown);
    let summary = server
        .join()
        .map_err(|_| "server thread panicked".to_owned())
        .and_then(|r| r.map_err(|e| format!("serve: {e}")))?;
    stop.store(true, Ordering::Release);
    let _ = tail_thread.join();
    for thread in poll_threads {
        let _ = thread.join();
    }

    let hub = plane.hub();
    let report = SoakReport {
        subscribers: options.subscribers,
        events_published: hub.events_published(),
        events_delivered: delivered.load(Ordering::Acquire),
        events_dropped: hub.events_dropped(),
        subscribers_evicted: hub.subscribers_evicted(),
        tail_lines: tail_lines.load(Ordering::Acquire),
        tail_schema_ok: tail_schema_ok.load(Ordering::Acquire),
        digest_matches,
        digest_total: offline.campaigns.len(),
        paused_resumed,
        killed: kill_ok && kill_permanent,
        rate_limited: rate_limited || summary.rate_limited > 0,
        wall: started.elapsed(),
    };
    if let Ok(plane) = Arc::try_unwrap(plane) {
        plane.shutdown();
    }
    Ok(report)
}

fn wait_for(deadline: Instant, mut done: impl FnMut() -> bool) -> Result<(), String> {
    while !done() {
        if Instant::now() >= deadline {
            return Err("soak deadline expired".into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Ok(())
}

/// Splits `items` into `parts` contiguous chunks of near-equal size.
fn chunk_evenly<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let mut chunks: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % parts].push(item);
    }
    chunks.retain(|chunk| !chunk.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_distributes_every_item() {
        let chunks = chunk_evenly((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 10);
        assert!(chunks.iter().all(|c| c.len() >= 2));
        assert_eq!(chunk_evenly(Vec::<u8>::new(), 4).len(), 0);
    }

    #[test]
    fn a_small_soak_run_passes_end_to_end() {
        // The CI-scale soak (1000 subscribers) runs under
        // `cmfuzz-serve --smoke`; this keeps a scaled-down version in the
        // regular test suite so regressions surface before CI.
        let report = run_soak(&SoakOptions {
            subscribers: 64,
            poll_threads: 4,
            budget: 300,
            jsonl_out: None,
            deadline: Duration::from_secs(90),
        })
        .expect("soak harness runs");
        assert!(report.passed(), "{}", report.to_json());
        assert_eq!(report.digest_total, 2);
    }
}
