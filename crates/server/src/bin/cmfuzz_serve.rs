//! `cmfuzz-serve`: the campaign-as-a-service daemon.
//!
//! Serving mode binds a loopback TCP address and runs the control plane
//! until a client sends `{"cmd":"shutdown"}` or the operator engages the
//! `CMFUZZ_KILL` switch. `--smoke` instead runs the CI soak gate — ~1000
//! concurrent telemetry subscribers over a live server, every control
//! verb exercised, zero digest drift tolerated — and exits accordingly.
//!
//! Exit codes follow the repo convention (README "Exit codes"): 0
//! success, 1 gate failure (`--smoke` soak verdict), 2 operational
//! errors (bad flags, bind failures), 3 preflight/model rejections (not
//! produced here: submissions are validated per-request over the wire).

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::FleetOptions;
use cmfuzz_server::plane::{build_policy, ControlPlane, PlaneOptions};
use cmfuzz_server::rate::RateLimits;
use cmfuzz_server::soak::{run_soak, SoakOptions};
use cmfuzz_server::{serve, ServerOptions, StopReason};
use cmfuzz_telemetry::FanoutOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut listen = String::from("127.0.0.1:7070");
    let mut policy = String::from("round-robin");
    let mut slots: usize = 4;
    let mut slice: u64 = 100;
    let mut total_budget: Option<u64> = None;
    let mut rate: u64 = 100;
    let mut burst: u64 = 200;
    let mut subscribers: usize = 1000;
    let mut jsonl_out: Option<PathBuf> = None;
    let mut report_out = PathBuf::from("BENCH_serve_soak.json");

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--listen" => match iter.next() {
                Some(addr) => listen = addr.clone(),
                None => usage_error("--listen expects host:port"),
            },
            "--policy" => match iter.next() {
                Some(name) if build_policy(name).is_some() => policy = name.clone(),
                _ => usage_error("--policy expects round-robin|coverage-gradient|ucb-bandit"),
            },
            "--slots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => slots = n,
                _ => usage_error("--slots expects a positive worker count"),
            },
            "--slice" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => slice = n,
                _ => usage_error("--slice expects a positive tick count"),
            },
            "--total-budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => total_budget = Some(n),
                _ => usage_error("--total-budget expects a positive tick count"),
            },
            "--rate" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => rate = n,
                None => usage_error("--rate expects requests/sec (0 disables limiting)"),
            },
            "--burst" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => burst = n,
                _ => usage_error("--burst expects a positive request count"),
            },
            "--subscribers" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => subscribers = n,
                _ => usage_error("--subscribers expects a positive count"),
            },
            "--jsonl-out" => match iter.next() {
                Some(path) => jsonl_out = Some(PathBuf::from(path)),
                None => usage_error("--jsonl-out expects a file path"),
            },
            "--out" => match iter.next() {
                Some(path) => report_out = PathBuf::from(path),
                None => usage_error("--out expects a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if smoke {
        run_smoke(subscribers, jsonl_out, &report_out);
    }

    let plane = match ControlPlane::start(PlaneOptions {
        fleet: FleetOptions {
            slots,
            slice: Ticks::new(slice),
            total_budget: total_budget.map(Ticks::new),
            ..FleetOptions::default()
        },
        policy,
        fanout: FanoutOptions::default(),
        jsonl_out,
    }) {
        Ok(plane) => plane,
        Err(message) => {
            eprintln!("[cmfuzz-serve] {message}");
            exit(2);
        }
    };

    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("[cmfuzz-serve] cannot bind {listen}: {error}");
            exit(2);
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("cmfuzz-serve listening on {addr}"),
        Err(_) => println!("cmfuzz-serve listening on {listen}"),
    }

    let options = ServerOptions {
        limits: RateLimits {
            requests_per_sec: rate,
            burst,
        },
        ..ServerOptions::default()
    };
    match serve(&listener, &plane, &options) {
        Ok(summary) => {
            eprintln!(
                "[cmfuzz-serve] stopped ({}): {} requests over {} connections, \
                 {} rate-limited, {} slow consumers dropped",
                match summary.reason {
                    StopReason::Requested => "shutdown requested",
                    StopReason::KillSwitch => "kill switch",
                },
                summary.requests,
                summary.connections,
                summary.rate_limited,
                summary.slow_dropped,
            );
            plane.shutdown();
        }
        Err(error) => {
            eprintln!("[cmfuzz-serve] serve loop failed: {error}");
            plane.shutdown();
            exit(2);
        }
    }
}

/// Runs the soak gate and exits with its verdict.
fn run_smoke(subscribers: usize, jsonl_out: Option<PathBuf>, report_out: &PathBuf) -> ! {
    eprintln!("[cmfuzz-serve] soak smoke: {subscribers} subscribers...");
    let report = match run_soak(&SoakOptions {
        subscribers,
        jsonl_out,
        deadline: Duration::from_secs(300),
        ..SoakOptions::default()
    }) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("[cmfuzz-serve] soak harness failed: {message}");
            exit(2);
        }
    };
    let json = report.to_json();
    if let Err(error) = std::fs::write(report_out, format!("{json}\n")) {
        eprintln!(
            "[cmfuzz-serve] cannot write {}: {error}",
            report_out.display()
        );
        exit(2);
    }
    println!("{json}");
    eprintln!(
        "[cmfuzz-serve] soak: {}/{} digests matched, {} events to {} subscribers \
         ({} dropped, {} evicted), tail {} lines, {:.3}s",
        report.digest_matches,
        report.digest_total,
        report.events_delivered,
        report.subscribers,
        report.events_dropped,
        report.subscribers_evicted,
        report.tail_lines,
        report.wall.as_secs_f64(),
    );
    if report.passed() {
        exit(0);
    }
    eprintln!("[cmfuzz-serve] FAIL: soak gate did not pass");
    exit(1);
}

const USAGE: &str = "usage: cmfuzz-serve [--smoke] [--listen <host:port>] [--policy <name>]\n\
    \n\
    --smoke          run the CI soak gate (live server, ~1000 subscribers,\n\
                     digest drift check) and exit 0/1 on its verdict\n\
    --listen         serving address (default: 127.0.0.1:7070; use port 0 for ephemeral)\n\
    --policy         scheduling policy: round-robin|coverage-gradient|ucb-bandit\n\
    --slots          worker slots per wave (default: 4)\n\
    --slice          per-lease slice budget in ticks (default: 100)\n\
    --total-budget   fleet-wide tick allowance (default: unlimited)\n\
    --rate           per-connection requests/sec, 0 = unlimited (default: 100)\n\
    --burst          per-connection burst allowance (default: 200)\n\
    --subscribers    soak subscriber count for --smoke (default: 1000)\n\
    --jsonl-out      append all telemetry to this JSONL file (schema header first)\n\
    --out            --smoke report path (default: BENCH_serve_soak.json)\n\
    \n\
    The CMFUZZ_KILL environment variable, when set non-empty, kills every\n\
    campaign and stops the server.";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    exit(2);
}
