//! `cmfuzz-client`: command-line client for a running `cmfuzz-serve`.
//!
//! One subcommand per control verb; every response is printed verbatim
//! (it is already one line of JSON). Exit codes follow the repo
//! convention: 0 on `"ok": true`, the server-provided `exit_code` (2
//! operational, 3 preflight) on `"ok": false`, and 2 for local failures
//! (unreachable server, bad usage).

use std::process::exit;
use std::time::Duration;

use cmfuzz_server::json::{parse, JsonValue};
use cmfuzz_server::net::BlockingClient;
use cmfuzz_server::proto::{Request, Submission};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut connect = String::from("127.0.0.1:7070");
    let mut max_tail_lines: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => match iter.next() {
                Some(addr) => connect = addr.clone(),
                None => usage_error("--connect expects host:port"),
            },
            "--max-lines" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => max_tail_lines = Some(n),
                _ => usage_error("--max-lines expects a positive count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => rest.push(other.to_owned()),
        }
    }

    let request = match rest.first().map(String::as_str) {
        Some("submit") => {
            let Some(path) = rest.get(1) else {
                usage_error("submit expects a submission file path");
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(error) => {
                    eprintln!("[cmfuzz-client] cannot read {path}: {error}");
                    exit(2);
                }
            };
            match Submission::from_json_text(&text) {
                Ok(submission) => Request::Submit(submission),
                Err(message) => {
                    eprintln!("[cmfuzz-client] {path}: {message}");
                    exit(2);
                }
            }
        }
        Some("status") => Request::Status,
        Some("pause") => Request::Pause { id: id_arg(&rest) },
        Some("resume") => Request::Resume { id: id_arg(&rest) },
        Some("kill") => Request::Kill { id: id_arg(&rest) },
        Some("extend") => {
            let id = id_arg(&rest);
            let Some(budget) = rest
                .get(2)
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|&n| n > 0)
            else {
                usage_error("extend expects <id> <budget-ticks>");
            };
            Request::Extend { id, budget }
        }
        Some("result") => Request::Result { id: id_arg(&rest) },
        Some("metrics") => Request::Metrics,
        Some("tail") => Request::Tail,
        Some("shutdown") => Request::Shutdown,
        Some(other) => usage_error(&format!("unknown command {other:?}")),
        None => usage_error("missing command"),
    };

    let mut client = match BlockingClient::connect(&connect, Duration::from_secs(60)) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("[cmfuzz-client] cannot connect to {connect}: {error}");
            exit(2);
        }
    };
    let response = match client.request(&request) {
        Ok(response) => response,
        Err(error) => {
            eprintln!("[cmfuzz-client] request failed: {error}");
            exit(2);
        }
    };
    println!("{response}");

    let parsed = parse(&response).ok();
    let ok = parsed
        .as_ref()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        .unwrap_or(false);
    if !ok {
        let code = parsed
            .as_ref()
            .and_then(|v| v.get("exit_code").and_then(JsonValue::as_u64))
            .unwrap_or(1);
        exit(i32::try_from(code).unwrap_or(1));
    }

    if matches!(request, Request::Tail) {
        // Stream telemetry lines (the first is the schema header) until
        // the server goes away or --max-lines is reached.
        let mut lines = 0u64;
        while let Ok(line) = client.read_line() {
            println!("{line}");
            lines += 1;
            if max_tail_lines.is_some_and(|max| lines >= max) {
                break;
            }
        }
    }
    exit(0);
}

fn id_arg(rest: &[String]) -> String {
    match rest.get(1) {
        Some(id) => id.clone(),
        None => usage_error("this command expects a campaign id"),
    }
}

const USAGE: &str = "usage: cmfuzz-client [--connect <host:port>] <command> [args]\n\
    \n\
    submit <file>        admit the submission JSON ({\"campaigns\": [...]})\n\
    status               one status row per campaign\n\
    pause <id>           pause a campaign at its next round boundary\n\
    resume <id>          resume a paused campaign\n\
    kill <id>            permanently remove a campaign from scheduling\n\
    extend <id> <ticks>  raise a campaign's budget (extensions only)\n\
    result <id>          deterministic digest of the campaign's result\n\
    metrics              metrics registry snapshot (bus + fan-out counters)\n\
    tail                 stream telemetry JSONL (schema header first)\n\
    shutdown             stop the server\n\
    \n\
    --connect    server address (default: 127.0.0.1:7070)\n\
    --max-lines  stop tailing after this many lines\n\
    \n\
    Exit codes: 0 ok; on failure, the server's exit_code (2 operational,\n\
    3 preflight rejection); 2 for local/usage errors.";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    exit(2);
}
