//! The control-plane wire protocol: requests, responses, and campaign
//! submissions.
//!
//! Everything on the wire is line-delimited JSON, one value per line, in
//! both directions. Requests are flat objects with a `cmd` discriminator;
//! responses always carry an `ok` boolean, and failures add `error` plus
//! an `exit_code` following the repo-wide convention (see the "Exit
//! codes" table in README.md) so clients can propagate it as a process
//! status. A [`Submission`] is pure data — materializing it into
//! [`FleetCampaign`]s is a deterministic function, which is what lets the
//! soak gate replay the same submission through an offline
//! [`cmfuzz_fleet::run_fleet`] and demand bit-identical campaign results.

use cmfuzz::baseline::cmfuzz_setups;
use cmfuzz::campaign::CampaignOptions;
use cmfuzz::metrics::CampaignResult;
use cmfuzz::schedule::{build_schedule, ScheduleOptions};
use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::FleetCampaign;
use cmfuzz_protocols::spec_by_name;
use cmfuzz_telemetry::json::ObjectWriter;

use crate::json::{parse, JsonValue};

/// One campaign requested by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSubmission {
    /// Fleet-unique campaign id.
    pub id: String,
    /// Subject name, resolved through [`spec_by_name`].
    pub subject: String,
    /// Parallel instances (also the relation-aware partition count).
    pub instances: usize,
    /// Per-campaign budget in virtual ticks.
    pub budget: u64,
    /// Coverage sampling interval (round length) in virtual ticks.
    pub sample_interval: u64,
    /// Stagnation window before adaptive configuration mutation.
    pub saturation_window: u64,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Rare-seed sharing group, if any.
    pub share_group: Option<String>,
    /// Admit in the paused state: the campaign is staged but never
    /// scheduled until an explicit `resume`. Applied atomically with
    /// admission, so a pre-paused campaign runs zero waves beforehand.
    pub paused: bool,
}

/// A batch of campaigns submitted together (admitted all-or-nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The campaigns, in client order.
    pub campaigns: Vec<CampaignSubmission>,
}

impl Submission {
    /// Parses a submission from its JSON value
    /// (`{"campaigns": [{...}, ...]}`).
    ///
    /// # Errors
    ///
    /// A human-oriented message naming the first malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let campaigns = value
            .get("campaigns")
            .and_then(JsonValue::as_array)
            .ok_or("submission needs a \"campaigns\" array")?;
        if campaigns.is_empty() {
            return Err("submission needs at least one campaign".into());
        }
        let campaigns = campaigns
            .iter()
            .map(CampaignSubmission::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Submission { campaigns })
    }

    /// Parses a submission from JSON text.
    ///
    /// # Errors
    ///
    /// As [`Submission::from_json`], plus JSON syntax errors.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        let value = parse(text).map_err(|e| format!("submission is not JSON: {e}"))?;
        Submission::from_json(&value)
    }

    /// Renders the submission back to JSON (the client side of the wire).
    #[must_use]
    pub fn to_json(&self) -> String {
        let campaigns = self
            .campaigns
            .iter()
            .map(CampaignSubmission::to_json)
            .collect::<Vec<_>>()
            .join(",");
        let mut obj = ObjectWriter::new();
        obj.raw_field("campaigns", &format!("[{campaigns}]"));
        obj.finish()
    }

    /// Materializes the submission into fleet campaigns: each subject's
    /// relation-aware schedule is built for `instances` partitions and
    /// converted into CMFuzz instance setups, exactly as `bench_fleet`
    /// builds its fleet. Pure and deterministic — the same submission
    /// always yields the same campaigns, on the server or offline.
    ///
    /// # Errors
    ///
    /// A message naming the first unknown subject.
    pub fn materialize(&self) -> Result<Vec<FleetCampaign>, String> {
        self.campaigns
            .iter()
            .map(|campaign| {
                let spec = spec_by_name(&campaign.subject)
                    .ok_or_else(|| format!("unknown subject {:?}", campaign.subject))?;
                let mut scratch = (spec.build)();
                let schedule = build_schedule(
                    &mut scratch,
                    campaign.instances,
                    &ScheduleOptions::default(),
                );
                let setups = cmfuzz_setups(&schedule, campaign.instances);
                let options = CampaignOptions {
                    instances: campaign.instances,
                    budget: Ticks::new(campaign.budget),
                    sample_interval: Ticks::new(campaign.sample_interval),
                    saturation_window: Ticks::new(campaign.saturation_window),
                    seed: campaign.seed,
                    worker_pool: false,
                    ..CampaignOptions::default()
                };
                Ok(FleetCampaign {
                    id: campaign.id.clone(),
                    spec,
                    fuzzer: "cmfuzz".into(),
                    setups,
                    options,
                    share_group: campaign.share_group.clone(),
                })
            })
            .collect()
    }
}

impl CampaignSubmission {
    /// Field defaults: 100-tick rounds, 200-tick saturation window.
    pub const DEFAULT_SAMPLE_INTERVAL: u64 = 100;
    /// See [`CampaignSubmission::DEFAULT_SAMPLE_INTERVAL`].
    pub const DEFAULT_SATURATION_WINDOW: u64 = 200;

    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let id = value
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("campaign needs a string \"id\"")?;
        let subject = value
            .get("subject")
            .and_then(JsonValue::as_str)
            .ok_or("campaign needs a string \"subject\"")?;
        let budget = value
            .get("budget")
            .and_then(JsonValue::as_u64)
            .filter(|&n| n > 0)
            .ok_or("campaign needs a positive \"budget\"")?;
        let instances = value
            .get("instances")
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or("\"instances\" must be a positive integer")
            })
            .transpose()?
            .unwrap_or(1);
        let sample_interval = value
            .get("sample_interval")
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or("\"sample_interval\" must be a positive integer")
            })
            .transpose()?
            .unwrap_or(CampaignSubmission::DEFAULT_SAMPLE_INTERVAL);
        let saturation_window = value
            .get("saturation_window")
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or("\"saturation_window\" must be a positive integer")
            })
            .transpose()?
            .unwrap_or(CampaignSubmission::DEFAULT_SATURATION_WINDOW);
        let seed = value
            .get("seed")
            .map(|v| v.as_u64().ok_or("\"seed\" must be an unsigned integer"))
            .transpose()?
            .unwrap_or(0);
        let share_group = match value.get("share_group") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("\"share_group\" must be a string or null")?
                    .to_owned(),
            ),
        };
        let paused = value
            .get("paused")
            .map(|v| v.as_bool().ok_or("\"paused\" must be a boolean"))
            .transpose()?
            .unwrap_or(false);
        #[allow(clippy::cast_possible_truncation)]
        Ok(CampaignSubmission {
            id: id.to_owned(),
            subject: subject.to_owned(),
            instances: instances as usize,
            budget,
            sample_interval,
            saturation_window,
            seed,
            share_group,
            paused,
        })
    }

    fn to_json(&self) -> String {
        let mut obj = ObjectWriter::new();
        obj.str_field("id", &self.id);
        obj.str_field("subject", &self.subject);
        obj.u64_field("instances", self.instances as u64);
        obj.u64_field("budget", self.budget);
        obj.u64_field("sample_interval", self.sample_interval);
        obj.u64_field("saturation_window", self.saturation_window);
        obj.u64_field("seed", self.seed);
        match &self.share_group {
            Some(group) => obj.str_field("share_group", group),
            None => obj.raw_field("share_group", "null"),
        }
        obj.raw_field("paused", if self.paused { "true" } else { "false" });
        obj.finish()
    }
}

/// One parsed control-plane request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a batch of campaigns.
    Submit(Submission),
    /// Status rows for every campaign.
    Status,
    /// Pause a campaign (takes effect at its next round boundary).
    Pause {
        /// Campaign id.
        id: String,
    },
    /// Resume a paused campaign.
    Resume {
        /// Campaign id.
        id: String,
    },
    /// Permanently remove a campaign from scheduling.
    Kill {
        /// Campaign id.
        id: String,
    },
    /// Extend a campaign's budget (the only live reconfiguration).
    Extend {
        /// Campaign id.
        id: String,
        /// New, strictly larger budget in virtual ticks.
        budget: u64,
    },
    /// Deterministic digest of a campaign's current result.
    Result {
        /// Campaign id.
        id: String,
    },
    /// Metrics registry snapshot (bus and fan-out counters included).
    Metrics,
    /// Switch this connection to a streaming telemetry tail.
    Tail,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-oriented message; the server returns it with exit code 2
    /// (operational/usage) semantics.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let value = parse(line).map_err(|e| format!("request is not JSON: {e}"))?;
        let cmd = value
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string \"cmd\"")?;
        let id_field = || {
            value
                .get("id")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{cmd:?} needs a string \"id\""))
        };
        match cmd {
            "submit" => Ok(Request::Submit(Submission::from_json(
                value.get("fleet").unwrap_or(&value),
            )?)),
            "status" => Ok(Request::Status),
            "pause" => Ok(Request::Pause { id: id_field()? }),
            "resume" => Ok(Request::Resume { id: id_field()? }),
            "kill" => Ok(Request::Kill { id: id_field()? }),
            "extend" => Ok(Request::Extend {
                id: id_field()?,
                budget: value
                    .get("budget")
                    .and_then(JsonValue::as_u64)
                    .filter(|&n| n > 0)
                    .ok_or("\"extend\" needs a positive \"budget\"")?,
            }),
            "result" => Ok(Request::Result { id: id_field()? }),
            "metrics" => Ok(Request::Metrics),
            "tail" => Ok(Request::Tail),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    /// Renders the request as one wire line (no trailing newline) — the
    /// client side of [`Request::parse_line`].
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut obj = ObjectWriter::new();
        match self {
            Request::Submit(submission) => {
                obj.str_field("cmd", "submit");
                obj.raw_field("fleet", &submission.to_json());
            }
            Request::Status => obj.str_field("cmd", "status"),
            Request::Pause { id } => {
                obj.str_field("cmd", "pause");
                obj.str_field("id", id);
            }
            Request::Resume { id } => {
                obj.str_field("cmd", "resume");
                obj.str_field("id", id);
            }
            Request::Kill { id } => {
                obj.str_field("cmd", "kill");
                obj.str_field("id", id);
            }
            Request::Extend { id, budget } => {
                obj.str_field("cmd", "extend");
                obj.str_field("id", id);
                obj.u64_field("budget", *budget);
            }
            Request::Result { id } => {
                obj.str_field("cmd", "result");
                obj.str_field("id", id);
            }
            Request::Metrics => obj.str_field("cmd", "metrics"),
            Request::Tail => obj.str_field("cmd", "tail"),
            Request::Shutdown => obj.str_field("cmd", "shutdown"),
        }
        obj.finish()
    }
}

/// Renders a success response with extra already-rendered JSON fields.
#[must_use]
pub fn ok_response(fields: &[(&str, String)]) -> String {
    let mut obj = ObjectWriter::new();
    obj.raw_field("ok", "true");
    for (name, json) in fields {
        obj.raw_field(name, json);
    }
    obj.finish()
}

/// Renders a failure response carrying the repo-convention exit code the
/// client should propagate (2 operational, 3 preflight/model).
#[must_use]
pub fn error_response(exit_code: i32, message: &str) -> String {
    let mut obj = ObjectWriter::new();
    obj.raw_field("ok", "false");
    obj.raw_field("exit_code", &exit_code.to_string());
    obj.str_field("error", message);
    obj.finish()
}

/// FNV-1a over `text`, rendered as 16 hex digits — the digest the control
/// plane exposes for campaign results. Stable, dependency-free, and
/// matched by the offline gate.
#[must_use]
pub fn fnv1a_hex(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The deterministic digest of one campaign result: FNV-1a over the full
/// `Debug` render, the same fingerprint the determinism tests pin.
#[must_use]
pub fn result_digest(result: &CampaignResult) -> String {
    fnv1a_hex(&format!("{result:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission() -> Submission {
        Submission {
            campaigns: vec![CampaignSubmission {
                id: "m/0".into(),
                subject: "mosquitto".into(),
                instances: 2,
                budget: 400,
                sample_interval: 100,
                saturation_window: 200,
                seed: 3,
                share_group: Some("mqtt".into()),
                paused: false,
            }],
        }
    }

    #[test]
    fn submission_round_trips_through_json() {
        let original = submission();
        let parsed = Submission::from_json_text(&original.to_json()).expect("round trip");
        assert_eq!(parsed, original);
    }

    #[test]
    fn submission_defaults_and_rejections() {
        let minimal = Submission::from_json_text(
            r#"{"campaigns":[{"id":"x","subject":"dnsmasq","budget":200}]}"#,
        )
        .expect("minimal submission");
        let campaign = &minimal.campaigns[0];
        assert_eq!(campaign.instances, 1);
        assert_eq!(campaign.sample_interval, 100);
        assert_eq!(campaign.saturation_window, 200);
        assert_eq!(campaign.seed, 0);
        assert_eq!(campaign.share_group, None);
        assert!(!campaign.paused);

        for bad in [
            r#"{}"#,
            r#"{"campaigns":[]}"#,
            r#"{"campaigns":[{"subject":"dnsmasq","budget":200}]}"#,
            r#"{"campaigns":[{"id":"x","subject":"dnsmasq"}]}"#,
            r#"{"campaigns":[{"id":"x","subject":"dnsmasq","budget":0}]}"#,
            r#"{"campaigns":[{"id":"x","subject":"dnsmasq","budget":200,"instances":0}]}"#,
        ] {
            assert!(Submission::from_json_text(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let campaigns_a = submission().materialize().expect("known subject");
        let campaigns_b = submission().materialize().expect("known subject");
        assert_eq!(campaigns_a.len(), 1);
        assert_eq!(campaigns_a[0].setups.len(), 2);
        assert_eq!(
            format!("{:?}", campaigns_a[0].setups),
            format!("{:?}", campaigns_b[0].setups),
        );
        let mut unknown = submission();
        unknown.campaigns[0].subject = "no-such-subject".into();
        assert!(unknown.materialize().is_err());
    }

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = [
            Request::Submit(submission()),
            Request::Status,
            Request::Pause { id: "m/0".into() },
            Request::Resume { id: "m/0".into() },
            Request::Kill { id: "m/0".into() },
            Request::Extend {
                id: "m/0".into(),
                budget: 800,
            },
            Request::Result { id: "m/0".into() },
            Request::Metrics,
            Request::Tail,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(
                Request::parse_line(&line).expect("round trip"),
                request,
                "{line}"
            );
        }
        assert!(Request::parse_line("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse_line("not json").is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        use cmfuzz_telemetry::json::is_valid;
        assert!(is_valid(&ok_response(&[("admitted", "[\"a\"]".into())])));
        let err = error_response(3, "preflight \"rejected\"");
        assert!(is_valid(&err));
        assert!(err.contains("\"exit_code\":3"));
    }

    #[test]
    fn fnv_digest_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), "af63dc4c8601ec8c");
        assert_ne!(fnv1a_hex("fleet"), fnv1a_hex("fleer"));
    }
}
