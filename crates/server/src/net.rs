//! Line-delimited TCP front end over the control plane.
//!
//! A single-threaded readiness loop over non-blocking `std::net` sockets
//! (the offline-shims build policy rules out tokio/mio, and the protocol
//! does not need them): each iteration accepts pending connections, reads
//! whatever bytes are available, answers complete request lines, pumps
//! telemetry to tailing connections, and flushes bounded per-connection
//! output buffers. Slow consumers are handled at two layers — the
//! [`FanoutHub`](cmfuzz_telemetry::FanoutHub) drops and eventually evicts
//! subscribers that stop polling, and the socket layer drops connections
//! whose unsent output exceeds [`ServerOptions::max_out_buffer`] — so one
//! wedged client can never stall the fleet or the other subscribers.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cmfuzz_coverage::Ticks;
use cmfuzz_telemetry::json::ObjectWriter;
use cmfuzz_telemetry::{schema_header_line, FanoutSubscriber};

use crate::plane::ControlPlane;
use crate::proto::{error_response, ok_response, Request};
use crate::rate::{kill_switch_engaged, RateLimits, TokenBucket};

/// Knobs for one serving loop.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-connection request rate limits.
    pub limits: RateLimits,
    /// Unsent output bytes a connection may accumulate before the server
    /// drops it as a slow consumer.
    pub max_out_buffer: usize,
    /// Extra kill-switch input OR-ed with the `CMFUZZ_KILL` environment
    /// check — lets embedding code (and tests) engage the switch without
    /// touching process-global state.
    pub kill_override: Option<Arc<AtomicBool>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            limits: RateLimits::default(),
            max_out_buffer: 4 * 1024 * 1024,
            kill_override: None,
        }
    }
}

/// Why [`serve`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A client sent `{"cmd":"shutdown"}`.
    Requested,
    /// The global kill switch was engaged; every campaign was killed.
    KillSwitch,
}

/// What one serving loop did, for operator logs and exit codes.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// Requests answered (tail streaming excluded).
    pub requests: u64,
    /// Connections accepted over the loop's lifetime.
    pub connections: u64,
    /// Requests refused by the per-connection rate limiter.
    pub rate_limited: u64,
    /// Connections dropped for exceeding the output buffer bound.
    pub slow_dropped: u64,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    bucket: Option<TokenBucket>,
    tail: Option<FanoutSubscriber>,
    open: bool,
}

impl Conn {
    fn push_line(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }
}

/// Serves the control plane on `listener` until a shutdown request or the
/// kill switch. Runs on the calling thread.
///
/// # Errors
///
/// Only setup-level I/O failures (the listener refusing non-blocking
/// mode); per-connection errors close that connection and keep serving.
pub fn serve(
    listener: &TcpListener,
    plane: &ControlPlane,
    options: &ServerOptions,
) -> io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let started = Instant::now();
    let mut conns: Vec<Conn> = Vec::new();
    let mut summary = ServeSummary {
        reason: StopReason::Requested,
        requests: 0,
        connections: 0,
        rate_limited: 0,
        slow_dropped: 0,
    };
    let mut shutdown = false;

    loop {
        let now = started.elapsed();
        let mut activity = false;

        if kill_switch_engaged()
            || options
                .kill_override
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::Acquire))
        {
            plane.kill_all();
            let notice = error_response(2, "kill switch engaged; all campaigns killed");
            for conn in &mut conns {
                conn.push_line(&notice);
            }
            flush_all(&mut conns, &mut summary, options);
            summary.reason = StopReason::KillSwitch;
            return Ok(summary);
        }

        // Admit pending connections.
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    summary.connections += 1;
                    activity = true;
                    conns.push(Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        bucket: options.limits.bucket(),
                        tail: None,
                        open: true,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                Err(_) => break,
            }
        }

        // Read and answer.
        for conn in &mut conns {
            if !conn.open {
                continue;
            }
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.open = false;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        activity = true;
                        if conn.inbuf.len() > 1024 * 1024 {
                            // A megabyte without a newline is not a
                            // request line; drop the flooder.
                            conn.open = false;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                    Err(_) => {
                        conn.open = false;
                        break;
                    }
                }
            }
            while let Some(newline) = conn.inbuf.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = conn.inbuf.drain(..=newline).collect();
                let line = String::from_utf8_lossy(&line_bytes);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if conn.tail.is_some() {
                    // Tailing connections are send-only.
                    continue;
                }
                if let Some(bucket) = &mut conn.bucket {
                    if !bucket.try_acquire_at(now) {
                        summary.rate_limited += 1;
                        conn.push_line(&error_response(2, "rate limited"));
                        continue;
                    }
                }
                summary.requests += 1;
                activity = true;
                match handle_request(line, plane, conn) {
                    Action::Continue => {}
                    Action::Shutdown => shutdown = true,
                }
            }
        }

        // Pump telemetry into tailing connections.
        for conn in &mut conns {
            let Some(tail) = &conn.tail else { continue };
            let records = tail.poll();
            if !records.is_empty() {
                activity = true;
            }
            for record in &records {
                let line = record.to_json_line();
                conn.outbuf.extend_from_slice(line.as_bytes());
                conn.outbuf.push(b'\n');
            }
            if tail.is_evicted() {
                conn.push_line(&error_response(
                    2,
                    "tail evicted: subscriber lagged too far",
                ));
                conn.open = false;
            }
        }

        flush_all(&mut conns, &mut summary, options);

        if shutdown {
            // Best-effort grace period so the final responses reach
            // their sockets before the listener goes away.
            for _ in 0..200 {
                if conns.iter().all(|conn| conn.outbuf.is_empty()) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
                flush_all(&mut conns, &mut summary, options);
            }
            summary.reason = StopReason::Requested;
            return Ok(summary);
        }
        if !activity {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// A simple blocking client for the wire protocol — the other half of
/// [`serve`], shared by `cmfuzz-client` and the soak harness.
#[derive(Debug)]
pub struct BlockingClient {
    stream: TcpStream,
    reader: io::BufReader<TcpStream>,
}

impl BlockingClient {
    /// Connects to a serving address with a read timeout.
    ///
    /// # Errors
    ///
    /// Connection and socket-option failures.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = io::BufReader::new(stream.try_clone()?);
        Ok(BlockingClient { stream, reader })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Reads one response line (without the newline).
    ///
    /// # Errors
    ///
    /// Socket read failures, timeouts, and a closed peer.
    pub fn read_line(&mut self) -> io::Result<String> {
        use io::BufRead;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and returns the single response line.
    ///
    /// # Errors
    ///
    /// As [`BlockingClient::send`] and [`BlockingClient::read_line`].
    pub fn request(&mut self, request: &Request) -> io::Result<String> {
        self.send(&request.to_line())?;
        self.read_line()
    }
}

enum Action {
    Continue,
    Shutdown,
}

fn handle_request(line: &str, plane: &ControlPlane, conn: &mut Conn) -> Action {
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(message) => {
            conn.push_line(&error_response(2, &message));
            return Action::Continue;
        }
    };
    match request {
        Request::Submit(submission) => match plane.submit(&submission) {
            Ok(ids) => {
                let ids = ids
                    .iter()
                    .map(|id| {
                        let mut s = String::new();
                        cmfuzz_telemetry::json::push_escaped(&mut s, id);
                        s
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                conn.push_line(&ok_response(&[("admitted", format!("[{ids}]"))]));
            }
            Err((code, message)) => conn.push_line(&error_response(code, &message)),
        },
        Request::Status => {
            let rows = plane
                .status()
                .iter()
                .map(|row| {
                    let mut obj = ObjectWriter::new();
                    obj.str_field("id", &row.id);
                    obj.str_field("state", row.state.label());
                    obj.u64_field("leases", row.leases);
                    obj.u64_field("consumed", row.consumed.get());
                    obj.u64_field("rounds", row.rounds_done);
                    obj.u64_field("branches", row.branches as u64);
                    if let Some(reachable) = row.reachable_branches {
                        obj.u64_field("reachable_branches", reachable as u64);
                    }
                    obj.finish()
                })
                .collect::<Vec<_>>()
                .join(",");
            conn.push_line(&ok_response(&[("campaigns", format!("[{rows}]"))]));
        }
        Request::Pause { id } => push_applied(conn, plane.pause(&id), &id),
        Request::Resume { id } => push_applied(conn, plane.resume(&id), &id),
        Request::Kill { id } => push_applied(conn, plane.kill(&id), &id),
        Request::Extend { id, budget } => {
            push_applied(conn, plane.extend_budget(&id, Ticks::new(budget)), &id);
        }
        Request::Result { id } => match plane.result_digest(&id) {
            Some(digest) => {
                let mut rendered = String::new();
                cmfuzz_telemetry::json::push_escaped(&mut rendered, &digest);
                conn.push_line(&ok_response(&[("digest", rendered)]));
            }
            None => conn.push_line(&error_response(2, "campaign has no result yet")),
        },
        Request::Metrics => {
            conn.push_line(&ok_response(&[("metrics", plane.metrics_json())]));
        }
        Request::Tail => {
            conn.push_line(&ok_response(&[("streaming", "true".into())]));
            conn.push_line(&schema_header_line());
            let name = conn
                .stream
                .peer_addr()
                .map_or_else(|_| "tail".to_owned(), |addr| format!("tail:{addr}"));
            conn.tail = Some(plane.subscribe(&name));
        }
        Request::Shutdown => {
            conn.push_line(&ok_response(&[]));
            return Action::Shutdown;
        }
    }
    Action::Continue
}

fn push_applied(conn: &mut Conn, applied: bool, id: &str) {
    if applied {
        conn.push_line(&ok_response(&[]));
    } else {
        conn.push_line(&error_response(
            2,
            &format!("no controllable campaign {id:?}"),
        ));
    }
}

/// Writes what the sockets will take; drops slow consumers past the
/// output bound and disconnects closed conns once drained.
fn flush_all(conns: &mut Vec<Conn>, summary: &mut ServeSummary, options: &ServerOptions) {
    for conn in conns.iter_mut() {
        if conn.outbuf.is_empty() {
            continue;
        }
        if conn.outbuf.len() > options.max_out_buffer {
            summary.slow_dropped += 1;
            conn.outbuf.clear();
            conn.open = false;
            let _ = conn.stream.shutdown(Shutdown::Both);
            continue;
        }
        loop {
            match conn.stream.write(&conn.outbuf) {
                Ok(0) => {
                    conn.open = false;
                    conn.outbuf.clear();
                    break;
                }
                Ok(n) => {
                    conn.outbuf.drain(..n);
                    if conn.outbuf.is_empty() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.open = false;
                    conn.outbuf.clear();
                    break;
                }
            }
        }
    }
    conns.retain(|conn| conn.open || !conn.outbuf.is_empty());
}
