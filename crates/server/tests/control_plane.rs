//! End-to-end tests of the served control plane over real TCP sockets:
//! every wire verb, the exit-code contract, rate limiting, the kill
//! switch, and — the one that matters most — zero digest drift between
//! served and offline execution of the same submission.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::{FleetOptions, RoundRobin};
use cmfuzz_server::{
    parse_json, result_digest, serve, BlockingClient, CampaignSubmission, ControlPlane, JsonValue,
    PlaneOptions, RateLimits, Request, ServeSummary, ServerOptions, StopReason, Submission,
};
use cmfuzz_telemetry::schema_header_line;

fn fleet_options() -> FleetOptions {
    FleetOptions {
        slots: 2,
        slice: Ticks::new(100),
        ..FleetOptions::default()
    }
}

fn submission() -> Submission {
    let campaign = |id: &str, subject: &str, seed: u64| CampaignSubmission {
        id: id.into(),
        subject: subject.into(),
        instances: 1,
        budget: 300,
        sample_interval: 100,
        saturation_window: 200,
        seed,
        share_group: None,
        paused: false,
    };
    Submission {
        campaigns: vec![
            campaign("itest/m", "mosquitto", 3),
            campaign("itest/d", "dnsmasq", 7),
        ],
    }
}

struct Server {
    addr: String,
    handle: JoinHandle<ServeSummary>,
}

fn start_server(options: ServerOptions) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let plane = ControlPlane::start(PlaneOptions {
            fleet: fleet_options(),
            ..PlaneOptions::default()
        })
        .expect("plane starts");
        let summary = serve(&listener, &plane, &options).expect("serve loop");
        plane.shutdown();
        summary
    });
    Server { addr, handle }
}

fn client(addr: &str) -> BlockingClient {
    BlockingClient::connect(addr, Duration::from_secs(30)).expect("connect")
}

fn assert_ok(response: &str) -> JsonValue {
    let value = parse_json(response).expect("response is JSON");
    assert_eq!(
        value.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{response}"
    );
    value
}

fn error_code(response: &str) -> u64 {
    let value = parse_json(response).expect("response is JSON");
    assert_eq!(
        value.get("ok").and_then(JsonValue::as_bool),
        Some(false),
        "{response}"
    );
    value
        .get("exit_code")
        .and_then(JsonValue::as_u64)
        .expect("failures carry exit_code")
}

/// Polls status over the wire until every campaign reaches `state`.
fn wait_for_states(client: &mut BlockingClient, state: &str, deadline_ms: u64) -> bool {
    for _ in 0..deadline_ms {
        let response = client.request(&Request::Status).expect("status");
        let value = assert_ok(&response);
        let campaigns = value
            .get("campaigns")
            .and_then(JsonValue::as_array)
            .expect("campaign rows");
        if !campaigns.is_empty()
            && campaigns
                .iter()
                .all(|row| row.get("state").and_then(JsonValue::as_str) == Some(state))
        {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

fn shutdown(client: &mut BlockingClient, server: Server) -> ServeSummary {
    let response = client.request(&Request::Shutdown).expect("shutdown");
    assert_ok(&response);
    server.handle.join().expect("server thread")
}

#[test]
fn served_submission_matches_offline_digests_bit_for_bit() {
    let server = start_server(ServerOptions::default());
    let mut c = client(&server.addr);

    let response = c
        .request(&Request::Submit(submission()))
        .expect("submit over the wire");
    let value = assert_ok(&response);
    let admitted: Vec<String> = value
        .get("admitted")
        .and_then(JsonValue::as_array)
        .expect("admitted ids")
        .iter()
        .filter_map(|v| v.as_str().map(str::to_owned))
        .collect();
    assert_eq!(admitted, vec!["itest/m".to_owned(), "itest/d".to_owned()]);

    assert!(
        wait_for_states(&mut c, "complete", 20_000),
        "served fleet completes"
    );

    let offline = cmfuzz_fleet::run_fleet(
        &submission().materialize().expect("materialize"),
        &mut RoundRobin::new(),
        &fleet_options(),
    )
    .expect("offline fleet");
    assert_eq!(offline.campaigns.len(), 2);
    for outcome in &offline.campaigns {
        let response = c
            .request(&Request::Result {
                id: outcome.id.clone(),
            })
            .expect("result over the wire");
        let value = assert_ok(&response);
        assert_eq!(
            value.get("digest").and_then(JsonValue::as_str),
            Some(result_digest(&outcome.result()).as_str()),
            "{} drifted between served and offline execution",
            outcome.id
        );
    }

    let summary = shutdown(&mut c, server);
    assert_eq!(summary.reason, StopReason::Requested);
    assert!(summary.requests >= 4);
}

#[test]
fn control_verbs_and_exit_codes_over_the_wire() {
    let server = start_server(ServerOptions::default());
    let mut c = client(&server.addr);

    // Stage everything paused so control assertions are race-free.
    let mut staged = submission();
    for campaign in &mut staged.campaigns {
        campaign.paused = true;
    }
    assert_ok(&c.request(&Request::Submit(staged)).expect("submit"));
    assert!(wait_for_states(&mut c, "paused", 5_000));

    // Duplicate ids are a preflight rejection: exit code 3.
    let dup = c.request(&Request::Submit(submission())).expect("dup");
    assert_eq!(error_code(&dup), 3, "{dup}");

    // Unknown subjects are operational failures: exit code 2.
    let mut unknown = submission();
    unknown.campaigns[0].id = "itest/u".into();
    unknown.campaigns[0].subject = "no-such-subject".into();
    let response = c.request(&Request::Submit(unknown)).expect("unknown");
    assert_eq!(error_code(&response), 2, "{response}");

    // Kills are permanent; further control of the victim fails with 2.
    assert_ok(
        &c.request(&Request::Kill {
            id: "itest/d".into(),
        })
        .expect("kill"),
    );
    let resumed = c
        .request(&Request::Resume {
            id: "itest/d".into(),
        })
        .expect("resume killed");
    assert_eq!(error_code(&resumed), 2, "{resumed}");

    // A result for a never-scheduled campaign does not exist yet.
    let result = c
        .request(&Request::Result {
            id: "itest/m".into(),
        })
        .expect("early result");
    assert_eq!(error_code(&result), 2, "{result}");

    // Budget extension only goes upward.
    let shrink = c
        .request(&Request::Extend {
            id: "itest/m".into(),
            budget: 100,
        })
        .expect("shrink");
    assert_eq!(error_code(&shrink), 2, "{shrink}");
    assert_ok(
        &c.request(&Request::Extend {
            id: "itest/m".into(),
            budget: 400,
        })
        .expect("extend"),
    );

    // Resume the survivor; the killed campaign stays killed while the
    // survivor runs to its extended budget.
    assert_ok(
        &c.request(&Request::Resume {
            id: "itest/m".into(),
        })
        .expect("resume"),
    );
    assert!(
        {
            let mut done = false;
            for _ in 0..20_000 {
                let response = c.request(&Request::Status).expect("status");
                let value = assert_ok(&response);
                let rows = value
                    .get("campaigns")
                    .and_then(JsonValue::as_array)
                    .expect("rows");
                let state_of = |id: &str| {
                    rows.iter()
                        .find(|r| r.get("id").and_then(JsonValue::as_str) == Some(id))
                        .and_then(|r| r.get("state").and_then(JsonValue::as_str))
                        .map(str::to_owned)
                };
                assert_eq!(state_of("itest/d").as_deref(), Some("killed"));
                if state_of("itest/m").as_deref() == Some("complete") {
                    done = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            done
        },
        "resumed campaign completes its extended budget"
    );

    // Malformed lines are usage errors.
    c.send("this is not json").expect("send garbage");
    let garbage = c.read_line().expect("garbage response");
    assert_eq!(error_code(&garbage), 2, "{garbage}");

    shutdown(&mut c, server);
}

#[test]
fn tail_streams_schema_header_then_events() {
    let server = start_server(ServerOptions::default());
    let mut tail = client(&server.addr);
    assert_ok(&tail.request(&Request::Tail).expect("tail"));
    assert_eq!(
        tail.read_line().expect("header"),
        schema_header_line(),
        "first tail line is the schema header"
    );

    let mut c = client(&server.addr);
    assert_ok(&c.request(&Request::Submit(submission())).expect("submit"));
    assert!(wait_for_states(&mut c, "complete", 20_000));

    let mut finished = 0;
    while finished < 2 {
        let line = tail.read_line().expect("tail line");
        assert!(
            cmfuzz_telemetry::json::is_valid(&line),
            "tail emits valid JSON: {line}"
        );
        if line.contains("\"campaign_finished\"") {
            finished += 1;
        }
    }

    // Metrics surface the fan-out subscriber the tail registered.
    let metrics = c.request(&Request::Metrics).expect("metrics");
    let value = assert_ok(&metrics);
    let rendered = value
        .get("metrics")
        .map(|_| metrics.clone())
        .expect("metrics object");
    assert!(rendered.contains("fanout.subscribers"), "{rendered}");
    assert!(rendered.contains("bus.events_emitted"), "{rendered}");

    shutdown(&mut c, server);
}

#[test]
fn rate_limited_clients_get_budget_errors_not_service_loss() {
    let server = start_server(ServerOptions {
        limits: RateLimits {
            requests_per_sec: 10,
            burst: 5,
        },
        ..ServerOptions::default()
    });
    let mut c = client(&server.addr);

    let mut limited: u64 = 0;
    let mut answered: u64 = 0;
    for _ in 0..40 {
        let response = c.request(&Request::Status).expect("status");
        let value = parse_json(&response).expect("JSON");
        if value.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            answered += 1;
        } else {
            assert_eq!(error_code(&response), 2, "{response}");
            assert!(response.contains("rate limited"), "{response}");
            limited += 1;
        }
    }
    assert!(limited > 0, "a 40-request burst against burst=5 must trip");
    assert!(answered >= 5, "the burst allowance is honoured");

    // The connection survives limiting: once tokens refill, requests
    // succeed again.
    std::thread::sleep(Duration::from_millis(300));
    assert_ok(&c.request(&Request::Status).expect("recovered"));

    let summary = shutdown(&mut c, server);
    assert_eq!(limited, summary.rate_limited);
}

#[test]
fn kill_switch_stops_the_server_and_kills_the_fleet() {
    let switch = Arc::new(AtomicBool::new(false));
    let server = start_server(ServerOptions {
        kill_override: Some(Arc::clone(&switch)),
        ..ServerOptions::default()
    });
    let mut c = client(&server.addr);

    // A long-budget campaign that would run for a while unattended.
    let mut long = submission();
    long.campaigns.truncate(1);
    long.campaigns[0].budget = 1_000_000;
    assert_ok(&c.request(&Request::Submit(long)).expect("submit"));

    switch.store(true, Ordering::Release);
    let summary = server.handle.join().expect("server thread");
    assert_eq!(summary.reason, StopReason::KillSwitch);

    // The connection receives the kill notice before the server exits.
    let notice = c.read_line().expect("kill notice");
    assert_eq!(error_code(&notice), 2, "{notice}");
    assert!(notice.contains("kill switch"), "{notice}");
}
