//! `cmfuzz-fleet`: multiplexing hundreds of campaigns over one CPU budget.
//!
//! The paper's evaluation runs one campaign at a time, each owning the
//! whole machine for its budget. Real audits look different: a fleet of
//! subjects — six protocols × relation-aware configuration partitions,
//! easily hundreds of campaigns — competes for a fixed CPU allowance, and
//! giving every campaign an equal share wastes most of it on subjects
//! whose coverage saturated hours ago.
//!
//! This crate schedules that fleet. It builds on two core primitives:
//!
//! - **Checkpointable campaigns** ([`cmfuzz::campaign::run_campaign_slice`]):
//!   a campaign runs in bounded *slices* and pauses into a
//!   [`CampaignCheckpoint`] that resumes byte-identically, so the
//!   scheduler can preempt any campaign at a round boundary without
//!   changing what it would eventually find.
//! - **The bench worker pool** ([`cmfuzz_bench::grid`]): each wave of
//!   leased slices runs as independent grid cells on a bounded pool,
//!   with results returned in lease order regardless of thread timing.
//!
//! A pluggable [`SchedulingPolicy`] decides which campaigns lease the
//! next wave of worker slots: [`RoundRobin`] (the fair baseline),
//! [`CoverageGradient`] (EWMA of new branches per executed session —
//! slots chase the coverage gradient), and [`UcbBandit`] (UCB1 over the
//! same reward, hedging against late coverage bursts). Everything is
//! deterministic: same fleet, same seeds, same policy → the same
//! [`FleetResult`], bit for bit.
//!
//! # Examples
//!
//! ```
//! use cmfuzz::campaign::{CampaignOptions, InstanceSetup};
//! use cmfuzz_coverage::Ticks;
//! use cmfuzz_fleet::{run_fleet, CoverageGradient, FleetCampaign, FleetOptions};
//! use cmfuzz_protocols::spec_by_name;
//!
//! let mut options = CampaignOptions::default();
//! options.budget = Ticks::new(300);
//! options.sample_interval = Ticks::new(100);
//! let fleet = vec![FleetCampaign {
//!     id: "mosquitto/part-0".into(),
//!     spec: spec_by_name("mosquitto").expect("subject exists"),
//!     fuzzer: "cmfuzz".into(),
//!     setups: vec![InstanceSetup::default()],
//!     options,
//!     share_group: None,
//! }];
//! let result = run_fleet(
//!     &fleet,
//!     &mut CoverageGradient::new(),
//!     &FleetOptions {
//!         slice: Ticks::new(100),
//!         ..FleetOptions::default()
//!     },
//! )
//! .expect("fleet runs");
//! assert!(result.all_complete());
//! assert!(result.total_branches() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod policy;

pub use manager::{CampaignState, CampaignStatus, FleetManager, IdleReason, WaveOutcome};
pub use policy::{CoverageGradient, RoundRobin, SchedulingPolicy, UcbBandit};

use cmfuzz::campaign::{CampaignCheckpoint, CampaignOptions, InstanceSetup};
use cmfuzz::metrics::CampaignResult;
use cmfuzz::CampaignError;
use cmfuzz_coverage::Ticks;
use cmfuzz_protocols::ProtocolSpec;
use cmfuzz_telemetry::Telemetry;

/// One campaign in the fleet: a subject, its instance setups, and the
/// campaign options (whose `budget` is this campaign's own total).
#[derive(Debug, Clone)]
pub struct FleetCampaign {
    /// Unique label within the fleet; doubles as the telemetry `campaign`
    /// field on every event the campaign emits.
    pub id: String,
    /// Subject to fuzz.
    pub spec: ProtocolSpec,
    /// Fuzzer to run (`"cmfuzz"`, `"peach"`, `"spfuzz"` semantics come
    /// from the setups; the runner treats this as a label).
    pub fuzzer: String,
    /// Per-instance setups (partition configurations, session plans).
    pub setups: Vec<InstanceSetup>,
    /// Campaign options; `options.budget` caps this campaign's total
    /// virtual-tick consumption across all its slices.
    pub options: CampaignOptions,
    /// Rare-seed sharing group (typically the relation-aware partition
    /// family, e.g. `"mqtt"`). At every wave boundary, campaigns in the
    /// same group exchange their rarest retained seeds when
    /// [`FleetOptions::share_rare_seeds`] is non-zero. `None` keeps the
    /// campaign out of every exchange.
    pub share_group: Option<String>,
}

/// Knobs for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker slots leased per wave (also the grid's thread count).
    pub slots: usize,
    /// Virtual-tick budget per lease; slices pause at the next round
    /// boundary at or below this.
    pub slice: Ticks,
    /// Fleet-wide virtual-tick allowance summed over every executed
    /// slice; `None` runs every campaign to its own budget.
    pub total_budget: Option<Ticks>,
    /// Skip the fleet-level static preflight
    /// ([`cmfuzz::preflight::analyze_fleet_schedule`]).
    pub skip_preflight: bool,
    /// Rare seeds each campaign donates per wave boundary to the other
    /// members of its [`FleetCampaign::share_group`]; `0` (the default)
    /// disables sharing entirely and reproduces the historical fleet
    /// results bit-for-bit.
    pub share_rare_seeds: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            slots: 4,
            slice: Ticks::new(200),
            total_budget: None,
            skip_preflight: false,
            share_rare_seeds: 0,
        }
    }
}

/// Final state of one fleet campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign's fleet id.
    pub id: String,
    /// Slices this campaign leased.
    pub leases: u64,
    /// Virtual ticks the campaign consumed across its slices.
    pub consumed: Ticks,
    /// Whether the campaign exhausted its own budget.
    pub completed: bool,
    /// Branches the reachability analyzer certified this campaign's
    /// partition can ever cover; `None` when admission skipped preflight.
    pub reachable_branches: Option<usize>,
    /// The campaign's final checkpoint — resumable in a later fleet run
    /// when `completed` is false.
    pub checkpoint: CampaignCheckpoint,
}

impl CampaignOutcome {
    /// Union branch coverage the campaign reached so far.
    #[must_use]
    pub fn branches(&self) -> usize {
        self.checkpoint.union_branches()
    }

    /// Fraction of the certified-reachable branch ceiling the campaign
    /// covered; 0.0 when the ceiling is unknown (preflight skipped).
    #[must_use]
    pub fn coverage_of_reachable(&self) -> f64 {
        match self.reachable_branches {
            #[allow(clippy::cast_precision_loss)]
            Some(reachable) if reachable > 0 => self.branches() as f64 / reachable as f64,
            _ => 0.0,
        }
    }

    /// Assembles the campaign result from the checkpoint (partial when
    /// the fleet budget ran out first).
    #[must_use]
    pub fn result(&self) -> CampaignResult {
        self.checkpoint.clone().into_result()
    }
}

/// What a fleet run produced: scheduling totals plus per-campaign
/// outcomes in fleet order.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Name of the scheduling policy that ran the fleet.
    pub policy: String,
    /// Scheduling waves executed.
    pub waves: u64,
    /// Slices leased in total.
    pub leases: u64,
    /// Virtual ticks consumed across every slice.
    pub spent: Ticks,
    /// Seeds accepted across all wave-boundary rare-seed exchanges (0
    /// when [`FleetOptions::share_rare_seeds`] is 0).
    pub seeds_shared: u64,
    /// Seed transfers rejected during exchanges: subject mismatches and
    /// recipient instances whose running configuration violates the
    /// subject's declared startup constraints.
    pub seeds_share_rejected: u64,
    /// Per-campaign outcomes, in the order the fleet was given.
    pub campaigns: Vec<CampaignOutcome>,
}

impl FleetResult {
    /// Sum of final union branch counts across the fleet — the number a
    /// scheduling policy is trying to maximize under a fixed budget.
    #[must_use]
    pub fn total_branches(&self) -> usize {
        self.campaigns.iter().map(CampaignOutcome::branches).sum()
    }

    /// How many campaigns ran to their own budget.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.campaigns.iter().filter(|c| c.completed).count()
    }

    /// Whether every campaign exhausted its own budget.
    #[must_use]
    pub fn all_complete(&self) -> bool {
        self.campaigns.iter().all(|c| c.completed)
    }
}

/// Runs the fleet to completion (or until `options.total_budget` runs
/// out) under `policy`, without observability.
///
/// # Errors
///
/// Returns [`CampaignError::Preflight`] when the fleet schedule fails
/// static verification, and propagates the first [`CampaignError`] any
/// slice reports.
pub fn run_fleet(
    fleet: &[FleetCampaign],
    policy: &mut dyn SchedulingPolicy,
    options: &FleetOptions,
) -> Result<FleetResult, CampaignError> {
    run_fleet_with_telemetry(fleet, policy, options, &Telemetry::disabled())
}

/// [`run_fleet`] with an observability pipeline attached.
///
/// Each leased slice runs inside its own telemetry scope (committed in
/// lease order), every event it emits carries the campaign's id as its
/// `campaign` label, and the fleet maintains `fleet.waves`,
/// `fleet.leases`, and `fleet.ticks` counters. Instrumentation never
/// perturbs scheduling: a disabled pipeline produces the identical
/// [`FleetResult`].
///
/// This is a thin driver over [`FleetManager`]: the whole fleet is
/// admitted up front and waves are stepped until the fleet is done. A
/// control plane wanting live admission, pause/resume, or kill uses the
/// manager directly.
///
/// # Errors
///
/// As [`run_fleet`].
pub fn run_fleet_with_telemetry(
    fleet: &[FleetCampaign],
    policy: &mut dyn SchedulingPolicy,
    options: &FleetOptions,
    telemetry: &Telemetry,
) -> Result<FleetResult, CampaignError> {
    let mut manager = FleetManager::new(options.clone(), telemetry);
    manager.admit_batch(fleet.to_vec())?;
    // An unproductive wave (every lease too small to execute a round,
    // nothing completed) or an idle fleet ends a batch run.
    while let WaveOutcome::Ran { progress: true, .. } = manager.step_wave(policy)? {}
    manager.finish(policy.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz::campaign::try_run_campaign;
    use cmfuzz_coverage::VirtualClock;
    use cmfuzz_protocols::spec_by_name;
    use cmfuzz_telemetry::RingBufferSink;

    fn small_options(seed: u64, budget: u64) -> CampaignOptions {
        CampaignOptions {
            instances: 2,
            budget: Ticks::new(budget),
            sample_interval: Ticks::new(100),
            saturation_window: Ticks::new(200),
            seed,
            worker_pool: false,
            ..CampaignOptions::default()
        }
    }

    fn small_fleet() -> Vec<FleetCampaign> {
        [("mosquitto", 3_u64), ("dnsmasq", 7)]
            .iter()
            .map(|&(name, seed)| FleetCampaign {
                id: format!("{name}/part-0"),
                spec: spec_by_name(name).expect("subject exists"),
                fuzzer: "cmfuzz".into(),
                setups: vec![InstanceSetup::default(); 2],
                options: small_options(seed, 400),
                share_group: None,
            })
            .collect()
    }

    #[test]
    fn fleet_reproduces_each_campaign_exactly() {
        let fleet = small_fleet();
        let result = run_fleet(
            &fleet,
            &mut RoundRobin::new(),
            &FleetOptions {
                slots: 2,
                slice: Ticks::new(100),
                ..FleetOptions::default()
            },
        )
        .expect("fleet runs");
        assert!(result.all_complete());
        assert_eq!(result.leases, 8, "4 rounds per campaign, 100-tick leases");
        for (campaign, outcome) in fleet.iter().zip(&result.campaigns) {
            let mut reference_options = campaign.options.clone();
            reference_options.campaign_id = Some(campaign.id.clone());
            let reference = try_run_campaign(
                &campaign.spec,
                &campaign.fuzzer,
                &campaign.setups,
                &reference_options,
            )
            .expect("reference runs");
            assert_eq!(
                format!("{:?}", outcome.result()),
                format!("{reference:?}"),
                "{} sliced run must equal the uninterrupted run",
                campaign.id
            );
        }
    }

    #[test]
    fn fleet_budget_caps_total_consumption() {
        let fleet = small_fleet();
        let result = run_fleet(
            &fleet,
            &mut RoundRobin::new(),
            &FleetOptions {
                slots: 1,
                slice: Ticks::new(100),
                total_budget: Some(Ticks::new(300)),
                ..FleetOptions::default()
            },
        )
        .expect("fleet runs");
        assert_eq!(result.spent, Ticks::new(300));
        assert!(!result.all_complete(), "800 ticks of work, 300 allowed");
        // Unfinished campaigns come back as resumable checkpoints.
        let unfinished = result.campaigns.iter().find(|c| !c.completed).unwrap();
        assert!(unfinished.checkpoint.consumed() < Ticks::new(400));
    }

    #[test]
    fn same_seed_fleets_are_identical() {
        let run = || {
            run_fleet(
                &small_fleet(),
                &mut CoverageGradient::new(),
                &FleetOptions {
                    slots: 2,
                    slice: Ticks::new(100),
                    total_budget: Some(Ticks::new(600)),
                    ..FleetOptions::default()
                },
            )
            .expect("fleet runs")
        };
        assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }

    #[test]
    fn rare_seed_sharing_exchanges_within_groups_and_rejects_cross_subject() {
        // Two mosquitto campaigns and one dnsmasq campaign all share one
        // group: the mosquitto pair exchanges seeds, while every donation
        // between mosquitto and dnsmasq is rejected (their Pit model
        // tables differ) and counted.
        let fleet: Vec<FleetCampaign> = [("mosquitto", 3_u64), ("mosquitto", 5), ("dnsmasq", 7)]
            .iter()
            .enumerate()
            .map(|(i, &(name, seed))| FleetCampaign {
                id: format!("{name}/share-{i}"),
                spec: spec_by_name(name).expect("subject exists"),
                fuzzer: "cmfuzz".into(),
                setups: vec![InstanceSetup::default(); 2],
                options: small_options(seed, 400),
                share_group: Some("iot".into()),
            })
            .collect();
        let run = || {
            run_fleet(
                &fleet,
                &mut RoundRobin::new(),
                &FleetOptions {
                    slots: 3,
                    slice: Ticks::new(100),
                    share_rare_seeds: 4,
                    ..FleetOptions::default()
                },
            )
            .expect("fleet runs")
        };
        let result = run();
        assert!(result.seeds_shared > 0, "same-subject transfers happen");
        assert!(
            result.seeds_share_rejected > 0,
            "cross-subject donations are rejected and counted"
        );
        let imported: u64 = result
            .campaigns
            .iter()
            .map(|c| c.result().stats.seeds_imported)
            .sum();
        assert!(
            imported >= result.seeds_shared,
            "accepted transfers surface in campaign stats"
        );
        assert_eq!(
            format!("{:?}", run()),
            format!("{result:?}"),
            "sharing fleets stay deterministic"
        );
    }

    #[test]
    fn sharing_disabled_leaves_campaigns_untouched() {
        // share_rare_seeds: 0 must reproduce the no-sharing fleet even
        // when groups are declared — the historical digests depend on it.
        let mut grouped = small_fleet();
        for campaign in &mut grouped {
            campaign.share_group = Some("iot".into());
        }
        let opts = FleetOptions {
            slots: 2,
            slice: Ticks::new(100),
            ..FleetOptions::default()
        };
        let with_groups = run_fleet(&grouped, &mut RoundRobin::new(), &opts).expect("fleet runs");
        let without = run_fleet(&small_fleet(), &mut RoundRobin::new(), &opts).expect("fleet runs");
        assert_eq!(with_groups.seeds_shared, 0);
        for (a, b) in with_groups.campaigns.iter().zip(&without.campaigns) {
            assert_eq!(
                format!("{:?}", a.result()),
                format!("{:?}", b.result()),
                "campaign outcomes identical with sharing off"
            );
        }
    }

    #[test]
    fn duplicate_ids_fail_fleet_preflight() {
        let mut fleet = small_fleet();
        let clash = fleet[0].id.clone();
        fleet[1].id = clash;
        let err = run_fleet(&fleet, &mut RoundRobin::new(), &FleetOptions::default())
            .expect_err("duplicate ids rejected");
        let CampaignError::Preflight(diagnostics) = err else {
            panic!("expected preflight error, got {err:?}");
        };
        assert!(diagnostics.iter().any(|d| d.code() == "CM050"));
    }

    #[test]
    fn fleet_telemetry_labels_events_per_campaign() {
        let ring = RingBufferSink::new(4096);
        let telemetry = Telemetry::builder(VirtualClock::new())
            .sink(Box::new(ring.clone()))
            .build();
        let fleet = small_fleet();
        run_fleet_with_telemetry(
            &fleet,
            &mut RoundRobin::new(),
            &FleetOptions {
                slots: 2,
                slice: Ticks::new(200),
                ..FleetOptions::default()
            },
            &telemetry,
        )
        .expect("fleet runs");
        telemetry.flush();
        let records = ring.records();
        assert!(!records.is_empty());
        let labels: std::collections::BTreeSet<String> = records
            .iter()
            .filter_map(|r| r.campaign.as_deref().map(str::to_owned))
            .collect();
        assert_eq!(
            labels.into_iter().collect::<Vec<_>>(),
            vec!["dnsmasq/part-0".to_owned(), "mosquitto/part-0".to_owned()],
            "every campaign labelled its own event stream"
        );
        let snapshot = telemetry.metrics_snapshot();
        assert_eq!(snapshot.counter("fleet.waves"), Some(2));
        assert_eq!(snapshot.counter("fleet.leases"), Some(4));
        assert_eq!(snapshot.counter("fleet.ticks"), Some(800));
    }
}
