//! Dynamic fleet management: campaigns admitted into, controlled in, and
//! removed from a *running* fleet.
//!
//! [`run_fleet`](crate::run_fleet) executes a fixed schedule; the control
//! plane needs the same machinery with the schedule open-ended. A
//! [`FleetManager`] owns the per-campaign checkpoints and steps the fleet
//! one wave at a time: the caller decides when to step, which makes live
//! admission ([`FleetManager::admit`]), pause/resume, budget extension,
//! and kill natural — they all take effect at the next wave boundary,
//! where every campaign is parked in a [`CampaignCheckpoint`].
//!
//! Determinism is preserved by construction: the manager contains no RNG,
//! entries are never reordered (killed campaigns become tombstones so
//! policy indices stay stable), and a fixed admission sequence stepped to
//! completion reproduces [`run_fleet`](crate::run_fleet) of the same
//! schedule bit-for-bit — `run_fleet` is itself implemented on top of
//! this type.

use cmfuzz::campaign::{
    run_campaign_slice_with_control, run_campaign_slice_with_telemetry, seed_pack_len,
    CampaignCheckpoint, CampaignControl, CampaignOptions,
};
use cmfuzz::metrics::CampaignResult;
use cmfuzz::preflight::{analyze_fleet_schedule, analyze_reachability_for, FleetEntryView};
use cmfuzz::CampaignError;
use cmfuzz_bench::grid;
use cmfuzz_coverage::{Ticks, VirtualClock};
use cmfuzz_fuzzer::Target;
use cmfuzz_telemetry::{Counter, Telemetry};

use crate::{CampaignOutcome, FleetCampaign, FleetOptions, FleetResult, SchedulingPolicy};

/// Lifecycle state of one managed campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Admitted but never scheduled yet.
    Pending,
    /// Checkpointed with budget remaining; eligible for scheduling.
    Active,
    /// Administratively paused; skipped by the scheduler until resumed.
    Paused,
    /// Killed; a permanent tombstone (the entry keeps its index so policy
    /// state stays aligned, but it is never scheduled again).
    Killed,
    /// Ran to its own budget.
    Complete,
}

impl CampaignState {
    /// Stable lowercase label (used by the control-plane status protocol).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CampaignState::Pending => "pending",
            CampaignState::Active => "active",
            CampaignState::Paused => "paused",
            CampaignState::Killed => "killed",
            CampaignState::Complete => "complete",
        }
    }
}

/// Point-in-time view of one managed campaign.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The campaign's fleet id.
    pub id: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Slices leased so far.
    pub leases: u64,
    /// Virtual ticks consumed so far.
    pub consumed: Ticks,
    /// Rounds executed so far.
    pub rounds_done: u64,
    /// Union branch coverage so far.
    pub branches: usize,
    /// Branches the reachability analyzer certified this campaign's
    /// partition can ever cover; `None` when admission skipped preflight.
    pub reachable_branches: Option<usize>,
}

/// Why [`FleetManager::step_wave`] ran nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleReason {
    /// No eligible campaign: everything is complete, killed, or paused.
    NoneEligible,
    /// The fleet-wide total budget is exhausted.
    BudgetExhausted,
    /// The policy declined to schedule any eligible campaign.
    PolicyDeclined,
}

/// What one [`FleetManager::step_wave`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveOutcome {
    /// A wave of slices ran. `progress` is false when no lease executed a
    /// round and nothing completed — granting more identical leases
    /// cannot help, so batch drivers stop there.
    Ran {
        /// Leases in the wave.
        scheduled: usize,
        /// Whether any lease executed a round or finished its campaign.
        progress: bool,
    },
    /// Nothing ran; the fleet state is unchanged. Recoverable when the
    /// reason is (e.g.) an all-paused fleet.
    Idle(IdleReason),
}

#[derive(Debug)]
pub(crate) struct FleetEntry {
    pub(crate) campaign: FleetCampaign,
    /// `campaign.options` as slices actually run them: labelled with the
    /// fleet id, worker pool off (the wave grid supplies parallelism).
    prepared: CampaignOptions,
    pub(crate) checkpoint: Option<CampaignCheckpoint>,
    leases: u64,
    control: CampaignControl,
    paused: bool,
    pub(crate) killed: bool,
    /// Reachability-certified branch ceiling for this campaign's
    /// partition, computed once at admission (`None` when preflight was
    /// skipped). Fed to the scheduling policy as a prior before the
    /// campaign's first lease.
    reachable_branches: Option<usize>,
}

impl FleetEntry {
    fn new(campaign: FleetCampaign, reachable_branches: Option<usize>) -> Self {
        let mut prepared = campaign.options.clone();
        prepared.campaign_id = Some(campaign.id.clone());
        prepared.worker_pool = false;
        FleetEntry {
            campaign,
            prepared,
            checkpoint: None,
            leases: 0,
            control: CampaignControl::new(),
            paused: false,
            killed: false,
            reachable_branches,
        }
    }

    /// Completeness against the *prepared* options rather than the
    /// checkpoint's frozen round total, so a live budget extension
    /// re-opens a finished campaign.
    fn complete(&self) -> bool {
        let interval = self.prepared.sample_interval.get().max(1);
        self.checkpoint
            .as_ref()
            .is_some_and(|c| c.rounds_done() >= self.prepared.budget.get() / interval)
    }

    fn state(&self) -> CampaignState {
        if self.killed {
            CampaignState::Killed
        } else if self.paused {
            CampaignState::Paused
        } else if self.checkpoint.is_none() {
            CampaignState::Pending
        } else if self.complete() {
            CampaignState::Complete
        } else {
            CampaignState::Active
        }
    }

    fn eligible(&self) -> bool {
        !self.killed && !self.paused && !self.complete()
    }
}

/// A running fleet with dynamic membership and live per-campaign control.
///
/// The manager is single-threaded by design: every mutation — admission,
/// control signals, [`FleetManager::step_wave`] — happens between waves,
/// on the caller's thread. Concurrent control planes wrap it in a mutex
/// and flip [`CampaignControl`] signals (which *are* thread-safe and
/// interrupt an in-flight wave at round boundaries) from outside.
#[derive(Debug)]
pub struct FleetManager {
    entries: Vec<FleetEntry>,
    options: FleetOptions,
    telemetry: Telemetry,
    waves_counter: Counter,
    leases_counter: Counter,
    ticks_counter: Counter,
    shared_in_counter: Counter,
    shared_rejected_counter: Counter,
    waves: u64,
    leases: u64,
    spent: u64,
    seeds_shared: u64,
    seeds_share_rejected: u64,
    /// Entries `0..primed` have had their reachability prior handed to a
    /// policy; `step_wave` advances the watermark so every admitted
    /// campaign is primed exactly once, at its first wave.
    primed: usize,
}

impl FleetManager {
    /// Creates an empty fleet.
    #[must_use]
    pub fn new(options: FleetOptions, telemetry: &Telemetry) -> Self {
        FleetManager {
            entries: Vec::new(),
            waves_counter: telemetry.counter("fleet.waves"),
            leases_counter: telemetry.counter("fleet.leases"),
            ticks_counter: telemetry.counter("fleet.ticks"),
            shared_in_counter: telemetry.counter("corpus.shared_in"),
            shared_rejected_counter: telemetry.counter("corpus.shared_rejected"),
            telemetry: telemetry.clone(),
            options,
            waves: 0,
            leases: 0,
            spent: 0,
            seeds_shared: 0,
            seeds_share_rejected: 0,
            primed: 0,
        }
    }

    /// Admits one campaign; see [`FleetManager::admit_batch`].
    ///
    /// # Errors
    ///
    /// As [`FleetManager::admit_batch`].
    pub fn admit(&mut self, campaign: FleetCampaign) -> Result<usize, CampaignError> {
        self.admit_batch(vec![campaign]).map(|indices| indices[0])
    }

    /// Admits a batch of campaigns into the running fleet, validating the
    /// batch *together with* every live (non-killed) entry through the
    /// static fleet preflight (unless [`FleetOptions::skip_preflight`]) —
    /// duplicate ids, zero budgets, and broken subject models are rejected
    /// before anything is scheduled. Returns the entry indices, which stay
    /// valid for the manager's lifetime.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Preflight`] with the full diagnostic list when
    /// validation rejects the batch; the fleet is unchanged in that case.
    pub fn admit_batch(
        &mut self,
        campaigns: Vec<FleetCampaign>,
    ) -> Result<Vec<usize>, CampaignError> {
        if !self.options.skip_preflight {
            let entries: Vec<FleetEntryView<'_>> = self
                .entries
                .iter()
                .filter(|entry| !entry.killed)
                .map(|entry| &entry.campaign)
                .chain(campaigns.iter())
                .map(|campaign| FleetEntryView {
                    id: &campaign.id,
                    spec: &campaign.spec,
                    budget: campaign.options.budget,
                    setups: &campaign.setups,
                })
                .collect();
            let report = analyze_fleet_schedule(&entries);
            if report.has_errors() {
                return Err(CampaignError::Preflight(report.into_diagnostics()));
            }
        }
        let first = self.entries.len();
        let skip_preflight = self.options.skip_preflight;
        self.entries.extend(campaigns.into_iter().map(|campaign| {
            // Reachability is part of admission-time static analysis, so
            // `skip_preflight` opts out of it too (the entry then carries
            // no prior and the policy probes in plain index order).
            let reachable = (!skip_preflight).then(|| {
                analyze_reachability_for(&campaign.spec, &campaign.setups).reachable_branch_count()
            });
            FleetEntry::new(campaign, reachable)
        }));
        Ok((first..self.entries.len()).collect())
    }

    /// Index of the campaign with this id, killed entries included.
    #[must_use]
    pub fn find(&self, id: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.campaign.id == id)
    }

    /// The live [`CampaignControl`] handle for entry `index` — share it
    /// with another thread to interrupt an in-flight slice at its next
    /// round boundary.
    #[must_use]
    pub fn control(&self, index: usize) -> Option<CampaignControl> {
        self.entries.get(index).map(|e| e.control.clone())
    }

    /// Pauses the campaign: it is skipped by scheduling until resumed,
    /// and an in-flight slice stops at its next round boundary. Returns
    /// false for unknown ids and killed campaigns.
    pub fn pause(&mut self, id: &str) -> bool {
        match self.find(id) {
            Some(index) if !self.entries[index].killed => {
                self.entries[index].paused = true;
                self.entries[index].control.pause();
                true
            }
            _ => false,
        }
    }

    /// Clears a pause. Returns false for unknown ids and killed campaigns.
    pub fn resume(&mut self, id: &str) -> bool {
        match self.find(id) {
            Some(index) if !self.entries[index].killed => {
                self.entries[index].paused = false;
                self.entries[index].control.resume();
                true
            }
            _ => false,
        }
    }

    /// Permanently removes the campaign from scheduling. The entry stays
    /// as a tombstone (indices never shift under a policy) and its last
    /// checkpoint is kept for the final report. Returns false for unknown
    /// ids.
    pub fn kill(&mut self, id: &str) -> bool {
        match self.find(id) {
            Some(index) => {
                self.entries[index].killed = true;
                self.entries[index].control.kill();
                true
            }
            _ => false,
        }
    }

    /// Extends a campaign's budget to `budget` (the only live
    /// reconfiguration the checkpoint contract allows: rounds already
    /// executed are unaffected, the campaign simply keeps going further).
    /// Requests below the current budget are rejected. Returns false for
    /// unknown ids, killed campaigns, and non-extensions.
    pub fn extend_budget(&mut self, id: &str, budget: Ticks) -> bool {
        match self.find(id) {
            Some(index) if !self.entries[index].killed => {
                let entry = &mut self.entries[index];
                if budget <= entry.campaign.options.budget {
                    return false;
                }
                entry.campaign.options.budget = budget;
                entry.prepared.budget = budget;
                true
            }
            _ => false,
        }
    }

    /// Status rows for every entry, in admission order.
    #[must_use]
    pub fn status(&self) -> Vec<CampaignStatus> {
        self.entries
            .iter()
            .map(|entry| CampaignStatus {
                id: entry.campaign.id.clone(),
                state: entry.state(),
                leases: entry.leases,
                consumed: entry
                    .checkpoint
                    .as_ref()
                    .map_or(Ticks::ZERO, CampaignCheckpoint::consumed),
                rounds_done: entry
                    .checkpoint
                    .as_ref()
                    .map_or(0, CampaignCheckpoint::rounds_done),
                branches: entry
                    .checkpoint
                    .as_ref()
                    .map_or(0, CampaignCheckpoint::union_branches),
                reachable_branches: entry.reachable_branches,
            })
            .collect()
    }

    /// The campaign's current result, assembled from its checkpoint —
    /// partial while the campaign is still running, final once complete.
    /// `None` for unknown ids and campaigns never scheduled yet.
    ///
    /// Because per-campaign results are slicing-invariant (with rare-seed
    /// sharing off), a *served* campaign's result here is bit-identical to
    /// an offline [`crate::run_fleet`] of the same submission — the
    /// control plane's determinism gate compares exactly this.
    #[must_use]
    pub fn campaign_result(&self, id: &str) -> Option<CampaignResult> {
        let entry = &self.entries[self.find(id)?];
        entry
            .checkpoint
            .as_ref()
            .map(|checkpoint| checkpoint.clone().into_result())
    }

    /// Campaigns admitted (tombstones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no campaign was ever admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Virtual ticks consumed across every executed slice so far.
    #[must_use]
    pub fn spent(&self) -> Ticks {
        Ticks::new(self.spent)
    }

    /// Whether every non-killed campaign ran to its own budget.
    #[must_use]
    pub fn all_complete(&self) -> bool {
        self.entries
            .iter()
            .filter(|e| !e.killed)
            .all(FleetEntry::complete)
    }

    /// Runs one scheduling wave: asks `policy` to pick up to
    /// [`FleetOptions::slots`] eligible campaigns, leases each a slice of
    /// the remaining fleet budget, runs the slices as parallel grid cells
    /// (each in its own telemetry scope, committed in lease order), feeds
    /// the reports back to the policy, and performs the wave-boundary
    /// rare-seed exchange.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CampaignError`] any slice reports.
    pub fn step_wave(
        &mut self,
        policy: &mut dyn SchedulingPolicy,
    ) -> Result<WaveOutcome, CampaignError> {
        // Hand newly admitted campaigns' reachability priors to the
        // policy before it picks — each entry is primed exactly once, at
        // the first wave after its admission.
        while self.primed < self.entries.len() {
            if let Some(reachable) = self.entries[self.primed].reachable_branches {
                policy.prime(self.primed, reachable);
            }
            self.primed += 1;
        }
        let eligible: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].eligible())
            .collect();
        if eligible.is_empty() {
            return Ok(WaveOutcome::Idle(IdleReason::NoneEligible));
        }
        let remaining = self
            .options
            .total_budget
            .map(|total| total.get().saturating_sub(self.spent));
        if remaining == Some(0) {
            return Ok(WaveOutcome::Idle(IdleReason::BudgetExhausted));
        }

        let slots = self.options.slots.max(1).min(eligible.len());
        let picked = policy.pick(&eligible, slots);
        // Defensive sanitation: keep only eligible, distinct picks.
        let mut seen = std::collections::BTreeSet::new();
        let mut wave: Vec<usize> = picked
            .into_iter()
            .filter(|i| eligible.contains(i) && seen.insert(*i))
            .collect();
        wave.truncate(slots);
        if wave.is_empty() {
            return Ok(WaveOutcome::Idle(IdleReason::PolicyDeclined));
        }

        // Split the remaining fleet allowance across this wave's leases.
        let mut lease_budgets = Vec::with_capacity(wave.len());
        let mut left = remaining.unwrap_or(u64::MAX);
        for _ in &wave {
            let granted = self.options.slice.get().min(left);
            if left != u64::MAX {
                left -= granted;
            }
            lease_budgets.push(granted);
        }
        while lease_budgets.last() == Some(&0) {
            lease_budgets.pop();
            wave.pop();
        }
        if wave.is_empty() {
            return Ok(WaveOutcome::Idle(IdleReason::BudgetExhausted));
        }

        let resumes: Vec<Option<CampaignCheckpoint>> = wave
            .iter()
            .map(|&index| self.entries[index].checkpoint.take())
            .collect();
        let cells: Vec<_> = wave
            .iter()
            .zip(&lease_budgets)
            .zip(resumes)
            .map(|((&index, &granted), resume)| {
                let entry = &self.entries[index];
                let campaign = &entry.campaign;
                let opts = &entry.prepared;
                let control = entry.control.clone();
                let telemetry = self.telemetry.clone();
                move || {
                    let scope = telemetry.scoped(VirtualClock::new());
                    let outcome = run_campaign_slice_with_control(
                        &campaign.spec,
                        &campaign.fuzzer,
                        &campaign.setups,
                        opts,
                        resume,
                        Ticks::new(granted),
                        scope.telemetry(),
                        Some(&control),
                    );
                    scope.commit();
                    outcome
                }
            })
            .collect();
        let results = grid::run_cells(wave.len(), cells);

        let mut wave_progress = false;
        for (&index, outcome) in wave.iter().zip(results) {
            let (checkpoint, report) = outcome?;
            policy.observe(index, &report);
            self.entries[index].leases += 1;
            self.leases += 1;
            let executed = report.rounds
                * self.entries[index]
                    .campaign
                    .options
                    .sample_interval
                    .get()
                    .max(1);
            self.spent += executed;
            self.ticks_counter.add(executed);
            if report.rounds > 0 || report.done {
                wave_progress = true;
            }
            self.entries[index].checkpoint = Some(checkpoint);
        }
        self.waves += 1;
        self.waves_counter.incr();
        self.leases_counter.add(wave.len() as u64);

        if self.options.share_rare_seeds > 0 {
            let (accepted, rejected) =
                exchange_rare_seeds(&mut self.entries, self.options.share_rare_seeds);
            self.seeds_shared += accepted;
            self.seeds_share_rejected += rejected;
            self.shared_in_counter.add(accepted);
            self.shared_rejected_counter.add(rejected);
        }

        Ok(WaveOutcome::Ran {
            scheduled: wave.len(),
            progress: wave_progress,
        })
    }

    /// Consumes the manager into a [`FleetResult`], reported under
    /// `policy_name`. Never-scheduled campaigns get a zero-progress
    /// checkpoint so every admitted campaign (killed ones included) has an
    /// outcome row, and the telemetry pipeline is drained.
    ///
    /// # Errors
    ///
    /// Propagates boot failures from materializing the zero-progress
    /// checkpoints of never-scheduled campaigns.
    pub fn finish(self, policy_name: &str) -> Result<FleetResult, CampaignError> {
        let telemetry = self.telemetry;
        let campaigns = self
            .entries
            .into_iter()
            .map(|entry| {
                let checkpoint = match entry.checkpoint {
                    Some(checkpoint) => checkpoint,
                    None => {
                        let (checkpoint, _) = run_campaign_slice_with_telemetry(
                            &entry.campaign.spec,
                            &entry.campaign.fuzzer,
                            &entry.campaign.setups,
                            &entry.prepared,
                            None,
                            Ticks::ZERO,
                            &Telemetry::disabled(),
                        )?;
                        checkpoint
                    }
                };
                Ok(CampaignOutcome {
                    id: entry.campaign.id,
                    leases: entry.leases,
                    consumed: checkpoint.consumed(),
                    completed: checkpoint.is_complete(),
                    reachable_branches: entry.reachable_branches,
                    checkpoint,
                })
            })
            .collect::<Result<Vec<_>, CampaignError>>()?;

        telemetry.drain();
        Ok(FleetResult {
            policy: policy_name.to_owned(),
            waves: self.waves,
            leases: self.leases,
            spent: Ticks::new(self.spent),
            seeds_shared: self.seeds_shared,
            seeds_share_rejected: self.seeds_share_rejected,
            campaigns,
        })
    }
}

/// One wave boundary's fleet-wide rare-seed exchange: every checkpointed
/// campaign in a [`FleetCampaign::share_group`] donates its
/// `max_per_donor` rarest seeds to every other member of the group.
///
/// All packs are exported before any import, so a seed accepted this wave
/// propagates further only at the next boundary — the exchange is
/// order-independent within a wave apart from the deterministic fleet
/// ordering of the recipients themselves. Donations across subjects are
/// rejected wholesale (seed model ids index the donor's Pit model table,
/// which only campaigns of the same subject share); within a subject,
/// [`CampaignCheckpoint::import_seed_pack`] additionally rejects
/// instances whose running configuration violates the subject's declared
/// startup constraints. Killed campaigns neither donate nor receive.
/// Returns `(accepted, rejected)` transfer totals.
pub(crate) fn exchange_rare_seeds(entries: &mut [FleetEntry], max_per_donor: usize) -> (u64, u64) {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (index, entry) in entries.iter().enumerate() {
        let Some(group) = entry.campaign.share_group.as_deref() else {
            continue;
        };
        // A campaign the policy has not scheduled yet has no corpus to
        // donate and no checkpoint to import into; a killed campaign is
        // out of the fleet entirely. Skip both this wave.
        if entry.checkpoint.is_none() || entry.killed {
            continue;
        }
        match groups.iter_mut().find(|(name, _)| name == group) {
            Some((_, members)) => members.push(index),
            None => groups.push((group.to_owned(), vec![index])),
        }
    }

    let mut accepted_total = 0u64;
    let mut rejected_total = 0u64;
    for (_, members) in &groups {
        if members.len() < 2 {
            continue;
        }
        let packs: Vec<Vec<u8>> = members
            .iter()
            .map(|&i| {
                entries[i]
                    .checkpoint
                    .as_ref()
                    .expect("grouped members are checkpointed")
                    .export_rare_seeds(max_per_donor)
            })
            .collect();
        let constraints: Vec<_> = members
            .iter()
            .map(|&i| (entries[i].campaign.spec.build)().config_constraints())
            .collect();
        for (donor_slot, &donor) in members.iter().enumerate() {
            for (recipient_slot, &recipient) in members.iter().enumerate() {
                if recipient == donor {
                    continue;
                }
                if entries[donor].campaign.spec.name != entries[recipient].campaign.spec.name {
                    rejected_total += seed_pack_len(&packs[donor_slot]) as u64;
                    continue;
                }
                let checkpoint = entries[recipient]
                    .checkpoint
                    .as_mut()
                    .expect("grouped members are checkpointed");
                let (accepted, rejected) =
                    checkpoint.import_seed_pack(&packs[donor_slot], &constraints[recipient_slot]);
                accepted_total += accepted;
                rejected_total += rejected;
            }
        }
    }
    (accepted_total, rejected_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundRobin;
    use cmfuzz::campaign::InstanceSetup;
    use cmfuzz_protocols::spec_by_name;

    fn campaign(name: &str, id: &str, seed: u64, budget: u64) -> FleetCampaign {
        FleetCampaign {
            id: id.into(),
            spec: spec_by_name(name).expect("subject exists"),
            fuzzer: "cmfuzz".into(),
            setups: vec![InstanceSetup::default(); 2],
            options: CampaignOptions {
                instances: 2,
                budget: Ticks::new(budget),
                sample_interval: Ticks::new(100),
                saturation_window: Ticks::new(200),
                seed,
                worker_pool: false,
                ..CampaignOptions::default()
            },
            share_group: None,
        }
    }

    fn options() -> FleetOptions {
        FleetOptions {
            slots: 2,
            slice: Ticks::new(100),
            ..FleetOptions::default()
        }
    }

    #[test]
    fn admission_validates_against_live_entries() {
        let telemetry = Telemetry::disabled();
        let mut manager = FleetManager::new(options(), &telemetry);
        manager
            .admit(campaign("mosquitto", "m/0", 3, 400))
            .expect("first admission");
        let err = manager
            .admit(campaign("mosquitto", "m/0", 5, 400))
            .expect_err("duplicate id against a live entry");
        let CampaignError::Preflight(diagnostics) = err else {
            panic!("expected preflight rejection");
        };
        assert!(diagnostics.iter().any(|d| d.code() == "CM050"));
        assert_eq!(manager.len(), 1, "rejected batch admits nothing");

        // A killed entry releases its id.
        assert!(manager.kill("m/0"));
        manager
            .admit(campaign("mosquitto", "m/0", 5, 400))
            .expect("id is free after the kill");
        assert_eq!(manager.len(), 2);
    }

    #[test]
    fn admission_records_reachability_and_primes_the_policy_once() {
        struct Recorder {
            primed: Vec<(usize, usize)>,
        }
        impl SchedulingPolicy for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn pick(&mut self, eligible: &[usize], slots: usize) -> Vec<usize> {
                eligible[..slots.min(eligible.len())].to_vec()
            }
            fn observe(&mut self, _index: usize, _report: &cmfuzz::campaign::SliceReport) {}
            fn prime(&mut self, index: usize, reachable_branches: usize) {
                self.primed.push((index, reachable_branches));
            }
        }

        let telemetry = Telemetry::disabled();
        let mut manager = FleetManager::new(options(), &telemetry);
        manager
            .admit_batch(vec![
                campaign("mosquitto", "m/0", 3, 400),
                campaign("dnsmasq", "d/0", 7, 400),
            ])
            .expect("admission");
        let status = manager.status();
        for row in &status {
            let reachable = row
                .reachable_branches
                .expect("admission certifies a ceiling");
            assert!(
                reachable > 0,
                "{}: a bootable partition reaches branches",
                row.id
            );
        }

        let mut policy = Recorder { primed: Vec::new() };
        manager.step_wave(&mut policy).expect("wave runs");
        assert_eq!(
            policy.primed,
            vec![
                (0, status[0].reachable_branches.unwrap()),
                (1, status[1].reachable_branches.unwrap()),
            ],
            "every admitted campaign primed at its first wave"
        );
        manager.step_wave(&mut policy).expect("wave runs");
        assert_eq!(policy.primed.len(), 2, "priming happens exactly once");

        // Late admission picks up the watermark.
        manager
            .admit(campaign("mosquitto", "m/1", 5, 400))
            .expect("late admit");
        manager.step_wave(&mut policy).expect("wave runs");
        assert_eq!(policy.primed.len(), 3);
        assert_eq!(policy.primed[2].0, 2);

        // Outcomes carry the ceiling into the final report.
        while manager.step_wave(&mut policy).expect("wave runs")
            != WaveOutcome::Idle(IdleReason::NoneEligible)
        {}
        let result = manager.finish("recorder").expect("finish");
        for outcome in &result.campaigns {
            assert!(outcome.reachable_branches.is_some());
            assert!(
                outcome.coverage_of_reachable() > 0.0,
                "{} covered some of its certified ceiling",
                outcome.id
            );
        }

        // skip_preflight opts out of reachability certification too.
        let mut skipped = FleetManager::new(
            FleetOptions {
                skip_preflight: true,
                ..options()
            },
            &telemetry,
        );
        skipped
            .admit(campaign("mosquitto", "m/0", 3, 400))
            .expect("admission without preflight");
        assert_eq!(skipped.status()[0].reachable_branches, None);
    }

    #[test]
    fn pause_resume_kill_steer_scheduling_at_wave_boundaries() {
        let telemetry = Telemetry::disabled();
        let mut manager = FleetManager::new(options(), &telemetry);
        manager
            .admit_batch(vec![
                campaign("mosquitto", "m/0", 3, 400),
                campaign("dnsmasq", "d/0", 7, 400),
            ])
            .expect("admission");
        let mut policy = RoundRobin::new();

        assert!(manager.pause("m/0"));
        let outcome = manager.step_wave(&mut policy).expect("wave runs");
        assert_eq!(
            outcome,
            WaveOutcome::Ran {
                scheduled: 1,
                progress: true
            },
            "paused campaign is skipped, the other leases the wave"
        );
        let status = manager.status();
        assert_eq!(status[0].state, CampaignState::Paused);
        assert_eq!(status[0].leases, 0);
        assert_eq!(status[1].state, CampaignState::Active);
        assert_eq!(status[1].leases, 1);

        assert!(manager.resume("m/0"));
        assert!(manager.kill("d/0"));
        while manager.step_wave(&mut policy).expect("wave runs")
            != WaveOutcome::Idle(IdleReason::NoneEligible)
        {}
        let status = manager.status();
        assert_eq!(status[0].state, CampaignState::Complete);
        assert_eq!(status[1].state, CampaignState::Killed);
        assert!(
            status[1].consumed < Ticks::new(400),
            "killed campaign kept only its pre-kill progress"
        );
        assert!(manager.all_complete(), "tombstones don't block completion");

        let result = manager.finish("round_robin").expect("finish");
        assert_eq!(result.campaigns.len(), 2);
        assert!(result.campaigns[0].completed);
        assert!(!result.campaigns[1].completed);
    }

    #[test]
    fn late_admission_joins_scheduling_and_stays_deterministic() {
        let telemetry = Telemetry::disabled();
        let run = |late: bool| {
            let mut manager = FleetManager::new(options(), &telemetry);
            manager
                .admit(campaign("mosquitto", "m/0", 3, 300))
                .expect("admit");
            let mut policy = RoundRobin::new();
            if late {
                // One wave alone, then the second campaign joins.
                manager.step_wave(&mut policy).expect("wave");
            }
            manager
                .admit(campaign("dnsmasq", "d/0", 7, 300))
                .expect("late admit");
            while manager.step_wave(&mut policy).expect("wave")
                != WaveOutcome::Idle(IdleReason::NoneEligible)
            {}
            manager.finish("round_robin").expect("finish")
        };
        let late = run(true);
        assert!(late.all_complete());
        // Scheduling order differs, but each campaign's result is
        // slicing-invariant — the late-admission fleet reproduces the
        // up-front fleet's per-campaign results exactly.
        let upfront = run(false);
        for (a, b) in late.campaigns.iter().zip(&upfront.campaigns) {
            assert_eq!(
                format!("{:?}", a.result()),
                format!("{:?}", b.result()),
                "{} drifted across admission orders",
                a.id
            );
        }
    }

    #[test]
    fn extend_budget_keeps_a_finished_campaign_going() {
        let telemetry = Telemetry::disabled();
        let mut manager = FleetManager::new(options(), &telemetry);
        manager
            .admit(campaign("dnsmasq", "d/0", 7, 200))
            .expect("admit");
        let mut policy = RoundRobin::new();
        while manager.step_wave(&mut policy).expect("wave")
            != WaveOutcome::Idle(IdleReason::NoneEligible)
        {}
        assert_eq!(manager.status()[0].state, CampaignState::Complete);

        assert!(!manager.extend_budget("d/0", Ticks::new(100)), "no shrink");
        assert!(manager.extend_budget("d/0", Ticks::new(400)));
        assert_eq!(manager.status()[0].state, CampaignState::Active);
        while manager.step_wave(&mut policy).expect("wave")
            != WaveOutcome::Idle(IdleReason::NoneEligible)
        {}
        let status = manager.status();
        assert_eq!(status[0].state, CampaignState::Complete);
        assert_eq!(status[0].consumed, Ticks::new(400));
    }
}
