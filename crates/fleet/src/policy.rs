//! Scheduling policies: which campaigns get the next wave of worker slots.
//!
//! A policy sees only scheduling signals — the [`SliceReport`]s that come
//! back from executed slices — never campaign internals, so policies are
//! trivially pluggable and deterministic: same reports in, same picks out.
//! The fleet runner calls [`SchedulingPolicy::pick`] once per wave and
//! [`SchedulingPolicy::observe`] once per completed lease, in lease order.

use cmfuzz::campaign::SliceReport;

/// Picks which eligible campaigns lease the next wave of worker slots.
///
/// Implementations must be deterministic functions of the observation
/// history: the fleet's reproducibility guarantee (same seed, same
/// schedule) rests on it. `eligible` is always sorted ascending and
/// non-empty; `pick` returns up to `slots` *distinct* indices drawn from
/// it (the runner drops anything else defensively).
pub trait SchedulingPolicy: Send {
    /// Short stable name, recorded in [`crate::FleetResult`] and bench
    /// output.
    fn name(&self) -> &'static str;

    /// Chooses up to `slots` distinct campaign indices from `eligible`.
    fn pick(&mut self, eligible: &[usize], slots: usize) -> Vec<usize>;

    /// Feeds back the slice result for campaign `index` after a lease.
    fn observe(&mut self, index: usize, report: &SliceReport);

    /// Seeds the policy with a static prior for campaign `index`: the
    /// number of branches the reachability analyzer certified the
    /// campaign's partition can ever cover. The fleet manager calls this
    /// once per admitted campaign, before its first lease. Policies may
    /// use the prior *only* to order campaigns that have no observations
    /// yet — once slice reports arrive, observed rewards take over — so
    /// an unprimed fleet schedules exactly as it always did. The default
    /// ignores priors entirely.
    fn prime(&mut self, _index: usize, _reachable_branches: usize) {}
}

/// Fair rotation: every eligible campaign gets a slot in turn.
///
/// This is the fleet's baseline (and the honest comparison point for the
/// smarter policies): it encodes no beliefs about which campaign is
/// productive, so a saturated campaign burns exactly as much budget as a
/// fresh one.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    /// Next campaign index the rotation would like to serve.
    cursor: usize,
}

impl RoundRobin {
    /// A rotation starting from campaign 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, eligible: &[usize], slots: usize) -> Vec<usize> {
        // Rotate the eligible list so it starts at the cursor (or the
        // first index after it, if the cursor's campaign completed).
        let start = eligible.iter().position(|&i| i >= self.cursor).unwrap_or(0);
        let picked: Vec<usize> = (0..eligible.len().min(slots))
            .map(|off| eligible[(start + off) % eligible.len()])
            .collect();
        if let Some(&last) = picked.last() {
            self.cursor = last + 1;
        }
        picked
    }

    fn observe(&mut self, _index: usize, _report: &SliceReport) {}
}

/// Coverage-gradient scheduling: slots go to the campaigns whose recent
/// slices discovered the most new branches per executed session.
///
/// Each observed slice yields a reward `new_branches / sessions` which is
/// folded into a per-campaign EWMA (`score = alpha * reward +
/// (1 - alpha) * score`). Unplayed campaigns always outrank played ones —
/// every campaign gets probed before any is starved — and among played
/// campaigns, higher EWMA wins with lowest index as the deterministic
/// tie-break. Saturated campaigns decay toward zero and naturally stop
/// leasing slots while any campaign still shows a gradient.
///
/// Reachability priors ([`SchedulingPolicy::prime`]) refine only the
/// probe order: among unplayed campaigns, the one whose partition can
/// still reach the most branches is probed first. Played campaigns rank
/// purely on observed EWMA, so a wrong prior costs at most one wave of
/// probe ordering.
#[derive(Debug, Clone)]
pub struct CoverageGradient {
    alpha: f64,
    scores: Vec<Option<f64>>,
    priors: Vec<usize>,
}

impl CoverageGradient {
    /// EWMA smoothing used by [`CoverageGradient::new`].
    pub const DEFAULT_ALPHA: f64 = 0.5;

    /// A gradient scheduler with the default smoothing factor.
    #[must_use]
    pub fn new() -> Self {
        CoverageGradient::with_alpha(CoverageGradient::DEFAULT_ALPHA)
    }

    /// A gradient scheduler smoothing rewards with `alpha` in `(0, 1]`
    /// (1 keeps only the latest slice, small values average many).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        CoverageGradient {
            alpha,
            scores: Vec::new(),
            priors: Vec::new(),
        }
    }

    /// Current EWMA score for campaign `index` (`None` until first
    /// observed).
    #[must_use]
    pub fn score(&self, index: usize) -> Option<f64> {
        self.scores.get(index).copied().flatten()
    }

    fn prior(&self, index: usize) -> usize {
        self.priors.get(index).copied().unwrap_or(0)
    }
}

impl Default for CoverageGradient {
    fn default() -> Self {
        CoverageGradient::new()
    }
}

impl SchedulingPolicy for CoverageGradient {
    fn name(&self) -> &'static str {
        "coverage-gradient"
    }

    fn pick(&mut self, eligible: &[usize], slots: usize) -> Vec<usize> {
        let mut ranked: Vec<usize> = eligible.to_vec();
        // Unplayed first (highest reachability prior, then index), then
        // descending EWMA, index tie-break.
        ranked.sort_by(|&a, &b| match (self.score(a), self.score(b)) {
            (None, None) => self.prior(b).cmp(&self.prior(a)).then(a.cmp(&b)),
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(sa), Some(sb)) => sb.total_cmp(&sa).then(a.cmp(&b)),
        });
        ranked.truncate(slots);
        ranked
    }

    fn observe(&mut self, index: usize, report: &SliceReport) {
        if self.scores.len() <= index {
            self.scores.resize(index + 1, None);
        }
        #[allow(clippy::cast_precision_loss)]
        let reward = report.new_branches as f64 / report.sessions.max(1) as f64;
        let prev = self.scores[index];
        self.scores[index] = Some(match prev {
            Some(old) => self.alpha * reward + (1.0 - self.alpha) * old,
            None => reward,
        });
    }

    fn prime(&mut self, index: usize, reachable_branches: usize) {
        if self.priors.len() <= index {
            self.priors.resize(index + 1, 0);
        }
        self.priors[index] = reachable_branches;
    }
}

/// UCB1-style bandit: balances exploiting high-yield campaigns against
/// re-probing ones that looked dry early.
///
/// Each campaign is an arm; the reward per play is new branches per
/// session, tracked as a running mean. Picks maximize
/// `mean + c * sqrt(ln(total_plays) / plays)`, so rarely-played arms keep
/// a widening exploration bonus and a campaign that saturates early still
/// gets revisited occasionally — the classic hedge against a subject whose
/// coverage comes in late bursts. Unplayed arms always go first; among
/// them, a reachability prior ([`SchedulingPolicy::prime`]) puts the
/// partition with the most certified-reachable branches first, falling
/// back to index order. Played arms rank purely on observed rewards.
#[derive(Debug, Clone)]
pub struct UcbBandit {
    exploration: f64,
    plays: Vec<u64>,
    means: Vec<f64>,
    total_plays: u64,
    priors: Vec<usize>,
}

impl UcbBandit {
    /// Exploration constant used by [`UcbBandit::new`].
    pub const DEFAULT_EXPLORATION: f64 = 2.0;

    /// A bandit with the default exploration constant.
    #[must_use]
    pub fn new() -> Self {
        UcbBandit::with_exploration(UcbBandit::DEFAULT_EXPLORATION)
    }

    /// A bandit weighting the exploration bonus by `c >= 0` (0 is pure
    /// greedy exploitation).
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    #[must_use]
    pub fn with_exploration(c: f64) -> Self {
        assert!(
            c.is_finite() && c >= 0.0,
            "exploration must be finite and >= 0"
        );
        UcbBandit {
            exploration: c,
            plays: Vec::new(),
            means: Vec::new(),
            total_plays: 0,
            priors: Vec::new(),
        }
    }

    fn played(&self, index: usize) -> u64 {
        self.plays.get(index).copied().unwrap_or(0)
    }

    fn prior(&self, index: usize) -> usize {
        self.priors.get(index).copied().unwrap_or(0)
    }

    fn priority(&self, index: usize) -> f64 {
        let plays = self.played(index);
        if plays == 0 {
            return f64::INFINITY;
        }
        #[allow(clippy::cast_precision_loss)]
        let bonus =
            self.exploration * ((self.total_plays.max(1) as f64).ln() / plays as f64).sqrt();
        self.means[index] + bonus
    }
}

impl Default for UcbBandit {
    fn default() -> Self {
        UcbBandit::new()
    }
}

impl SchedulingPolicy for UcbBandit {
    fn name(&self) -> &'static str {
        "ucb-bandit"
    }

    fn pick(&mut self, eligible: &[usize], slots: usize) -> Vec<usize> {
        let mut ranked: Vec<usize> = eligible.to_vec();
        ranked.sort_by(|&a, &b| {
            // Priors break ties only between unplayed arms (all at
            // infinite priority); played arms rank on observations alone.
            let by_prior = if self.played(a) == 0 && self.played(b) == 0 {
                self.prior(b).cmp(&self.prior(a))
            } else {
                std::cmp::Ordering::Equal
            };
            self.priority(b)
                .total_cmp(&self.priority(a))
                .then(by_prior)
                .then(a.cmp(&b))
        });
        ranked.truncate(slots);
        ranked
    }

    fn observe(&mut self, index: usize, report: &SliceReport) {
        if self.plays.len() <= index {
            self.plays.resize(index + 1, 0);
            self.means.resize(index + 1, 0.0);
        }
        #[allow(clippy::cast_precision_loss)]
        let reward = report.new_branches as f64 / report.sessions.max(1) as f64;
        self.plays[index] += 1;
        self.total_plays += 1;
        #[allow(clippy::cast_precision_loss)]
        let n = self.plays[index] as f64;
        self.means[index] += (reward - self.means[index]) / n;
    }

    fn prime(&mut self, index: usize, reachable_branches: usize) {
        if self.priors.len() <= index {
            self.priors.resize(index + 1, 0);
        }
        self.priors[index] = reachable_branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(new_branches: usize, sessions: u64) -> SliceReport {
        SliceReport {
            rounds: 1,
            sessions,
            new_branches,
            union_branches: new_branches,
            done: false,
            interrupted: false,
        }
    }

    #[test]
    fn round_robin_rotates_through_eligible_campaigns() {
        let mut rr = RoundRobin::new();
        let eligible: Vec<usize> = (0..5).collect();
        assert_eq!(rr.pick(&eligible, 2), vec![0, 1]);
        assert_eq!(rr.pick(&eligible, 2), vec![2, 3]);
        assert_eq!(rr.pick(&eligible, 2), vec![4, 0]);
        // Campaign 1 completes; the rotation skips it without stalling.
        assert_eq!(rr.pick(&[0, 2, 3, 4], 2), vec![2, 3]);
    }

    #[test]
    fn gradient_prefers_unplayed_then_highest_ewma() {
        let mut grad = CoverageGradient::new();
        let eligible: Vec<usize> = (0..3).collect();
        assert_eq!(grad.pick(&eligible, 3), vec![0, 1, 2], "probe order");
        grad.observe(0, &report(2, 100)); // 0.02 per session
        grad.observe(1, &report(40, 100)); // 0.40 per session
        grad.observe(2, &report(10, 100)); // 0.10 per session
        assert_eq!(grad.pick(&eligible, 2), vec![1, 2]);
        // Campaign 1 dries up; its EWMA halves toward zero and campaign 2
        // overtakes it.
        grad.observe(1, &report(0, 100));
        grad.observe(1, &report(0, 100));
        grad.observe(1, &report(0, 100));
        assert_eq!(grad.pick(&eligible, 1), vec![2]);
    }

    #[test]
    fn gradient_tie_breaks_on_lowest_index() {
        let mut grad = CoverageGradient::new();
        grad.observe(0, &report(5, 10));
        grad.observe(1, &report(5, 10));
        assert_eq!(grad.pick(&[0, 1], 1), vec![0]);
    }

    #[test]
    fn bandit_explores_every_arm_then_exploits_with_a_bonus() {
        let mut ucb = UcbBandit::new();
        let eligible: Vec<usize> = (0..3).collect();
        assert_eq!(ucb.pick(&eligible, 3), vec![0, 1, 2], "unplayed first");
        ucb.observe(0, &report(1, 100));
        ucb.observe(1, &report(50, 100));
        ucb.observe(2, &report(5, 100));
        assert_eq!(ucb.pick(&eligible, 1), vec![1], "exploit the best arm");
        // Keep playing arm 1 with zero reward: its mean and bonus shrink
        // while the others' exploration bonuses grow.
        for _ in 0..12 {
            ucb.observe(1, &report(0, 100));
        }
        let next = ucb.pick(&eligible, 1)[0];
        assert_ne!(next, 1, "starved arms are re-probed eventually");
    }

    #[test]
    fn priming_reorders_only_unplayed_arms() {
        // Gradient: the probe wave follows the reachability prior...
        let mut grad = CoverageGradient::new();
        let eligible: Vec<usize> = (0..3).collect();
        grad.prime(0, 10);
        grad.prime(1, 40);
        grad.prime(2, 25);
        assert_eq!(grad.pick(&eligible, 3), vec![1, 2, 0], "prior probe order");
        // ...but once arms are observed, rewards alone rank them: the
        // lowest-prior arm with the best gradient wins.
        grad.observe(0, &report(30, 100));
        grad.observe(1, &report(5, 100));
        grad.observe(2, &report(1, 100));
        assert_eq!(grad.pick(&eligible, 3), vec![0, 1, 2]);

        // UCB: same contract — priors order the mandatory exploration
        // sweep, observations take over afterwards.
        let mut ucb = UcbBandit::new();
        ucb.prime(0, 10);
        ucb.prime(1, 40);
        ucb.prime(2, 25);
        assert_eq!(ucb.pick(&eligible, 3), vec![1, 2, 0], "prior probe order");
        ucb.observe(0, &report(30, 100));
        ucb.observe(1, &report(5, 100));
        ucb.observe(2, &report(1, 100));
        assert_eq!(ucb.pick(&eligible, 1), vec![0], "rewards outrank priors");
        // A played arm never outranks an unplayed one regardless of prior.
        ucb.prime(0, 1000);
        assert_eq!(ucb.pick(&[0, 3], 1), vec![3], "unplayed still first");
    }

    #[test]
    fn unprimed_policies_keep_index_probe_order() {
        // `prime` never called: behaviour is bit-identical to the
        // pre-prior policies — the historical fleet digests depend on it.
        let mut grad = CoverageGradient::new();
        let mut ucb = UcbBandit::new();
        let eligible: Vec<usize> = (0..4).collect();
        assert_eq!(grad.pick(&eligible, 4), vec![0, 1, 2, 3]);
        assert_eq!(ucb.pick(&eligible, 4), vec![0, 1, 2, 3]);
        // RoundRobin inherits the default no-op prime.
        let mut rr = RoundRobin::new();
        rr.prime(2, 999);
        assert_eq!(rr.pick(&eligible, 2), vec![0, 1]);
    }

    #[test]
    fn policies_are_deterministic_replays() {
        let run = || {
            let mut grad = CoverageGradient::new();
            let mut picks = Vec::new();
            for round in 0..10_usize {
                let eligible: Vec<usize> = (0..4).collect();
                let picked = grad.pick(&eligible, 2);
                for &idx in &picked {
                    grad.observe(idx, &report((idx * round) % 7, 50));
                }
                picks.push(picked);
            }
            picks
        };
        assert_eq!(run(), run());
    }
}
