//! Measures the corpus-intelligence layer and records the evidence in
//! `BENCH_corpus.json`.
//!
//! Three experiments back the claims from DESIGN.md §13:
//!
//! 1. **Coverage uplift** — every evaluation subject runs two campaigns
//!    at the same seed and budget, one with the default uniform corpus
//!    and one with [`CorpusConfig::intelligent`] (near-dedup +
//!    rarity-weighted picking + rarity eviction). The intelligent corpus
//!    must match or beat the uniform picker's final branch count on at
//!    least four of the six subjects.
//! 2. **Hot-path allocations** — a counting global allocator proves that
//!    computing a [`SeedSketch`] and picking from a rarity-weighted
//!    corpus at steady state (alias tables at their high-water size)
//!    perform zero heap allocations.
//! 3. **Fleet sharing** — two same-subject campaigns in one
//!    [`FleetCampaign::share_group`] must actually exchange seeds
//!    (`seeds_shared > 0`) and reproduce bit-identically on a same-seed
//!    repeat.
//!
//! Exits non-zero if any gate fails, so CI holds the corpus layer to its
//! claims.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cmfuzz::campaign::{try_run_campaign, CampaignOptions, InstanceSetup};
use cmfuzz_bench::report;
use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::{run_fleet, FleetCampaign, FleetOptions, RoundRobin};
use cmfuzz_fuzzer::{Corpus, CorpusConfig, EngineConfig, ModelId, Seed, SeedSketch};
use cmfuzz_protocols::{all_specs, ProtocolSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `routine` `iters` times and returns heap allocations performed.
fn count_allocs<F: FnMut()>(iters: u64, mut routine: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..iters {
        routine();
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

struct BenchScale {
    label: &'static str,
    /// Per-campaign budget in virtual ticks for the uplift comparison.
    budget: u64,
    /// Instances per campaign.
    instances: usize,
}

impl BenchScale {
    fn smoke() -> Self {
        BenchScale {
            label: "smoke",
            budget: 400,
            instances: 1,
        }
    }

    fn default() -> Self {
        BenchScale {
            label: "default",
            budget: 1_200,
            instances: 2,
        }
    }
}

/// Subjects the intelligent corpus must match-or-beat out of the six.
const UPLIFT_GATE: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = BenchScale::default();
    let mut out = PathBuf::from("BENCH_corpus.json");
    let mut seed: u64 = 0xC0095;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = BenchScale::smoke(),
            "--seed" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => seed = n,
                None => usage_error("--seed expects an unsigned integer"),
            },
            "--budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.budget = n,
                _ => usage_error("--budget expects a positive tick count"),
            },
            "--out" => match iter.next() {
                Some(path) => out = PathBuf::from(path),
                None => usage_error("--out expects a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "[bench_corpus] uniform vs intelligent corpus, {} ticks x {} instances ({} scale)",
        scale.budget, scale.instances, scale.label,
    );

    let (sketch_allocs, pick_allocs, pick_for_model_allocs) = measure_hot_path();
    eprintln!(
        "[bench_corpus] hot path: sketch {sketch_allocs} allocs, pick {pick_allocs}, \
         pick_for_model {pick_for_model_allocs} (over 2000 iterations each)"
    );

    let mut subject_blocks = Vec::new();
    let mut wins = 0usize;
    let started = Instant::now();
    for spec in all_specs() {
        let uniform = run_subject(&spec, &scale, seed, CorpusConfig::default());
        let intelligent = run_subject(&spec, &scale, seed, CorpusConfig::intelligent());
        let win = intelligent.0 >= uniform.0;
        wins += usize::from(win);
        eprintln!(
            "[bench_corpus]   {}: uniform {} branches, intelligent {} ({}), \
             dedup {}+{} near, {} evicted, corpus {} seeds / {} bytes",
            spec.name,
            uniform.0,
            intelligent.0,
            if win { "ok" } else { "regressed" },
            intelligent.1,
            intelligent.2,
            intelligent.3,
            intelligent.4,
            intelligent.5,
        );
        subject_blocks.push(format!(
            "    {{\"subject\": \"{}\", \"uniform_branches\": {}, \
             \"intelligent_branches\": {}, \"deduped_exact\": {}, \"deduped_near\": {}, \
             \"evicted\": {}, \"corpus_seeds\": {}, \"corpus_bytes\": {}}}",
            spec.name,
            uniform.0,
            intelligent.0,
            intelligent.1,
            intelligent.2,
            intelligent.3,
            intelligent.4,
            intelligent.5,
        ));
    }
    let uplift_seconds = started.elapsed().as_secs_f64();

    let (seeds_shared, share_rejected, share_deterministic) = run_sharing(seed);
    eprintln!(
        "[bench_corpus] sharing: {seeds_shared} seeds exchanged, {share_rejected} rejected, \
         deterministic: {share_deterministic}"
    );

    let json = format!(
        "{{\n  \"experiment\": \"corpus\",\n  \"scale\": \"{}\",\n  \"machine\": {},\n  \
         \"seed\": {seed},\n  \"budget_ticks\": {},\n  \"instances\": {},\n  \
         \"uplift_wall_seconds\": {uplift_seconds:.3},\n  \
         \"subjects_matched_or_beat\": {wins},\n  \"uplift_gate\": {UPLIFT_GATE},\n  \
         \"sketch_allocs\": {sketch_allocs},\n  \"pick_allocs\": {pick_allocs},\n  \
         \"pick_for_model_allocs\": {pick_for_model_allocs},\n  \
         \"seeds_shared\": {seeds_shared},\n  \"seeds_share_rejected\": {share_rejected},\n  \
         \"sharing_deterministic\": {share_deterministic},\n  \"subjects\": [\n{}\n  ]\n}}\n",
        scale.label,
        report::machine_info_json(),
        scale.budget,
        scale.instances,
        subject_blocks.join(",\n"),
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("[bench_corpus] cannot write {}: {err}", out.display());
        exit(2);
    }
    print!("{json}");

    let mut failed = false;
    if wins < UPLIFT_GATE {
        eprintln!(
            "[bench_corpus] FAIL: intelligent corpus matched-or-beat uniform on only \
             {wins}/6 subjects (gate: {UPLIFT_GATE})"
        );
        failed = true;
    }
    if sketch_allocs + pick_allocs + pick_for_model_allocs > 0 {
        eprintln!(
            "[bench_corpus] FAIL: corpus hot path allocated (sketch {sketch_allocs}, \
             pick {pick_allocs}, pick_for_model {pick_for_model_allocs})"
        );
        failed = true;
    }
    if seeds_shared == 0 {
        eprintln!("[bench_corpus] FAIL: fleet sharing exchanged no seeds");
        failed = true;
    }
    if !share_deterministic {
        eprintln!("[bench_corpus] FAIL: same-seed sharing fleets diverged");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

/// Runs one campaign over `spec` with the given corpus configuration and
/// returns `(branches, deduped_exact, deduped_near, evicted, corpus_seeds,
/// corpus_bytes)`.
fn run_subject(
    spec: &ProtocolSpec,
    scale: &BenchScale,
    seed: u64,
    corpus: CorpusConfig,
) -> (usize, u64, u64, u64, usize, usize) {
    let options = CampaignOptions {
        instances: scale.instances,
        budget: Ticks::new(scale.budget),
        sample_interval: Ticks::new(100),
        saturation_window: Ticks::new(200),
        seed,
        worker_pool: false,
        engine: EngineConfig {
            corpus,
            ..EngineConfig::default()
        },
        ..CampaignOptions::default()
    };
    let setups = vec![InstanceSetup::default(); scale.instances];
    let result = match try_run_campaign(spec, "cmfuzz", &setups, &options) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("[bench_corpus] campaign over {} failed: {error}", spec.name);
            exit(error.exit_code());
        }
    };
    (
        result.final_branches(),
        result.stats.seeds_deduped_exact,
        result.stats.seeds_deduped_near,
        result.stats.seeds_evicted,
        result.corpus.seeds,
        result.corpus.approx_bytes,
    )
}

/// Allocation gate: sketch computation and rarity-weighted picks at
/// steady state. Returns allocation counts over 2000 iterations each.
fn measure_hot_path() -> (u64, u64, u64) {
    let payload: Vec<u8> = (0..256u32)
        .map(|i| (i.wrapping_mul(37) % 251) as u8)
        .collect();
    let sketch_allocs = count_allocs(2_000, || {
        black_box(SeedSketch::compute(black_box(&payload)));
    });

    // A corpus at its high-water mark: every alias-table buffer reached
    // its final capacity during the adds, so steady-state picks are pure
    // table lookups.
    let mut corpus = Corpus::with_config(64, CorpusConfig::intelligent());
    for i in 0..64u32 {
        let bytes: Vec<u8> = (0..64u32)
            .map(|j| (i.wrapping_mul(131).wrapping_add(j * 17) % 251) as u8)
            .collect();
        corpus.add(Seed::with_rarity(bytes, ModelId::from_raw(i % 3), i % 11));
    }
    assert!(corpus.len() > 1, "hot-path corpus retained seeds");

    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let pick_allocs = count_allocs(2_000, || {
        black_box(corpus.pick(&mut rng));
    });
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let pick_for_model_allocs = count_allocs(2_000, || {
        black_box(corpus.pick_for_model(&mut rng, ModelId::from_raw(1)));
    });
    (sketch_allocs, pick_allocs, pick_for_model_allocs)
}

/// Fleet-sharing gate: two same-subject campaigns in one share group
/// must exchange seeds, and a same-seed repeat must reproduce the run.
/// Returns `(seeds_shared, seeds_share_rejected, deterministic)`.
fn run_sharing(seed: u64) -> (u64, u64, bool) {
    let spec = all_specs().into_iter().next().expect("subjects exist");
    let fleet: Vec<FleetCampaign> = (0..2)
        .map(|i| FleetCampaign {
            id: format!("{}/share-{i}", spec.name),
            spec,
            fuzzer: "cmfuzz".into(),
            setups: vec![InstanceSetup::default(); 2],
            options: CampaignOptions {
                instances: 2,
                budget: Ticks::new(400),
                sample_interval: Ticks::new(100),
                saturation_window: Ticks::new(200),
                seed: seed.wrapping_add(i),
                worker_pool: false,
                ..CampaignOptions::default()
            },
            share_group: Some("bench".into()),
        })
        .collect();
    let run = || match run_fleet(
        &fleet,
        &mut RoundRobin::new(),
        &FleetOptions {
            slots: 2,
            slice: Ticks::new(100),
            share_rare_seeds: 4,
            ..FleetOptions::default()
        },
    ) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("[bench_corpus] sharing fleet failed: {error}");
            exit(error.exit_code());
        }
    };
    let first = run();
    let second = run();
    let deterministic = format!("{first:?}") == format!("{second:?}");
    (
        first.seeds_shared,
        first.seeds_share_rejected,
        deterministic,
    )
}

const USAGE: &str = "usage: bench_corpus [--smoke] [--seed <n>] [--out <path>]\n\
    \n\
    --smoke   small budgets for CI smoke runs (default: the full bench scale)\n\
    --seed    campaign seed (default: 0xC0095)\n\
    --budget  per-campaign budget in ticks (overrides the scale)\n\
    --out     where to write the JSON record (default: BENCH_corpus.json)";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    exit(2);
}
