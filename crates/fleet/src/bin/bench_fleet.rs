//! Measures fleet scheduling policies against the round-robin baseline
//! and records the comparison in `BENCH_fleet.json`.
//!
//! The fleet is the six evaluation subjects, each split into its
//! relation-aware configuration partitions (one single-instance campaign
//! per partition), competing for a fixed total budget that is deliberately
//! smaller than the sum of the per-campaign budgets — so scheduling
//! decisions matter. Every policy runs the same fleet under the same
//! seeds; the coverage-gradient policy must match or beat round-robin's
//! total coverage at equal budget, and a same-seed repeat must reproduce
//! the run exactly. Exits non-zero if either gate fails, so CI can hold
//! the scheduler to its claim.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use cmfuzz::baseline::cmfuzz_setups;
use cmfuzz::campaign::CampaignOptions;
use cmfuzz::schedule::{build_schedule, ScheduleOptions};
use cmfuzz_bench::report;
use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::{
    run_fleet, CoverageGradient, FleetCampaign, FleetOptions, FleetResult, RoundRobin,
    SchedulingPolicy, UcbBandit,
};
use cmfuzz_protocols::all_specs;

/// Partitions per subject (relation-aware groups, one campaign each).
const PARTITIONS: usize = 3;

struct BenchScale {
    label: &'static str,
    /// Per-campaign budget in virtual ticks.
    campaign_budget: u64,
    /// Fleet-wide allowance; deliberately less than the sum of campaign
    /// budgets so policies must choose.
    total_budget: u64,
    slice: u64,
    slots: usize,
}

impl BenchScale {
    fn smoke() -> Self {
        BenchScale {
            label: "smoke",
            campaign_budget: 300,
            total_budget: 3000,
            slice: 100,
            slots: 4,
        }
    }

    fn default() -> Self {
        BenchScale {
            label: "default",
            campaign_budget: 600,
            total_budget: 7200,
            slice: 200,
            slots: 4,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = BenchScale::default();
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut seed: u64 = 0xF1EE7;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = BenchScale::smoke(),
            "--seed" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => seed = n,
                None => usage_error("--seed expects an unsigned integer"),
            },
            "--campaign-budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.campaign_budget = n,
                _ => usage_error("--campaign-budget expects a positive tick count"),
            },
            "--total-budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.total_budget = n,
                _ => usage_error("--total-budget expects a positive tick count"),
            },
            "--slice" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.slice = n,
                _ => usage_error("--slice expects a positive tick count"),
            },
            "--slots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => scale.slots = n,
                _ => usage_error("--slots expects a positive worker count"),
            },
            "--out" => match iter.next() {
                Some(path) => out = PathBuf::from(path),
                None => usage_error("--out expects a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let fleet = build_fleet(&scale, seed);
    let fleet_options = FleetOptions {
        slots: scale.slots,
        slice: Ticks::new(scale.slice),
        total_budget: Some(Ticks::new(scale.total_budget)),
        skip_preflight: false,
    };
    eprintln!(
        "[bench_fleet] {} campaigns, {} ticks each, {} total ({} scale)",
        fleet.len(),
        scale.campaign_budget,
        scale.total_budget,
        scale.label,
    );

    let mut policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(CoverageGradient::new()),
        Box::new(UcbBandit::new()),
    ];
    let mut runs = Vec::new();
    for policy in &mut policies {
        eprintln!("[bench_fleet] scheduling with {}...", policy.name());
        let started = Instant::now();
        let result = match run_fleet(&fleet, policy.as_mut(), &fleet_options) {
            Ok(result) => result,
            Err(error) => {
                eprintln!(
                    "[bench_fleet] fleet failed under {}: {error}",
                    policy.name()
                );
                exit(2);
            }
        };
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "[bench_fleet]   {} branches across {} campaigns ({} completed), {} waves, {:.3}s",
            result.total_branches(),
            result.campaigns.len(),
            result.completed_count(),
            result.waves,
            wall,
        );
        runs.push((result, wall));
    }

    eprintln!("[bench_fleet] determinism: re-running coverage-gradient with the same seed...");
    let repeat = match run_fleet(&fleet, &mut CoverageGradient::new(), &fleet_options) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("[bench_fleet] determinism re-run failed: {error}");
            exit(2);
        }
    };
    let deterministic = fleet_digest(&repeat) == fleet_digest(&runs[1].0);

    let round_robin = runs[0].0.total_branches();
    let gradient = runs[1].0.total_branches();
    #[allow(clippy::cast_precision_loss)]
    let improvement_pct = if round_robin == 0 {
        0.0
    } else {
        (gradient as f64 - round_robin as f64) / round_robin as f64 * 100.0
    };

    let policy_blocks = runs
        .iter()
        .map(|(result, wall)| policy_json(result, *wall))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"fleet\",\n  \"scale\": \"{}\",\n  \"machine\": {},\n  \"campaigns\": {},\n  \"seed\": {seed},\n  \"slots\": {},\n  \"slice_ticks\": {},\n  \"campaign_budget_ticks\": {},\n  \"total_budget_ticks\": {},\n  \"deterministic\": {deterministic},\n  \"gradient_vs_round_robin_pct\": {improvement_pct:.2},\n  \"policies\": [\n{policy_blocks}\n  ]\n}}\n",
        scale.label,
        report::machine_info_json(),
        fleet.len(),
        scale.slots,
        scale.slice,
        scale.campaign_budget,
        scale.total_budget,
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("[bench_fleet] cannot write {}: {err}", out.display());
        exit(2);
    }
    print!("{json}");

    let mut failed = false;
    if gradient < round_robin {
        eprintln!(
            "[bench_fleet] FAIL: coverage-gradient covered {gradient} branches, \
             round-robin {round_robin} at the same budget"
        );
        failed = true;
    }
    if !deterministic {
        eprintln!("[bench_fleet] FAIL: same-seed coverage-gradient runs diverged");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

/// Six subjects × their relation-aware partitions, one single-instance
/// campaign per partition.
fn build_fleet(scale: &BenchScale, seed: u64) -> Vec<FleetCampaign> {
    let mut fleet = Vec::new();
    for spec in all_specs() {
        let mut scratch = (spec.build)();
        let schedule = build_schedule(&mut scratch, PARTITIONS, &ScheduleOptions::default());
        let setups = cmfuzz_setups(&schedule, PARTITIONS);
        for (part, setup) in setups.into_iter().enumerate() {
            let options = CampaignOptions {
                instances: 1,
                budget: Ticks::new(scale.campaign_budget),
                sample_interval: Ticks::new(100),
                saturation_window: Ticks::new(200),
                seed: seed.wrapping_add(fleet.len() as u64 * 7919),
                worker_pool: false,
                ..CampaignOptions::default()
            };
            fleet.push(FleetCampaign {
                id: format!("{}/part-{part}", spec.name),
                spec,
                fuzzer: "cmfuzz".into(),
                setups: vec![setup],
                options,
            });
        }
    }
    fleet
}

/// Deterministic fingerprint of everything scheduling influenced (wall
/// times excluded).
fn fleet_digest(result: &FleetResult) -> String {
    let mut digest = format!(
        "{}|{}|{}|{}",
        result.policy,
        result.waves,
        result.leases,
        result.spent.get()
    );
    for outcome in &result.campaigns {
        digest.push_str(&format!(
            "|{}:{}:{}:{}:{}",
            outcome.id,
            outcome.branches(),
            outcome.consumed.get(),
            outcome.leases,
            outcome.completed,
        ));
    }
    digest
}

fn policy_json(result: &FleetResult, wall_seconds: f64) -> String {
    let campaigns = result
        .campaigns
        .iter()
        .map(|outcome| {
            format!(
                "        {{\"id\": \"{}\", \"branches\": {}, \"consumed_ticks\": {}, \
                 \"leases\": {}, \"completed\": {}}}",
                outcome.id,
                outcome.branches(),
                outcome.consumed.get(),
                outcome.leases,
                outcome.completed,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    {{\n      \"policy\": \"{}\",\n      \"wall_seconds\": {wall_seconds:.3},\n      \
         \"waves\": {},\n      \"leases\": {},\n      \"spent_ticks\": {},\n      \
         \"total_branches\": {},\n      \"completed\": {},\n      \"campaigns\": [\n{campaigns}\n      ]\n    }}",
        result.policy,
        result.waves,
        result.leases,
        result.spent.get(),
        result.total_branches(),
        result.completed_count(),
    )
}

const USAGE: &str = "usage: bench_fleet [--smoke] [--seed <n>] [--out <path>]\n\
    \n\
    --smoke            small budgets for CI smoke runs (default: the full bench scale)\n\
    --seed             base campaign seed (default: 0xF1EE7)\n\
    --out              where to write the JSON record (default: BENCH_fleet.json)\n\
    --campaign-budget  per-campaign budget in ticks (overrides the scale)\n\
    --total-budget     fleet-wide allowance in ticks (overrides the scale)\n\
    --slice            per-lease slice budget in ticks (overrides the scale)\n\
    --slots            worker slots per wave (overrides the scale)";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    exit(2);
}
