//! Measures fleet scheduling policies against the round-robin baseline
//! and records the comparison in `BENCH_fleet.json`.
//!
//! The fleet is the six evaluation subjects, each split into its
//! relation-aware configuration partitions (one single-instance campaign
//! per partition), competing for a fixed total budget that is deliberately
//! smaller than the sum of the per-campaign budgets — so scheduling
//! decisions matter. Every policy runs the same fleet under the same
//! seeds; the coverage-gradient policy must match or beat round-robin's
//! total coverage at equal budget, and a same-seed repeat must reproduce
//! the run exactly. With `--shard N` the four policy runs (the three
//! policies plus the determinism repeat) are distributed over `N` worker
//! *processes* — the same binary re-invoked with a hidden
//! `--shard-worker i/N` flag — and the gates compare digests that crossed
//! a process boundary, which is a strictly stronger reproducibility claim
//! than an in-process repeat.
//!
//! Every policy run is additionally audited against the configuration-
//! space reachability analyzer: each campaign's JSON row reports the
//! certified-reachable branch ceiling of its partition, the fraction of
//! that ceiling it covered, and how many *proven-dead* branches it
//! covered anyway (`dead_covered`). A non-zero fleet-wide
//! `dead_covered_total` means the analyzer claimed a branch could never
//! fire under the partition and a campaign fired it — an analyzer
//! soundness violation. Exits non-zero if any gate fails, so CI can hold
//! both the scheduler and the analyzer to their claims.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use cmfuzz::baseline::cmfuzz_setups;
use cmfuzz::campaign::CampaignOptions;
use cmfuzz::preflight::analyze_reachability_for;
use cmfuzz::schedule::{build_schedule, ScheduleOptions};
use cmfuzz_bench::{report, shard};
use cmfuzz_coverage::Ticks;
use cmfuzz_fleet::{
    run_fleet, CoverageGradient, FleetCampaign, FleetOptions, FleetResult, RoundRobin,
    SchedulingPolicy, UcbBandit,
};
use cmfuzz_protocols::all_specs;

/// Partitions per subject (relation-aware groups, one campaign each).
const PARTITIONS: usize = 3;

/// Policy runs per bench: round-robin, coverage-gradient, UCB bandit,
/// plus the coverage-gradient determinism repeat.
const CELLS: usize = 4;

struct BenchScale {
    label: &'static str,
    /// Per-campaign budget in virtual ticks.
    campaign_budget: u64,
    /// Fleet-wide allowance; deliberately less than the sum of campaign
    /// budgets so policies must choose.
    total_budget: u64,
    slice: u64,
    slots: usize,
}

impl BenchScale {
    fn smoke() -> Self {
        BenchScale {
            label: "smoke",
            campaign_budget: 300,
            total_budget: 3000,
            slice: 100,
            slots: 4,
        }
    }

    fn default() -> Self {
        BenchScale {
            label: "default",
            campaign_budget: 600,
            total_budget: 7200,
            slice: 200,
            slots: 4,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = BenchScale::default();
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut seed: u64 = 0xF1EE7;
    let mut shards: Option<usize> = None;
    let mut worker: Option<(usize, usize)> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = BenchScale::smoke(),
            "--seed" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => seed = n,
                None => usage_error("--seed expects an unsigned integer"),
            },
            "--campaign-budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.campaign_budget = n,
                _ => usage_error("--campaign-budget expects a positive tick count"),
            },
            "--total-budget" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.total_budget = n,
                _ => usage_error("--total-budget expects a positive tick count"),
            },
            "--slice" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => scale.slice = n,
                _ => usage_error("--slice expects a positive tick count"),
            },
            "--slots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => scale.slots = n,
                _ => usage_error("--slots expects a positive worker count"),
            },
            "--shard" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => usage_error("--shard expects a positive worker-process count"),
            },
            "--shard-worker" => match iter.next().and_then(|s| shard::parse_worker_spec(s)) {
                Some(spec) => worker = Some(spec),
                None => usage_error("--shard-worker expects i/N with i < N"),
            },
            "--out" => match iter.next() {
                Some(path) => out = PathBuf::from(path),
                None => usage_error("--out expects a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let fleet = build_fleet(&scale, seed);
    let fleet_options = FleetOptions {
        slots: scale.slots,
        slice: Ticks::new(scale.slice),
        total_budget: Some(Ticks::new(scale.total_budget)),
        skip_preflight: false,
        share_rare_seeds: 0,
    };

    if let Some((index, of)) = worker {
        run_shard_worker(&fleet, &fleet_options, index, of);
    }

    eprintln!(
        "[bench_fleet] {} campaigns, {} ticks each, {} total ({} scale)",
        fleet.len(),
        scale.campaign_budget,
        scale.total_budget,
        scale.label,
    );

    let (deterministic, round_robin, gradient, dead_covered_total, policy_blocks, shard_json) =
        match shards {
            Some(n) => run_sharded(&scale, seed, n),
            None => run_in_process(&fleet, &fleet_options),
        };

    #[allow(clippy::cast_precision_loss)]
    let improvement_pct = if round_robin == 0 {
        0.0
    } else {
        (gradient as f64 - round_robin as f64) / round_robin as f64 * 100.0
    };

    let json = format!(
        "{{\n  \"experiment\": \"fleet\",\n  \"scale\": \"{}\",\n  \"machine\": {},\n  \"campaigns\": {},\n  \"seed\": {seed},\n  \"slots\": {},\n  \"slice_ticks\": {},\n  \"campaign_budget_ticks\": {},\n  \"total_budget_ticks\": {},\n  \"deterministic\": {deterministic},\n  \"gradient_vs_round_robin_pct\": {improvement_pct:.2},\n  \"dead_covered_total\": {dead_covered_total},\n  \"policies\": [\n{policy_blocks}\n  ]{shard_json}\n}}\n",
        scale.label,
        report::machine_info_json(),
        fleet.len(),
        scale.slots,
        scale.slice,
        scale.campaign_budget,
        scale.total_budget,
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("[bench_fleet] cannot write {}: {err}", out.display());
        exit(2);
    }
    print!("{json}");

    let mut failed = false;
    if gradient < round_robin {
        eprintln!(
            "[bench_fleet] FAIL: coverage-gradient covered {gradient} branches, \
             round-robin {round_robin} at the same budget"
        );
        failed = true;
    }
    if !deterministic {
        eprintln!("[bench_fleet] FAIL: same-seed coverage-gradient runs diverged");
        failed = true;
    }
    if dead_covered_total > 0 {
        eprintln!(
            "[bench_fleet] FAIL: campaigns covered {dead_covered_total} branches the \
             reachability analyzer proved statically dead — the analyzer is unsound"
        );
        failed = true;
    }
    if failed {
        exit(1);
    }
}

/// The policy a cell index runs: cells 1 and 3 are both coverage-gradient
/// (3 is the determinism repeat).
fn cell_policy(cell: usize) -> Box<dyn SchedulingPolicy> {
    match cell {
        0 => Box::new(RoundRobin::new()),
        2 => Box::new(UcbBandit::new()),
        _ => Box::new(CoverageGradient::new()),
    }
}

/// Runs all four policy cells in this process and returns the gate
/// inputs plus the rendered policy JSON blocks.
fn run_in_process(
    fleet: &[FleetCampaign],
    options: &FleetOptions,
) -> (bool, usize, usize, usize, String, String) {
    let mut runs = Vec::new();
    for cell in 0..CELLS {
        let mut policy = cell_policy(cell);
        if cell == 3 {
            eprintln!(
                "[bench_fleet] determinism: re-running coverage-gradient with the same seed..."
            );
        } else {
            eprintln!("[bench_fleet] scheduling with {}...", policy.name());
        }
        let started = Instant::now();
        let result = match run_fleet(fleet, policy.as_mut(), options) {
            Ok(result) => result,
            Err(error) => {
                eprintln!(
                    "[bench_fleet] fleet failed under {}: {error}",
                    policy.name()
                );
                exit(error.exit_code());
            }
        };
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "[bench_fleet]   {} branches across {} campaigns ({} completed), {} waves, {:.3}s",
            result.total_branches(),
            result.campaigns.len(),
            result.completed_count(),
            result.waves,
            wall,
        );
        runs.push((result, wall));
    }

    let deterministic = fleet_digest(&runs[3].0) == fleet_digest(&runs[1].0);
    let round_robin = runs[0].0.total_branches();
    let gradient = runs[1].0.total_branches();
    let mut dead_covered_total = 0usize;
    let policy_blocks = runs[..3]
        .iter()
        .map(|(result, wall)| {
            let (block, dead_covered) = policy_json(fleet, result, *wall);
            dead_covered_total += dead_covered;
            block
        })
        .collect::<Vec<_>>()
        .join(",\n");
    (
        deterministic,
        round_robin,
        gradient,
        dead_covered_total,
        policy_blocks,
        String::new(),
    )
}

/// Runs the cells this worker owns and prints their reports to stdout.
fn run_shard_worker(fleet: &[FleetCampaign], options: &FleetOptions, index: usize, of: usize) -> ! {
    let indices = shard::owned_indices(index, of, CELLS);
    eprintln!(
        "[bench_fleet] shard worker {index}/{of}: {} cells",
        indices.len()
    );
    let mut wire = String::new();
    for cell in indices {
        let mut policy = cell_policy(cell);
        let started = Instant::now();
        let result = match run_fleet(fleet, policy.as_mut(), options) {
            Ok(result) => result,
            Err(error) => {
                eprintln!(
                    "[bench_fleet] shard worker {index}/{of} failed under {}: {error}",
                    policy.name()
                );
                exit(error.exit_code());
            }
        };
        let wall = started.elapsed().as_secs_f64();
        let (block, dead_covered) = policy_json(fleet, &result, wall);
        shard::write_fleet_cell(
            &mut wire,
            &shard::FleetCellReport {
                index: cell,
                seconds: wall,
                digest: fleet_digest(&result),
                total_branches: result.total_branches(),
                completed: result.completed_count(),
                dead_covered,
                policy_json: block,
            },
        );
    }
    print!("{wire}");
    exit(0);
}

/// Forks `shards` worker processes over the four policy cells and
/// reassembles the gate inputs from their reports. The scale is forwarded
/// to every worker as explicit flag values so each rebuilds the exact
/// same fleet.
fn run_sharded(
    scale: &BenchScale,
    seed: u64,
    shards: usize,
) -> (bool, usize, usize, usize, String, String) {
    eprintln!("[bench_fleet] sharded run ({shards} worker processes)...");
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("[bench_fleet] cannot locate own executable: {err}");
            exit(2);
        }
    };
    let started = Instant::now();
    let children: Vec<_> = (0..shards.min(CELLS))
        .map(|i| {
            std::process::Command::new(&exe)
                .arg("--seed")
                .arg(seed.to_string())
                .arg("--campaign-budget")
                .arg(scale.campaign_budget.to_string())
                .arg("--total-budget")
                .arg(scale.total_budget.to_string())
                .arg("--slice")
                .arg(scale.slice.to_string())
                .arg("--slots")
                .arg(scale.slots.to_string())
                .arg("--shard-worker")
                .arg(format!("{i}/{}", shards.min(CELLS)))
                .stdout(std::process::Stdio::piped())
                .spawn()
                .unwrap_or_else(|err| {
                    eprintln!("[bench_fleet] cannot spawn shard worker {i}: {err}");
                    exit(2);
                })
        })
        .collect();
    let mut cells: Vec<shard::FleetCellReport> = Vec::new();
    for (i, child) in children.into_iter().enumerate() {
        let output = child.wait_with_output().unwrap_or_else(|err| {
            eprintln!("[bench_fleet] shard worker {i} vanished: {err}");
            exit(2);
        });
        if !output.status.success() {
            eprintln!(
                "[bench_fleet] shard worker {i} exited with {}",
                output.status
            );
            exit(2);
        }
        let text = String::from_utf8_lossy(&output.stdout);
        match shard::parse_fleet_cells(&text) {
            Ok(reports) => cells.extend(reports),
            Err(err) => {
                eprintln!("[bench_fleet] shard worker {i} protocol error: {err}");
                exit(2);
            }
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    cells.sort_by_key(|c| c.index);
    if cells.len() != CELLS || cells.iter().enumerate().any(|(i, c)| c.index != i) {
        eprintln!(
            "[bench_fleet] shard reports do not tile the policy cells: got {} of {CELLS}",
            cells.len()
        );
        exit(2);
    }

    let deterministic = cells[3].digest == cells[1].digest;
    let round_robin = cells[0].total_branches;
    let gradient = cells[1].total_branches;
    let dead_covered_total = cells[..3].iter().map(|c| c.dead_covered).sum();
    let policy_blocks = cells[..3]
        .iter()
        .map(|c| c.policy_json.clone())
        .collect::<Vec<_>>()
        .join(",\n");
    let shard_json = format!(
        ",\n  \"shard\": {{\"shards\": {}, \"wall_seconds\": {wall_seconds:.3}, \"cross_process_deterministic\": {deterministic}}}",
        shards.min(CELLS),
    );
    eprintln!(
        "[bench_fleet] sharded {wall_seconds:.3}s, cross-process deterministic: {deterministic}"
    );
    (
        deterministic,
        round_robin,
        gradient,
        dead_covered_total,
        policy_blocks,
        shard_json,
    )
}

/// Six subjects × their relation-aware partitions, one single-instance
/// campaign per partition.
fn build_fleet(scale: &BenchScale, seed: u64) -> Vec<FleetCampaign> {
    let mut fleet = Vec::new();
    for spec in all_specs() {
        let mut scratch = (spec.build)();
        let schedule = build_schedule(&mut scratch, PARTITIONS, &ScheduleOptions::default());
        let setups = cmfuzz_setups(&schedule, PARTITIONS);
        for (part, setup) in setups.into_iter().enumerate() {
            let options = CampaignOptions {
                instances: 1,
                budget: Ticks::new(scale.campaign_budget),
                sample_interval: Ticks::new(100),
                saturation_window: Ticks::new(200),
                seed: seed.wrapping_add(fleet.len() as u64 * 7919),
                worker_pool: false,
                ..CampaignOptions::default()
            };
            fleet.push(FleetCampaign {
                id: format!("{}/part-{part}", spec.name),
                spec,
                fuzzer: "cmfuzz".into(),
                setups: vec![setup],
                options,
                share_group: None,
            });
        }
    }
    fleet
}

/// Deterministic fingerprint of everything scheduling influenced (wall
/// times excluded).
fn fleet_digest(result: &FleetResult) -> String {
    let mut digest = format!(
        "{}|{}|{}|{}",
        result.policy,
        result.waves,
        result.leases,
        result.spent.get()
    );
    for outcome in &result.campaigns {
        digest.push_str(&format!(
            "|{}:{}:{}:{}:{}",
            outcome.id,
            outcome.branches(),
            outcome.consumed.get(),
            outcome.leases,
            outcome.completed,
        ));
    }
    digest
}

/// Renders one policy run's JSON block and audits it against the
/// reachability analyzer: each campaign reports its certified-reachable
/// ceiling, the fraction of it covered, and how many *proven-dead*
/// branches it covered anyway. The second return value is the run's total
/// dead-covered count — any non-zero value is a soundness violation (the
/// analyzer claimed a branch could never fire and the campaign fired it)
/// and fails the bench.
fn policy_json(
    fleet: &[FleetCampaign],
    result: &FleetResult,
    wall_seconds: f64,
) -> (String, usize) {
    let mut dead_covered_total = 0usize;
    let campaigns = fleet
        .iter()
        .zip(&result.campaigns)
        .map(|(campaign, outcome)| {
            let occupancy = outcome.checkpoint.corpus_occupancy();
            let reach = analyze_reachability_for(&campaign.spec, &campaign.setups);
            let covered: Vec<u32> = outcome
                .result()
                .coverage
                .covered_ids()
                .map(|id| id.index())
                .collect();
            let dead_covered = reach.dead_covered(&covered).len();
            dead_covered_total += dead_covered;
            let reachable = outcome
                .reachable_branches
                .unwrap_or_else(|| reach.reachable_branch_count());
            format!(
                "        {{\"id\": \"{}\", \"branches\": {}, \"reachable\": {reachable}, \
                 \"coverage_of_reachable\": {:.4}, \"dead_covered\": {dead_covered}, \
                 \"consumed_ticks\": {}, \
                 \"leases\": {}, \"completed\": {}, \"corpus_seeds\": {}, \
                 \"corpus_bytes\": {}}}",
                outcome.id,
                outcome.branches(),
                outcome.coverage_of_reachable(),
                outcome.consumed.get(),
                outcome.leases,
                outcome.completed,
                occupancy.seeds,
                occupancy.approx_bytes,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let block = format!(
        "    {{\n      \"policy\": \"{}\",\n      \"wall_seconds\": {wall_seconds:.3},\n      \
         \"waves\": {},\n      \"leases\": {},\n      \"spent_ticks\": {},\n      \
         \"total_branches\": {},\n      \"completed\": {},\n      \"dead_covered\": {dead_covered_total},\n      \"campaigns\": [\n{campaigns}\n      ]\n    }}",
        result.policy,
        result.waves,
        result.leases,
        result.spent.get(),
        result.total_branches(),
        result.completed_count(),
    );
    (block, dead_covered_total)
}

const USAGE: &str = "usage: bench_fleet [--smoke] [--seed <n>] [--shard <n>] [--out <path>]\n\
    \n\
    --smoke            small budgets for CI smoke runs (default: the full bench scale)\n\
    --seed             base campaign seed (default: 0xF1EE7)\n\
    --shard            distribute the policy runs over <n> worker processes and gate\n\
                       determinism across the process boundary\n\
    --out              where to write the JSON record (default: BENCH_fleet.json)\n\
    --campaign-budget  per-campaign budget in ticks (overrides the scale)\n\
    --total-budget     fleet-wide allowance in ticks (overrides the scale)\n\
    --slice            per-lease slice budget in ticks (overrides the scale)\n\
    --slots            worker slots per wave (overrides the scale)";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    exit(2);
}
