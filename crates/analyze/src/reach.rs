//! Branch reachability analysis (the `CM06x` checks).
//!
//! Given a target's [`GuardTable`] (which config predicates gate which
//! coverage regions), its startup [`ConstraintSet`], and a configuration
//! space, this module proves per branch either:
//!
//! * **reachable** — with a canonical *witness* configuration that
//!   satisfies the guard and violates no startup constraint (so the server
//!   boots and the branch's gate is open), or
//! * **statically dead** — with a machine-checkable propagation chain
//!   showing why no configuration in the space opens the gate, or
//! * **unknown** — the solver hit a stated limit and claims nothing
//!   (`CM064`).
//!
//! Two space shapes exist ([`ReachSpace`]):
//!
//! * [`ReachSpace::Partition`] — one campaign instance's *finite* space:
//!   the initial configuration plus the per-item values adaptive mutation
//!   may substitute. Enumeration over the guard's key closure is exact
//!   here, so dead claims (`CM060`) are sound by exhaustion, with the
//!   propagation chain as the human-readable explanation.
//! * [`ReachSpace::Global`] — the whole model. Candidate sets are closed
//!   over every interval boundary mentioned by any relevant predicate
//!   (plus the `i64` extremes and an unlisted-string sentinel), which
//!   makes the enumeration decisive for the predicate vocabulary; a dead
//!   claim here (`CM061`) means the guard contradicts the declared
//!   constraints outright.
//!
//! Soundness stance: guards declare conditions *necessary* for their
//! branch (exact for [`GuardKind::Startup`]), so an unsatisfiable guard
//! proves the branch dead, while a satisfiable one never promises the
//! fuzzer will cover a handler branch — reachability is an upper bound by
//! construction, which is exactly what the fleet scheduler needs.

use std::collections::{BTreeMap, BTreeSet};

use cmfuzz_config_model::{
    BranchGuard, Condition, ConfigModel, ConfigValue, ConstraintSet, GuardKind, GuardTable,
    Predicate, ResolvedConfig,
};

use crate::solve::{Domain, Solver, LIST_SCAN};
use crate::{Diagnostic, Report, Severity};

/// Hard cap on enumerated candidate configurations per guard; beyond it
/// the analyzer reports `CM064` and claims nothing. Sized so the widest
/// builtin guard closure (a list predicate fanning out over all
/// [`LIST_SCAN`] slots alongside its linked constraints) still certifies.
const ENUM_CAP: u128 = 1 << 20;

/// The configuration space a reachability query ranges over.
#[derive(Debug, Clone)]
pub enum ReachSpace {
    /// One campaign instance's finite space.
    Partition {
        /// The instance's initial configuration (keys outside `domains`
        /// stay at these bindings in every reachable configuration).
        base: ResolvedConfig,
        /// Per-item candidate values adaptive mutation can produce;
        /// `None` marks "may be left unbound".
        domains: BTreeMap<String, Vec<Option<ConfigValue>>>,
    },
    /// The unrestricted space of the whole model.
    Global,
}

/// Verdict for one guarded branch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachStatus {
    /// A certified witness: boots the server and opens the branch's gate.
    Reachable {
        /// The canonical witness configuration.
        witness: ResolvedConfig,
    },
    /// Proven unreachable within the space.
    Dead {
        /// The propagation/enumeration steps of the refutation.
        chain: Vec<String>,
    },
    /// The solver hit a limit; nothing is claimed either way.
    Unknown {
        /// Why certification failed.
        reason: String,
    },
}

/// One branch's reachability result.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchReach {
    branch: u32,
    region: String,
    kind: GuardKind,
    status: ReachStatus,
}

impl BranchReach {
    /// The guarded branch's dense index.
    #[must_use]
    pub fn branch(&self) -> u32 {
        self.branch
    }

    /// The guard's human-readable region label.
    #[must_use]
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The guard strength.
    #[must_use]
    pub fn kind(&self) -> GuardKind {
        self.kind
    }

    /// The verdict.
    #[must_use]
    pub fn status(&self) -> &ReachStatus {
        &self.status
    }
}

/// A full reachability analysis over one (subject × space) pair.
#[derive(Debug, Clone)]
pub struct ReachAnalysis {
    subject: String,
    branch_count: usize,
    report: Report,
    branches: Vec<BranchReach>,
}

impl ReachAnalysis {
    /// The subject analyzed.
    #[must_use]
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The diagnostics produced (canonically sorted).
    #[must_use]
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Consumes the analysis, yielding its diagnostics.
    #[must_use]
    pub fn into_report(self) -> Report {
        self.report
    }

    /// Per-guard verdicts, in guard declaration order.
    #[must_use]
    pub fn branches(&self) -> &[BranchReach] {
        &self.branches
    }

    /// Branch indices proven statically dead (sorted, deduplicated).
    #[must_use]
    pub fn dead_branches(&self) -> Vec<u32> {
        let set: BTreeSet<u32> = self
            .branches
            .iter()
            .filter(|b| matches!(b.status, ReachStatus::Dead { .. }))
            .map(BranchReach::branch)
            .collect();
        set.into_iter().collect()
    }

    /// Upper bound on coverable branches: the branch space minus the
    /// proven-dead branches (unguarded and unknown branches count as
    /// reachable — the analyzer only subtracts what it proved).
    #[must_use]
    pub fn reachable_branch_count(&self) -> usize {
        self.branch_count - self.dead_branches().len()
    }

    /// Canonical one-line-per-guard text summary (byte-identical across
    /// runs; witnesses render with sorted keys via `ResolvedConfig`).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut rows: Vec<&BranchReach> = self.branches.iter().collect();
        rows.sort_by(|a, b| (a.branch, &a.region).cmp(&(b.branch, &b.region)));
        let mut out = String::new();
        for row in rows {
            let verdict = match &row.status {
                ReachStatus::Reachable { witness } => format!("reachable witness={witness}"),
                ReachStatus::Dead { chain } => format!("dead: {}", chain.join("; ")),
                ReachStatus::Unknown { reason } => format!("unknown: {reason}"),
            };
            out.push_str(&format!(
                "reach[{}] branch#{} {} [{}]: {}\n",
                self.subject, row.branch, row.region, row.kind, verdict
            ));
        }
        out.push_str(&format!(
            "{}: {} guarded, {} dead, {} of {} branches reachable\n",
            self.subject,
            self.branches.len(),
            self.dead_branches().len(),
            self.reachable_branch_count(),
            self.branch_count
        ));
        out
    }
}

/// Proves reachability for every guard of one subject over one space.
///
/// Emits `CM062`/`CM063` for malformed guards, `CM060` (partition) or
/// `CM061` (global) for proven-dead branches, and `CM064` when a solver
/// limit prevents certification. Certified-reachable branches produce no
/// diagnostic — their witnesses ride on the returned [`ReachAnalysis`].
#[must_use]
pub fn analyze_reachability(
    subject: &str,
    guards: &GuardTable,
    constraints: &ConstraintSet,
    model: &ConfigModel,
    branch_count: usize,
    space: &ReachSpace,
) -> ReachAnalysis {
    let mut report = Report::new();
    let mut branches = Vec::new();
    for guard in guards.iter() {
        let path = format!("branch:{}", guard.region());
        if guard.branch() as usize >= branch_count {
            report.push(Diagnostic::new(
                "CM063",
                Severity::Error,
                subject,
                &path,
                &format!(
                    "guard branch index {} is outside the branch space (0..{branch_count})",
                    guard.branch()
                ),
                "fix the branch index in the guard table",
            ));
            branches.push(row(
                guard,
                ReachStatus::Unknown {
                    reason: "branch index outside the branch space".to_owned(),
                },
            ));
            continue;
        }
        let unknown: Vec<&str> = guard
            .referenced_items()
            .into_iter()
            .filter(|item| !model_knows(model, item))
            .collect();
        if !unknown.is_empty() {
            for item in &unknown {
                report.push(Diagnostic::new(
                    "CM062",
                    Severity::Error,
                    subject,
                    &path,
                    &format!("guard references unknown config item \"{item}\""),
                    "declare the item in the target's config space or fix the guard key",
                ));
            }
            branches.push(row(
                guard,
                ReachStatus::Unknown {
                    reason: format!("guard references unknown items: {}", unknown.join(", ")),
                },
            ));
            continue;
        }
        let status = solve_guard(guard, constraints, model, space);
        match &status {
            ReachStatus::Dead { chain } => {
                let (code, severity, scope, hint) = match space {
                    ReachSpace::Partition { .. } => (
                        "CM060",
                        Severity::Warn,
                        "statically dead in this partition",
                        "widen the partition's value domains or drop the branch from its goals",
                    ),
                    ReachSpace::Global => (
                        "CM061",
                        Severity::Error,
                        "statically dead under every configuration",
                        "the guard contradicts the declared constraints; fix the guard table or the constraint set",
                    ),
                };
                report.push(Diagnostic::new(
                    code,
                    severity,
                    subject,
                    &path,
                    &format!("branch is {scope}: {}", chain.join("; ")),
                    hint,
                ));
            }
            ReachStatus::Unknown { reason } => {
                report.push(Diagnostic::new(
                    "CM064",
                    Severity::Warn,
                    subject,
                    &path,
                    &format!("reachability not certified: {reason}"),
                    "simplify the guard or raise the solver enumeration cap",
                ));
            }
            ReachStatus::Reachable { .. } => {}
        }
        branches.push(row(guard, status));
    }
    report.sort();
    ReachAnalysis {
        subject: subject.to_owned(),
        branch_count,
        report,
        branches,
    }
}

fn row(guard: &BranchGuard, status: ReachStatus) -> BranchReach {
    BranchReach {
        branch: guard.branch(),
        region: guard.region().to_owned(),
        kind: guard.kind(),
        status,
    }
}

/// Whether the model declares `item` — directly, or as the base of
/// flattened indexed-list entities (`item[0]`, …).
fn model_knows(model: &ConfigModel, item: &str) -> bool {
    if model.entity(item).is_some() {
        return true;
    }
    let prefix = format!("{item}[");
    model
        .entities()
        .iter()
        .any(|e| e.name().starts_with(&prefix))
}

/// The concrete config keys a condition evaluates (list predicates expand
/// to their indexed slots).
fn cond_eval_keys(cond: &Condition) -> Vec<String> {
    match cond.predicate() {
        Predicate::ListHasOrEmpty { .. } | Predicate::ListLacks { .. } => (0..LIST_SCAN)
            .map(|i| format!("{}[{i}]", cond.key()))
            .collect(),
        Predicate::IntAboveItem { other, .. } => vec![cond.key().to_owned(), other.clone()],
        _ => vec![cond.key().to_owned()],
    }
}

fn solve_guard(
    guard: &BranchGuard,
    constraints: &ConstraintSet,
    model: &ConfigModel,
    space: &ReachSpace,
) -> ReachStatus {
    // Key closure: the guard's evaluation keys, extended with every
    // constraint transitively sharing a key — exactly the keys whose
    // values can influence whether the guard holds on a bootable config.
    let mut closure: BTreeSet<String> =
        guard.conditions().iter().flat_map(cond_eval_keys).collect();
    let all = constraints.constraints();
    let mut linked: Vec<usize> = Vec::new();
    loop {
        let mut grew = false;
        for (i, constraint) in all.iter().enumerate() {
            if linked.contains(&i) {
                continue;
            }
            let keys: Vec<String> = constraint
                .conditions()
                .iter()
                .flat_map(cond_eval_keys)
                .collect();
            if keys.iter().any(|k| closure.contains(k)) {
                closure.extend(keys);
                linked.push(i);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    linked.sort_unstable();
    let mut linked_set = ConstraintSet::new();
    for &i in &linked {
        linked_set.push(all[i].clone());
    }
    let relevant_conds: Vec<&Condition> = guard
        .conditions()
        .iter()
        .chain(linked.iter().flat_map(|&i| all[i].conditions().iter()))
        .collect();

    let keys: Vec<String> = closure.iter().cloned().collect();
    let mut domains: BTreeMap<String, Domain> = keys
        .iter()
        .map(|k| (k.clone(), build_domain(k, space, model, &relevant_conds)))
        .collect();
    if matches!(space, ReachSpace::Global) {
        extend_cross_item(&mut domains, &relevant_conds);
    }

    let mut solver = Solver::new(domains.clone());
    solver.solve(guard.conditions(), &linked_set);

    let base = match space {
        ReachSpace::Partition { base, .. } => base.clone(),
        ReachSpace::Global => ResolvedConfig::new(),
    };

    if solver.is_unsat() {
        // Defensive cross-check: exhaustively confirm the refutation over
        // the *un-narrowed* domains when the space is small enough.
        if product_size(&keys, &domains) <= ENUM_CAP
            && enumerate(&keys, &domains, &base, guard.conditions(), &linked_set).is_some()
        {
            return ReachStatus::Unknown {
                reason: "propagation and enumeration disagree; claiming nothing".to_owned(),
            };
        }
        return ReachStatus::Dead {
            chain: solver.chain().to_vec(),
        };
    }

    let narrowed = solver.domains().clone();
    let size = product_size(&keys, &narrowed);
    if size > ENUM_CAP {
        return ReachStatus::Unknown {
            reason: format!(
                "candidate space of {size} configurations exceeds the {ENUM_CAP} enumeration cap"
            ),
        };
    }
    match enumerate(&keys, &narrowed, &base, guard.conditions(), &linked_set) {
        Some(witness) => {
            if constraints.violations(&witness).is_empty() {
                ReachStatus::Reachable { witness }
            } else {
                ReachStatus::Unknown {
                    reason: format!(
                        "witness {witness} is blocked by a startup constraint outside the guard's key closure"
                    ),
                }
            }
        }
        None => {
            let mut chain = solver.chain().to_vec();
            chain.push(format!(
                "exhausted {size} candidate configurations over [{}]; none satisfies the guard on a bootable config",
                keys.join(", ")
            ));
            ReachStatus::Dead { chain }
        }
    }
}

/// Builds the candidate domain for one evaluation key.
fn build_domain(
    key: &str,
    space: &ReachSpace,
    model: &ConfigModel,
    conds: &[&Condition],
) -> Domain {
    match space {
        ReachSpace::Partition { base, domains } => {
            if let Some(candidates) = domains.get(key) {
                let can_unbound = candidates.iter().any(Option::is_none);
                let values = candidates.iter().filter_map(Clone::clone).collect();
                Domain::new(can_unbound, values)
            } else if let Some(value) = base.get(key) {
                Domain::new(false, vec![value.clone()])
            } else {
                Domain::new(true, Vec::new())
            }
        }
        ReachSpace::Global => {
            let mut values: Vec<ConfigValue> = Vec::new();
            if let Some(entity) = model.entity(key) {
                values.extend(entity.values().iter().cloned());
            }
            for cond in conds {
                boundary_values(cond, key, &mut values);
            }
            dedup(&mut values);
            Domain::new(true, values)
        }
    }
}

/// Pushes the predicate's decision-boundary values for `key` (the values
/// at and adjacent to every interval endpoint, every mentioned string,
/// and an unlisted-string sentinel), making the finite candidate set
/// decisive for the predicate vocabulary.
fn boundary_values(cond: &Condition, key: &str, out: &mut Vec<ConfigValue>) {
    let applies = cond.key() == key;
    match cond.predicate() {
        Predicate::BoolIs { .. } if applies => {
            out.push(ConfigValue::Bool(true));
            out.push(ConfigValue::Bool(false));
        }
        Predicate::IntEquals { expected, .. } if applies => {
            push_ints(
                out,
                &[
                    expected.saturating_sub(1),
                    *expected,
                    expected.saturating_add(1),
                ],
            );
        }
        Predicate::IntBelow { limit, .. } if applies => {
            push_ints(out, &[limit.saturating_sub(1), *limit, i64::MIN]);
        }
        Predicate::IntWithin { min, max, .. } | Predicate::IntOutside { min, max, .. }
            if applies =>
        {
            push_ints(
                out,
                &[
                    min.saturating_sub(1),
                    *min,
                    *max,
                    max.saturating_add(1),
                    i64::MIN,
                    i64::MAX,
                ],
            );
        }
        Predicate::IntAboveItem {
            other,
            default,
            other_default,
        } => {
            if applies {
                push_ints(out, &[*default, other_default.saturating_add(1), i64::MAX]);
            }
            if other == key {
                push_ints(out, &[*other_default, default.saturating_sub(1), i64::MIN]);
            }
        }
        Predicate::StrIs { expected, default } if applies => {
            out.push(ConfigValue::Str(expected.clone()));
            out.push(ConfigValue::Str(default.clone()));
        }
        Predicate::StrIn { any_of, default } if applies => {
            out.extend(any_of.iter().cloned().map(ConfigValue::Str));
            out.push(ConfigValue::Str(default.clone()));
        }
        Predicate::StrNotIn { allowed, default } if applies => {
            out.extend(allowed.iter().cloned().map(ConfigValue::Str));
            out.push(ConfigValue::Str(default.clone()));
            let mut unlisted = "cmfuzz-unlisted".to_owned();
            while allowed.contains(&unlisted) || default == &unlisted {
                unlisted.push('+');
            }
            out.push(ConfigValue::Str(unlisted));
        }
        // List predicates evaluate the indexed slots of their base key.
        Predicate::ListHasOrEmpty { value } | Predicate::ListLacks { value }
            if key.starts_with(&format!("{}[", cond.key())) =>
        {
            out.push(ConfigValue::Str(value.clone()));
        }
        _ => {}
    }
}

fn push_ints(out: &mut Vec<ConfigValue>, values: &[i64]) {
    out.extend(values.iter().map(|v| ConfigValue::Int(*v)));
}

fn dedup(values: &mut Vec<ConfigValue>) {
    let mut seen: Vec<ConfigValue> = Vec::with_capacity(values.len());
    values.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(v.clone());
            true
        }
    });
}

/// One cross-extension pass for `IntAboveItem`: each side's candidates
/// gain the values just above/below the other side's, so a satisfiable
/// strict inequality always has a witnessing pair in the grid.
fn extend_cross_item(domains: &mut BTreeMap<String, Domain>, conds: &[&Condition]) {
    for cond in conds {
        let Predicate::IntAboveItem {
            other,
            default,
            other_default,
        } = cond.predicate()
        else {
            continue;
        };
        let other_ints: Vec<i64> = domains
            .get(other.as_str())
            .map(|d| d.values.iter().filter_map(ConfigValue::as_int).collect())
            .unwrap_or_default();
        let key_ints: Vec<i64> = domains
            .get(cond.key())
            .map(|d| d.values.iter().filter_map(ConfigValue::as_int).collect())
            .unwrap_or_default();
        if let Some(domain) = domains.get_mut(cond.key()) {
            let mut extended: Vec<i64> = other_ints.iter().map(|v| v.saturating_add(1)).collect();
            extended.push(other_default.saturating_add(1));
            push_ints(&mut domain.values, &extended);
            dedup(&mut domain.values);
        }
        if let Some(domain) = domains.get_mut(other.as_str()) {
            let mut extended: Vec<i64> = key_ints.iter().map(|v| v.saturating_sub(1)).collect();
            extended.push(default.saturating_sub(1));
            push_ints(&mut domain.values, &extended);
            dedup(&mut domain.values);
        }
    }
}

fn product_size(keys: &[String], domains: &BTreeMap<String, Domain>) -> u128 {
    keys.iter().fold(1u128, |acc, k| {
        let size = domains.get(k).map_or(1, Domain::size) as u128;
        acc.saturating_mul(size.max(1))
    })
}

/// Exhaustively walks the domain product in canonical (sorted-key,
/// declaration-value) order, returning the first configuration that
/// satisfies every guard condition and avoids every linked constraint.
fn enumerate(
    keys: &[String],
    domains: &BTreeMap<String, Domain>,
    base: &ResolvedConfig,
    guard_conds: &[Condition],
    linked: &ConstraintSet,
) -> Option<ResolvedConfig> {
    let candidates: Vec<Vec<Option<&ConfigValue>>> = keys
        .iter()
        .map(|k| {
            let domain = &domains[k];
            let mut list: Vec<Option<&ConfigValue>> = Vec::with_capacity(domain.size());
            if domain.can_unbound {
                list.push(None);
            }
            list.extend(domain.values.iter().map(Some));
            list
        })
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return None;
    }
    let mut odometer = vec![0usize; keys.len()];
    loop {
        let mut config = base.clone();
        for (pos, key) in keys.iter().enumerate() {
            match candidates[pos][odometer[pos]] {
                Some(value) => config.set(key, value.clone()),
                None => {
                    config.unset(key);
                }
            }
        }
        if guard_conds.iter().all(|c| c.matches(&config)) && linked.violations(&config).is_empty() {
            return Some(config);
        }
        // Advance the odometer, rightmost key fastest.
        let mut pos = keys.len();
        loop {
            if pos == 0 {
                return None;
            }
            pos -= 1;
            odometer[pos] += 1;
            if odometer[pos] < candidates[pos].len() {
                break;
            }
            odometer[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_config_model::{ConfigConstraint, ConfigEntity, GuardTable, Mutability, ValueType};

    fn model(entities: Vec<ConfigEntity>) -> ConfigModel {
        ConfigModel::from_entities(entities)
    }

    fn bool_entity(name: &str) -> ConfigEntity {
        ConfigEntity::new(
            name,
            ValueType::Boolean,
            Mutability::Mutable,
            vec![ConfigValue::Bool(false), ConfigValue::Bool(true)],
        )
    }

    fn int_entity(name: &str, values: &[i64]) -> ConfigEntity {
        ConfigEntity::new(
            name,
            ValueType::Number,
            Mutability::Mutable,
            values.iter().map(|v| ConfigValue::Int(*v)).collect(),
        )
    }

    fn partition(domains: &[(&str, Vec<Option<ConfigValue>>)]) -> ReachSpace {
        ReachSpace::Partition {
            base: ResolvedConfig::new(),
            domains: domains
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        }
    }

    fn opts(values: &[i64]) -> Vec<Option<ConfigValue>> {
        let mut out = vec![None];
        out.extend(values.iter().map(|v| Some(ConfigValue::Int(*v))));
        out
    }

    #[test]
    fn dead_branch_in_partition_gets_cm060_with_chain() {
        let guards = GuardTable::new().with(BranchGuard::new(
            2,
            "start::big-cache",
            GuardKind::Startup,
            vec![Condition::int_within("cache", 500, i64::MAX, 100)],
        ));
        // The partition can only reach cache ∈ {unbound(100), 0, 200}.
        let space = partition(&[("cache", opts(&[0, 200]))]);
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![int_entity("cache", &[100, 0, 200])]),
            8,
            &space,
        );
        assert_eq!(analysis.dead_branches(), vec![2]);
        assert_eq!(analysis.reachable_branch_count(), 7);
        let diag = &analysis.report().diagnostics()[0];
        assert_eq!(diag.code(), "CM060");
        assert_eq!(diag.severity(), Severity::Warn);
        assert!(
            diag.message().contains("unsatisfiable"),
            "{}",
            diag.message()
        );
    }

    #[test]
    fn reachable_branch_gets_certified_witness() {
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "start::tls",
            GuardKind::Startup,
            vec![Condition::bool_is("tls", true, false)],
        ));
        let space = partition(&[(
            "tls",
            vec![
                None,
                Some(ConfigValue::Bool(true)),
                Some(ConfigValue::Bool(false)),
            ],
        )]);
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![bool_entity("tls")]),
            4,
            &space,
        );
        assert!(analysis.report().is_empty(), "{:?}", analysis.report());
        let ReachStatus::Reachable { witness } = analysis.branches()[0].status() else {
            panic!("expected reachable, got {:?}", analysis.branches()[0]);
        };
        assert!(Condition::bool_is("tls", true, false).matches(witness));
    }

    #[test]
    fn constraint_interaction_kills_branch() {
        // Guard needs tls; the only auth value the partition offers
        // conflicts with tls at startup.
        let guards = GuardTable::new().with(BranchGuard::new(
            1,
            "handler::secure",
            GuardKind::Handler,
            vec![Condition::bool_is("tls", true, false)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "tls requires certificates",
            vec![
                Condition::bool_is("tls", true, false),
                Condition::bool_is("have-certs", false, false),
            ],
        ));
        let space = partition(&[
            ("tls", vec![None, Some(ConfigValue::Bool(true))]),
            // have-certs is pinned false in this partition.
        ]);
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &constraints,
            &model(vec![bool_entity("tls"), bool_entity("have-certs")]),
            4,
            &space,
        );
        assert_eq!(analysis.dead_branches(), vec![1]);
        let message = analysis.report().diagnostics()[0].message();
        assert!(message.contains("tls requires certificates"), "{message}");
    }

    #[test]
    fn global_mode_finds_witness_beyond_typical_values() {
        // Guard requires a value outside the entity's typical list; the
        // boundary closure must still find it.
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "start::huge",
            GuardKind::Startup,
            vec![Condition::int_within("queue", 900, 1000, 10)],
        ));
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![int_entity("queue", &[10, 0, 20])]),
            4,
            &ReachSpace::Global,
        );
        let ReachStatus::Reachable { witness } = analysis.branches()[0].status() else {
            panic!("expected reachable, got {:?}", analysis.branches()[0]);
        };
        let v = witness.int_or("queue", 10);
        assert!((900..=1000).contains(&v), "witness {witness}");
    }

    #[test]
    fn globally_contradictory_guard_is_cm061_error() {
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "start::ghost",
            GuardKind::Startup,
            vec![Condition::int_within("port", 70000, 80000, 1883)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "invalid listen port",
            vec![Condition::int_outside("port", 1, 65535, 1883)],
        ));
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &constraints,
            &model(vec![int_entity("port", &[1883])]),
            4,
            &ReachSpace::Global,
        );
        let diag = &analysis.report().diagnostics()[0];
        assert_eq!(diag.code(), "CM061");
        assert_eq!(diag.severity(), Severity::Error);
        assert_eq!(analysis.dead_branches(), vec![0]);
    }

    #[test]
    fn unknown_item_and_bad_index_are_cm062_cm063() {
        let guards = GuardTable::new()
            .with(BranchGuard::new(
                0,
                "start::typo",
                GuardKind::Startup,
                vec![Condition::bool_is("no-such-item", true, false)],
            ))
            .with(BranchGuard::new(
                99,
                "start::overflow",
                GuardKind::Startup,
                vec![],
            ));
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![bool_entity("tls")]),
            4,
            &ReachSpace::Global,
        );
        let codes: Vec<&str> = analysis
            .report()
            .diagnostics()
            .iter()
            .map(Diagnostic::code)
            .collect();
        assert_eq!(codes, vec!["CM062", "CM063"]);
        assert!(
            analysis.dead_branches().is_empty(),
            "malformed guards claim nothing"
        );
    }

    #[test]
    fn int_above_item_guard_resolves_via_cross_extension() {
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "handler::fragment",
            GuardKind::Handler,
            vec![Condition::int_above_item("frag", "mtu", 1300, 1400)],
        ));
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![
                int_entity("frag", &[1300]),
                int_entity("mtu", &[1400]),
            ]),
            4,
            &ReachSpace::Global,
        );
        let ReachStatus::Reachable { witness } = analysis.branches()[0].status() else {
            panic!("expected reachable, got {:?}", analysis.branches()[0]);
        };
        assert!(
            witness.int_or("frag", 1300) > witness.int_or("mtu", 1400),
            "witness {witness}"
        );
    }

    #[test]
    fn list_guard_is_decided_concretely() {
        let mech = ConfigEntity::new(
            "mech[0]",
            ValueType::String,
            Mutability::Mutable,
            vec![ConfigValue::Str("plain".to_owned())],
        );
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "start::external",
            GuardKind::Startup,
            vec![Condition::list_has_or_empty("mech", "external")],
        ));
        let analysis = analyze_reachability(
            "demo",
            &guards,
            &ConstraintSet::new(),
            &model(vec![mech]),
            4,
            &ReachSpace::Global,
        );
        let ReachStatus::Reachable { witness } = analysis.branches()[0].status() else {
            panic!("expected reachable, got {:?}", analysis.branches()[0]);
        };
        assert!(Condition::list_has_or_empty("mech", "external").matches(witness));
    }

    #[test]
    fn render_text_is_deterministic_and_sorted() {
        let guards = GuardTable::new().with(BranchGuard::new(
            0,
            "start::tls",
            GuardKind::Startup,
            vec![Condition::bool_is("tls", true, false)],
        ));
        let run = || {
            analyze_reachability(
                "demo",
                &guards,
                &ConstraintSet::new(),
                &model(vec![bool_entity("tls")]),
                4,
                &ReachSpace::Global,
            )
            .render_text()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(
            a.contains("reach[demo] branch#0 start::tls [startup]: reachable"),
            "{a}"
        );
        assert!(a.ends_with("4 branches reachable\n"), "{a}");
    }
}
