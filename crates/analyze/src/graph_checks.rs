//! Checks over the relation graph and scheduler partitions.
//!
//! `cmfuzz-analyze` deliberately does not depend on the core crate (core
//! depends on *it* for campaign preflight), so the relation graph and the
//! per-instance partitions arrive as narrow views the caller converts
//! into — just names, no weights or engine state.

use std::collections::BTreeMap;

use cmfuzz_config_model::ConfigModel;

use crate::{Diagnostic, Report, Severity};

/// A relation graph reduced to names: nodes are config item names, edges
/// connect related items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphView {
    /// Config item names carrying at least one relation.
    pub nodes: Vec<String>,
    /// Related pairs, in the graph's canonical order.
    pub edges: Vec<(String, String)>,
}

/// One scheduler partition reduced to names: which config items one
/// campaign instance is allowed to mutate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionView {
    /// The instance index the partition belongs to.
    pub index: usize,
    /// The config items assigned to the instance.
    pub entities: Vec<String>,
}

/// Checks the relation graph against the configuration model.
///
/// Emitted codes: `CM020` (a node or edge endpoint is not a mutable
/// config item of the model), `CM021` (an edge closes a cycle — legal
/// for a co-occurrence graph, but worth a look because cohesive grouping
/// only exploits tree-like structure).
#[must_use]
pub fn analyze_graph(subject: &str, view: &GraphView, model: &ConfigModel) -> Report {
    let mut report = Report::new();
    for node in &view.nodes {
        match model.entity(node) {
            None => report.push(Diagnostic::new(
                "CM020",
                Severity::Error,
                subject,
                &format!("node:{node}"),
                "relation node references an unknown config item",
                "rebuild the relation graph from the current config model",
            )),
            Some(entity) if !entity.is_mutable() => report.push(Diagnostic::new(
                "CM020",
                Severity::Error,
                subject,
                &format!("node:{node}"),
                "relation node references an immutable config item",
                "relation probing must only pair mutable items; re-extract the model",
            )),
            Some(_) => {}
        }
    }
    for (a, b) in &view.edges {
        for endpoint in [a, b] {
            if !view.nodes.iter().any(|n| n == endpoint) {
                report.push(Diagnostic::new(
                    "CM020",
                    Severity::Error,
                    subject,
                    &format!("edge:{a}-{b}"),
                    &format!("edge endpoint \"{endpoint}\" is not a node of the graph"),
                    "rebuild the relation graph from the current config model",
                ));
            }
        }
    }
    check_cycles(subject, view, &mut report);
    report
}

/// Checks scheduler partitions against the configuration model.
///
/// Emitted codes: `CM030` (a partition leaves its instance with zero
/// mutable items — its whole budget fuzzes a fixed configuration),
/// `CM031` (an item is assigned to more than one instance), `CM032`
/// (a partition references an unknown item).
#[must_use]
pub fn analyze_partitions(
    subject: &str,
    partitions: &[PartitionView],
    model: &ConfigModel,
) -> Report {
    let mut report = Report::new();
    let mut owner: BTreeMap<&str, usize> = BTreeMap::new();
    for partition in partitions {
        let mut mutable = 0usize;
        for name in &partition.entities {
            match model.entity(name) {
                None => report.push(Diagnostic::new(
                    "CM032",
                    Severity::Error,
                    subject,
                    &format!("instance:{}:item:{name}", partition.index),
                    "partition references an unknown config item",
                    "assign only items present in the extracted config model",
                )),
                Some(entity) => {
                    if entity.is_mutable() {
                        mutable += 1;
                    }
                    if let Some(previous) = owner.insert(name.as_str(), partition.index) {
                        report.push(Diagnostic::new(
                            "CM031",
                            Severity::Error,
                            subject,
                            &format!("item:{name}"),
                            &format!(
                                "config item is assigned to instances {previous} and {}",
                                partition.index
                            ),
                            "partitions must be disjoint; remove the item from one instance",
                        ));
                    }
                }
            }
        }
        if mutable == 0 {
            report.push(Diagnostic::new(
                "CM030",
                Severity::Warn,
                subject,
                &format!("instance:{}", partition.index),
                "partition leaves the instance with zero mutable config items",
                "assign at least one mutable item or reduce the instance count",
            ));
        }
    }
    report
}

fn check_cycles(subject: &str, view: &GraphView, report: &mut Report) {
    // Union-find over node indices; an edge joining two already-connected
    // nodes closes a cycle.
    let index_of: BTreeMap<&str, usize> = view
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut parent: Vec<usize> = (0..view.nodes.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, b) in &view.edges {
        let (Some(&ia), Some(&ib)) = (index_of.get(a.as_str()), index_of.get(b.as_str())) else {
            // Dangling endpoints already got CM020.
            continue;
        };
        let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
        if ra == rb {
            report.push(Diagnostic::new(
                "CM021",
                Severity::Lint,
                subject,
                &format!("edge:{a}-{b}"),
                "relation edge closes a cycle",
                "cohesive grouping treats cycles as one clique; verify the relation is intended",
            ));
        } else {
            parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_checks::single_entity_model;
    use cmfuzz_config_model::{ConfigEntity, ConfigValue, Mutability, ValueType};

    fn entity(name: &str, mutability: Mutability) -> ConfigEntity {
        ConfigEntity::new(
            name,
            ValueType::Number,
            mutability,
            vec![ConfigValue::Int(1), ConfigValue::Int(2)],
        )
    }

    fn model_of(names: &[&str]) -> ConfigModel {
        ConfigModel::from_entities(names.iter().map(|n| entity(n, Mutability::Mutable)))
    }

    fn view(nodes: &[&str], edges: &[(&str, &str)]) -> GraphView {
        GraphView {
            nodes: nodes.iter().map(|n| (*n).to_owned()).collect(),
            edges: edges
                .iter()
                .map(|(a, b)| ((*a).to_owned(), (*b).to_owned()))
                .collect(),
        }
    }

    #[test]
    fn clean_graph_produces_no_diagnostics() {
        let model = model_of(&["a", "b", "c"]);
        let graph = view(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        assert!(analyze_graph("t", &graph, &model).is_empty());
    }

    #[test]
    fn unknown_and_immutable_nodes_are_cm020() {
        let mut model = model_of(&["a"]);
        model.insert(entity("frozen", Mutability::Immutable));
        let graph = view(&["a", "ghost", "frozen"], &[]);
        let report = analyze_graph("t", &graph, &model);
        assert_eq!(report.len(), 2);
        assert!(report.diagnostics().iter().all(|d| d.code() == "CM020"));
    }

    #[test]
    fn dangling_edge_endpoint_is_cm020() {
        let model = model_of(&["a", "b"]);
        let graph = view(&["a", "b"], &[("a", "zz")]);
        let report = analyze_graph("t", &graph, &model);
        assert_eq!(report.len(), 1);
        assert_eq!(report.diagnostics()[0].path(), "edge:a-zz");
    }

    #[test]
    fn cycle_closing_edge_is_cm021_lint() {
        let model = model_of(&["a", "b", "c"]);
        let graph = view(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        let report = analyze_graph("t", &graph, &model);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), "CM021");
        assert_eq!(d.severity(), Severity::Lint);
        assert_eq!(d.path(), "edge:c-a");
    }

    #[test]
    fn empty_partition_is_cm030_warn() {
        let model = model_of(&["a"]);
        let partitions = vec![
            PartitionView {
                index: 0,
                entities: vec!["a".to_owned()],
            },
            PartitionView {
                index: 1,
                entities: vec![],
            },
        ];
        let report = analyze_partitions("t", &partitions, &model);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), "CM030");
        assert_eq!(d.path(), "instance:1");
    }

    #[test]
    fn immutable_only_partition_is_cm030() {
        let mut model = model_of(&["a"]);
        model.insert(entity("frozen", Mutability::Immutable));
        let partitions = vec![PartitionView {
            index: 0,
            entities: vec!["frozen".to_owned()],
        }];
        let report = analyze_partitions("t", &partitions, &model);
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM030"));
    }

    #[test]
    fn overlapping_partitions_are_cm031() {
        let model = model_of(&["a", "b"]);
        let partitions = vec![
            PartitionView {
                index: 0,
                entities: vec!["a".to_owned(), "b".to_owned()],
            },
            PartitionView {
                index: 1,
                entities: vec!["b".to_owned()],
            },
        ];
        let report = analyze_partitions("t", &partitions, &model);
        let hits: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code() == "CM031")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path(), "item:b");
        assert!(hits[0].message().contains("instances 0 and 1"));
    }

    #[test]
    fn unknown_partition_item_is_cm032() {
        let model = model_of(&["a"]);
        let partitions = vec![PartitionView {
            index: 0,
            entities: vec!["a".to_owned(), "ghost".to_owned()],
        }];
        let report = analyze_partitions("t", &partitions, &model);
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM032"));
        // `a` is still mutable, so no CM030.
        assert!(!report.diagnostics().iter().any(|d| d.code() == "CM030"));
    }

    #[test]
    fn single_entity_model_helper_builds_one_entity() {
        let model = single_entity_model(entity("x", Mutability::Mutable));
        assert_eq!(model.len(), 1);
    }
}
