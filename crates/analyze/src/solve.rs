//! Finite-domain constraint propagation over configuration spaces.
//!
//! The reachability analyzer (`reach.rs`) asks one question per branch
//! guard: *is there a bootable configuration, inside a given finite
//! configuration space, under which every guard condition holds?* This
//! module supplies the propagation half of the answer: enumerated-set
//! domains per config item, arc-consistency over the one cross-item
//! predicate ([`Predicate::IntAboveItem`]), and unit propagation over the
//! target's negated startup [`ConstraintSet`] (a bootable config must
//! *avoid* every declared conflict).
//!
//! Design notes, in soundness order:
//!
//! * Domains are **enumerated candidate sets** (`{unbound, v1, v2, …}`).
//!   Every filtering step evaluates the real [`Condition::matches`] against
//!   a probe [`ResolvedConfig`], so the solver inherits the exact lenient
//!   coercions the servers use — there is no second, subtly different,
//!   predicate semantics to drift.
//! * Propagation only ever *removes* candidates that support no solution,
//!   so an emptied domain is a proof of unsatisfiability within the space,
//!   and the recorded [`Solver::chain`] is a human-checkable replay of the
//!   refutation.
//! * List predicates (`ListHasOrEmpty`/`ListLacks`) span indexed slots and
//!   are never propagated (always [`Status::Unknown`]) — the enumeration
//!   pass in `reach.rs` decides them concretely, keeping every claim here
//!   conservative.
//!
//! Propagation is deliberately incomplete (arc consistency does not decide
//! conjunctions across keys); `reach.rs` pairs it with exhaustive
//! enumeration of the propagated domains, which *is* complete for the
//! finite space.

use std::collections::BTreeMap;

use cmfuzz_config_model::{Condition, ConfigValue, ConstraintSet, Predicate, ResolvedConfig};

/// Highest indexed-list slot the solver expands for list predicates,
/// mirroring the (private) scan bound of `cmfuzz_config_model`'s list
/// predicates; kept in lockstep by `list_scan_matches_config_model`.
pub(crate) const LIST_SCAN: usize = 8;

/// Tri-valued truth of a condition over a domain product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Every configuration in the space satisfies the condition.
    True,
    /// No configuration in the space satisfies the condition.
    False,
    /// Some do, some don't (or the predicate is not propagatable).
    Unknown,
}

/// The candidate set for one configuration item: an optional *unbound*
/// marker (the item is absent, predicates see their defaults) plus an
/// ordered list of concrete values.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Domain {
    /// Whether the item may be left unset.
    pub can_unbound: bool,
    /// Concrete candidate values, in declaration order.
    pub values: Vec<ConfigValue>,
}

impl Domain {
    /// A domain holding exactly the given candidates.
    pub(crate) fn new(can_unbound: bool, values: Vec<ConfigValue>) -> Self {
        Domain {
            can_unbound,
            values,
        }
    }

    /// Number of candidates including the unbound marker.
    pub(crate) fn size(&self) -> usize {
        self.values.len() + usize::from(self.can_unbound)
    }

    /// Whether no candidate survives (the refutation terminal).
    pub(crate) fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Canonical rendering for propagation chains: `{unbound, 1, 2}`.
    pub(crate) fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.size());
        if self.can_unbound {
            parts.push("unbound".to_owned());
        }
        parts.extend(self.values.iter().map(ConfigValue::render));
        format!("{{{}}}", parts.join(", "))
    }

    /// Iterates candidates as `Option<&ConfigValue>` (None = unbound).
    fn candidates(&self) -> impl Iterator<Item = Option<&ConfigValue>> {
        self.can_unbound
            .then_some(None)
            .into_iter()
            .chain(self.values.iter().map(Some))
    }
}

/// Evaluates a single-key condition against one candidate value, using the
/// owning crate's real coercion semantics.
fn eval_single(cond: &Condition, value: Option<&ConfigValue>) -> bool {
    let mut probe = ResolvedConfig::new();
    if let Some(v) = value {
        probe.set(cond.key(), v.clone());
    }
    cond.matches(&probe)
}

/// The integer a candidate coerces to under `int_or(key, default)`.
fn int_view(key: &str, value: Option<&ConfigValue>, default: i64) -> i64 {
    let mut probe = ResolvedConfig::new();
    if let Some(v) = value {
        probe.set(key, v.clone());
    }
    probe.int_or(key, default)
}

/// `(min, max)` of a domain's integer views; `None` for an empty domain.
fn int_bounds(domain: &Domain, key: &str, default: i64) -> Option<(i64, i64)> {
    domain
        .candidates()
        .map(|v| int_view(key, v, default))
        .fold(None, |acc, v| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
}

/// Arc-consistency solver over a finite configuration space.
///
/// Keys absent from the domain map are treated as permanently unbound
/// (single-candidate domains); the caller is responsible for seeding a
/// domain for every key it wants reasoned about.
#[derive(Debug, Clone)]
pub(crate) struct Solver {
    domains: BTreeMap<String, Domain>,
    chain: Vec<String>,
    unsat: bool,
}

impl Solver {
    /// Builds a solver over the given per-item domains.
    pub(crate) fn new(domains: BTreeMap<String, Domain>) -> Self {
        Solver {
            domains,
            chain: Vec::new(),
            unsat: false,
        }
    }

    /// The propagation chain recorded so far (deterministic replay).
    pub(crate) fn chain(&self) -> &[String] {
        &self.chain
    }

    /// Whether propagation proved the space unsatisfiable.
    pub(crate) fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// The current (possibly narrowed) domains.
    pub(crate) fn domains(&self) -> &BTreeMap<String, Domain> {
        &self.domains
    }

    fn domain_or_unbound(&self, key: &str) -> Domain {
        self.domains
            .get(key)
            .cloned()
            .unwrap_or_else(|| Domain::new(true, Vec::new()))
    }

    fn record_shrink(&mut self, prefix: &str, cond: &Condition, key: &str) {
        let domain = self.domain_or_unbound(key);
        self.chain.push(format!(
            "{prefix} {cond}; domain({key}) = {}",
            domain.render()
        ));
        if domain.is_empty() {
            self.chain
                .push(format!("domain({key}) is empty -> unsatisfiable"));
            self.unsat = true;
        }
    }

    /// Restricts domains so the condition *can* hold; returns whether any
    /// domain shrank. `prefix` tags the chain entry (`"require"` for guard
    /// conditions).
    fn narrow(&mut self, cond: &Condition, keep_matching: bool, prefix: &str) -> bool {
        if self.unsat {
            return false;
        }
        match cond.predicate() {
            // List predicates span indexed slots; enumeration decides them.
            Predicate::ListHasOrEmpty { .. } | Predicate::ListLacks { .. } => false,
            Predicate::IntAboveItem {
                other,
                default,
                other_default,
            } => {
                if !keep_matching {
                    // Refuting `key > other` (i.e. requiring `key <= other`)
                    // is the mirror pruning; both directions share the
                    // bounds logic below.
                }
                let key = cond.key().to_owned();
                let other = other.clone();
                let mut changed = false;
                // Prune the left side against the right side's bounds, then
                // the right side against the (possibly narrowed) left.
                for _ in 0..2 {
                    let other_bounds =
                        int_bounds(&self.domain_or_unbound(&other), &other, *other_default);
                    let key_domain = self.domain_or_unbound(&key);
                    let narrowed =
                        filter_by_int(&key_domain, &key, *default, |v| match other_bounds {
                            // `key > other` needs a partner below it; `key <= other`
                            // needs a partner at or above it.
                            Some((lo, hi)) => {
                                if keep_matching {
                                    v > lo
                                } else {
                                    v <= hi
                                }
                            }
                            None => false,
                        });
                    if narrowed.size() < key_domain.size() {
                        self.domains.insert(key.clone(), narrowed);
                        self.record_shrink(prefix, cond, &key);
                        changed = true;
                        if self.unsat {
                            return changed;
                        }
                    }
                    let key_bounds = int_bounds(&self.domain_or_unbound(&key), &key, *default);
                    let other_domain = self.domain_or_unbound(&other);
                    let narrowed =
                        filter_by_int(
                            &other_domain,
                            &other,
                            *other_default,
                            |v| match key_bounds {
                                Some((lo, hi)) => {
                                    if keep_matching {
                                        v < hi
                                    } else {
                                        v >= lo
                                    }
                                }
                                None => false,
                            },
                        );
                    if narrowed.size() < other_domain.size() {
                        self.domains.insert(other.clone(), narrowed);
                        self.record_shrink(prefix, cond, &other);
                        changed = true;
                        if self.unsat {
                            return changed;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                changed
            }
            _ => {
                let key = cond.key().to_owned();
                let domain = self.domain_or_unbound(&key);
                let can_unbound = domain.can_unbound && eval_single(cond, None) == keep_matching;
                let values: Vec<ConfigValue> = domain
                    .values
                    .iter()
                    .filter(|v| eval_single(cond, Some(v)) == keep_matching)
                    .cloned()
                    .collect();
                let narrowed = Domain::new(can_unbound, values);
                if narrowed.size() < domain.size() {
                    self.domains.insert(key.clone(), narrowed);
                    self.record_shrink(prefix, cond, &key);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Asserts a guard condition: the space keeps only configurations that
    /// may satisfy it.
    pub(crate) fn require(&mut self, cond: &Condition) -> bool {
        self.narrow(cond, true, "require")
    }

    /// The condition's truth over the current domain product.
    pub(crate) fn status(&self, cond: &Condition) -> Status {
        match cond.predicate() {
            Predicate::ListHasOrEmpty { .. } | Predicate::ListLacks { .. } => Status::Unknown,
            Predicate::IntAboveItem {
                other,
                default,
                other_default,
            } => {
                let key_bounds =
                    int_bounds(&self.domain_or_unbound(cond.key()), cond.key(), *default);
                let other_bounds =
                    int_bounds(&self.domain_or_unbound(other), other, *other_default);
                match (key_bounds, other_bounds) {
                    (Some((klo, khi)), Some((olo, ohi))) => {
                        if klo > ohi {
                            Status::True
                        } else if khi <= olo {
                            Status::False
                        } else {
                            Status::Unknown
                        }
                    }
                    _ => Status::False,
                }
            }
            _ => {
                let domain = self.domain_or_unbound(cond.key());
                let mut any_true = false;
                let mut any_false = false;
                for candidate in domain.candidates() {
                    if eval_single(cond, candidate) {
                        any_true = true;
                    } else {
                        any_false = true;
                    }
                    if any_true && any_false {
                        return Status::Unknown;
                    }
                }
                match (any_true, any_false) {
                    (true, false) => Status::True,
                    (false, true) => Status::False,
                    // An empty domain satisfies nothing.
                    _ => Status::False,
                }
            }
        }
    }

    /// Runs guard-condition assertion and negated-constraint unit
    /// propagation to fixpoint.
    ///
    /// A bootable configuration must avoid *every* startup constraint, so a
    /// constraint whose conditions are all forced [`Status::True`] proves
    /// the space unsatisfiable, and one with a single undecided condition
    /// forces that condition false.
    pub(crate) fn solve(&mut self, guard: &[Condition], constraints: &ConstraintSet) {
        for cond in guard {
            self.require(cond);
            if self.unsat {
                return;
            }
        }
        loop {
            let mut changed = false;
            // Re-assert guard conditions: IntAboveItem pruning can bite
            // again after another key's domain narrowed.
            for cond in guard {
                changed |= self.require(cond);
                if self.unsat {
                    return;
                }
            }
            for constraint in constraints.constraints() {
                let statuses: Vec<Status> = constraint
                    .conditions()
                    .iter()
                    .map(|c| self.status(c))
                    .collect();
                if statuses.contains(&Status::False) {
                    continue; // The conflict is already avoided.
                }
                if statuses.iter().all(|s| *s == Status::True) {
                    self.chain.push(format!(
                        "every remaining configuration violates constraint \"{}\" -> unsatisfiable",
                        constraint.reason()
                    ));
                    self.unsat = true;
                    return;
                }
                let undecided: Vec<usize> = statuses
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == Status::Unknown)
                    .map(|(i, _)| i)
                    .collect();
                if let [only] = undecided.as_slice() {
                    let cond = &constraint.conditions()[*only];
                    let prefix = format!("constraint \"{}\" forbids", constraint.reason());
                    changed |= self.narrow(cond, false, &prefix);
                    if self.unsat {
                        return;
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Keeps the candidates whose integer view passes `keep`.
fn filter_by_int(domain: &Domain, key: &str, default: i64, keep: impl Fn(i64) -> bool) -> Domain {
    let can_unbound = domain.can_unbound && keep(int_view(key, None, default));
    let values = domain
        .values
        .iter()
        .filter(|v| keep(int_view(key, Some(v), default)))
        .cloned()
        .collect();
    Domain::new(can_unbound, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_config_model::ConfigConstraint;

    fn ints(vals: &[i64]) -> Vec<ConfigValue> {
        vals.iter().map(|v| ConfigValue::Int(*v)).collect()
    }

    fn str_val(v: &str) -> ConfigValue {
        ConfigValue::Str(v.to_owned())
    }

    fn space(entries: &[(&str, bool, Vec<ConfigValue>)]) -> BTreeMap<String, Domain> {
        entries
            .iter()
            .map(|(k, unbound, vals)| ((*k).to_owned(), Domain::new(*unbound, vals.clone())))
            .collect()
    }

    #[test]
    fn require_filters_candidates_and_unbound() {
        let mut solver = Solver::new(space(&[("n", true, ints(&[0, 5, 10]))]));
        solver.require(&Condition::int_within("n", 4, 10, 0));
        let d = &solver.domains()["n"];
        assert!(!d.can_unbound, "default 0 fails [4, 10]");
        assert_eq!(d.values, ints(&[5, 10]));
        assert!(!solver.is_unsat());
        assert_eq!(solver.chain().len(), 1);
        assert!(
            solver.chain()[0].contains("require"),
            "{:?}",
            solver.chain()
        );
    }

    #[test]
    fn emptied_domain_is_unsat_with_chain() {
        let mut solver = Solver::new(space(&[("mode", false, vec![str_val("a")])]));
        solver.require(&Condition::str_is("mode", "b", "a"));
        assert!(solver.is_unsat());
        assert!(solver
            .chain()
            .last()
            .expect("terminal step")
            .contains("unsatisfiable"));
    }

    #[test]
    fn status_is_tri_valued() {
        let solver = Solver::new(space(&[("n", false, ints(&[3, 4]))]));
        assert_eq!(
            solver.status(&Condition::int_below("n", 10, 0)),
            Status::True
        );
        assert_eq!(
            solver.status(&Condition::int_below("n", 3, 0)),
            Status::False
        );
        assert_eq!(
            solver.status(&Condition::int_below("n", 4, 0)),
            Status::Unknown
        );
        assert_eq!(
            solver.status(&Condition::list_lacks("n", "x")),
            Status::Unknown,
            "list predicates are never propagated"
        );
    }

    #[test]
    fn constraint_unit_propagation_forces_the_last_condition_false() {
        // Constraint: tls && auth=external conflicts. Guard forces tls on,
        // so auth=external must be refuted out of the domain.
        let domains = space(&[
            ("tls", false, vec![ConfigValue::Bool(true)]),
            ("auth", true, vec![str_val("external"), str_val("plain")]),
        ]);
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "tls conflicts with external auth",
            vec![
                Condition::bool_is("tls", true, false),
                Condition::str_is("auth", "external", "none"),
            ],
        ));
        let mut solver = Solver::new(domains);
        solver.solve(&[Condition::bool_is("tls", true, false)], &constraints);
        assert!(!solver.is_unsat());
        let auth = &solver.domains()["auth"];
        assert_eq!(auth.values, vec![str_val("plain")]);
        assert!(auth.can_unbound, "default \"none\" avoids the conflict");
        assert!(
            solver.chain().iter().any(|step| step.contains("forbids")),
            "{:?}",
            solver.chain()
        );
    }

    #[test]
    fn fully_forced_constraint_is_unsat() {
        let domains = space(&[("tls", false, vec![ConfigValue::Bool(true)])]);
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "tls unsupported",
            vec![Condition::bool_is("tls", true, false)],
        ));
        let mut solver = Solver::new(domains);
        solver.solve(&[Condition::bool_is("tls", true, false)], &constraints);
        assert!(solver.is_unsat());
        assert!(solver
            .chain()
            .last()
            .expect("terminal")
            .contains("tls unsupported"));
    }

    #[test]
    fn int_above_item_prunes_both_sides() {
        let domains = space(&[
            ("frag", true, ints(&[100, 200, 300])),
            ("max", false, ints(&[150, 250])),
        ]);
        let mut solver = Solver::new(domains);
        // frag (default 100) must exceed max.
        solver.solve(
            &[Condition::int_above_item("frag", "max", 100, 0)],
            &ConstraintSet::new(),
        );
        assert!(!solver.is_unsat());
        let frag = &solver.domains()["frag"];
        // 100 (bound and unbound) cannot exceed min(max)=150.
        assert!(!frag.can_unbound);
        assert_eq!(frag.values, ints(&[200, 300]));
        // Both 150 and 250 stay: 300 > 250.
        assert_eq!(solver.domains()["max"].values, ints(&[150, 250]));
    }

    #[test]
    fn unknown_key_defaults_to_unbound_only_domain() {
        let solver = Solver::new(BTreeMap::new());
        // Unbound "n" sees default 7: below 10 holds everywhere.
        assert_eq!(
            solver.status(&Condition::int_below("n", 10, 7)),
            Status::True
        );
        assert_eq!(
            solver.status(&Condition::int_below("n", 5, 7)),
            Status::False
        );
    }

    #[test]
    fn domain_render_is_canonical() {
        let d = Domain::new(true, ints(&[1, 2]));
        assert_eq!(d.render(), "{unbound, 1, 2}");
        assert_eq!(Domain::new(false, Vec::new()).render(), "{}");
    }

    /// Lockstep with the private `LIST_SCAN` in `cmfuzz_config_model`: a
    /// list member bound at the last scanned slot must still be seen.
    #[test]
    fn list_scan_matches_config_model() {
        let cond = Condition::list_lacks("m", "x");
        let mut cfg = ResolvedConfig::new();
        cfg.set(&format!("m[{}]", LIST_SCAN - 1), str_val("x"));
        assert!(!cond.matches(&cfg), "slot {} is scanned", LIST_SCAN - 1);
        let mut cfg = ResolvedConfig::new();
        cfg.set(&format!("m[{LIST_SCAN}]"), str_val("x"));
        assert!(cond.matches(&cfg), "slot {LIST_SCAN} is beyond the scan");
    }
}
