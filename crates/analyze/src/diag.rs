//! Structured diagnostics: stable codes, severities, locations, hints.

use std::fmt;

/// Version discriminator opening every JSON diagnostics document, so
/// downstream consumers can dispatch on shape before parsing findings.
pub const DIAGNOSTICS_SCHEMA: &str = "cmfuzz.diagnostics.v1";

/// How bad a finding is; the ordering drives exit codes and campaign
/// preflight (`Error` aborts, the rest report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or likely-benign: the campaign runs, the model could be
    /// tighter.
    Lint,
    /// Suspicious: almost certainly wastes budget (dead model, empty
    /// partition) but cannot crash the campaign.
    Warn,
    /// Broken: the campaign would panic, refuse to boot, or burn an
    /// instance's whole budget. Preflight rejects these.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered output (`lint`/`warn`/`error`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Lint => "lint",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Process exit code for `cmfuzz-lint`: clean runs exit 0, the worst
    /// diagnostic otherwise decides (1 lint, 2 warn, 3 error).
    #[must_use]
    pub fn exit_code(self) -> i32 {
        match self {
            Severity::Lint => 1,
            Severity::Warn => 2,
            Severity::Error => 3,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: a stable `CM0xx` code, a severity, where it is (model
/// name plus item path), what is wrong, and how to fix it.
///
/// # Examples
///
/// ```
/// use cmfuzz_analyze::{Diagnostic, Severity};
///
/// let d = Diagnostic::new(
///     "CM003",
///     Severity::Warn,
///     "mosquitto",
///     "state:Orphan",
///     "state is unreachable from the initial state",
///     "add a transition into it or remove the state",
/// );
/// assert_eq!(
///     d.to_string(),
///     "warn[CM003] mosquitto/state:Orphan: state is unreachable from the initial state \
///      (fix: add a transition into it or remove the state)"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    code: &'static str,
    severity: Severity,
    model: String,
    path: String,
    message: String,
    hint: String,
}

impl Diagnostic {
    /// Builds a diagnostic. `model` locates the owning model (usually the
    /// subject name); `path` locates the item within it (e.g.
    /// `state:Init`, `item:port`, `instance:2`).
    #[must_use]
    pub fn new(
        code: &'static str,
        severity: Severity,
        model: &str,
        path: &str,
        message: &str,
        hint: &str,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            model: model.to_owned(),
            path: path.to_owned(),
            message: message.to_owned(),
            hint: hint.to_owned(),
        }
    }

    /// The stable `CM0xx` code.
    #[must_use]
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The owning model (subject) name.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The item path within the model.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The one-line description of the defect.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The one-line fix hint.
    #[must_use]
    pub fn hint(&self) -> &str {
        &self.hint
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}/{}: {} (fix: {})",
            self.severity.label(),
            self.code,
            self.model,
            self.path,
            self.message,
            self.hint
        )
    }
}

/// An ordered collection of diagnostics from one analysis run.
///
/// Ordering is canonical — `push` keeps insertion order, [`Report::sort`]
/// reorders by (model, code, path, message) — so rendered output is
/// byte-identical across runs over the same models.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every diagnostic of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Canonical order: model, then code, then path, then message.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.model(), a.code(), a.path(), a.message()).cmp(&(
                b.model(),
                b.code(),
                b.path(),
                b.message(),
            ))
        });
    }

    /// The findings in their current order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding its findings.
    #[must_use]
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is clean.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, if any.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(Diagnostic::severity).max()
    }

    /// Whether any finding is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Findings of exactly `severity`.
    #[must_use]
    pub fn count_of(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// Renders the report as human-readable text: one line per finding
    /// plus a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} lint(s)\n",
            self.count_of(Severity::Error),
            self.count_of(Severity::Warn),
            self.count_of(Severity::Lint)
        ));
        out
    }

    /// Renders the report as a versioned JSON document (machine
    /// consumption; `cmfuzz-lint --format json`): a top-level object
    /// opening with a `"schema"` discriminator — the diagnostics analogue
    /// of the telemetry v1 envelope — followed by the findings array.
    #[must_use]
    pub fn render_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let rendered: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"code\":\"{}\",\"severity\":\"{}\",\"model\":\"{}\",\"path\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
                    escape(d.code()),
                    d.severity().label(),
                    escape(d.model()),
                    escape(d.path()),
                    escape(d.message()),
                    escape(d.hint())
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"findings\":[{}]}}",
            DIAGNOSTICS_SCHEMA,
            rendered.join(",")
        )
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, severity: Severity, model: &str, path: &str) -> Diagnostic {
        Diagnostic::new(code, severity, model, path, "msg", "hint")
    }

    #[test]
    fn severity_orders_lint_warn_error() {
        assert!(Severity::Lint < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.exit_code(), 3);
        assert_eq!(Severity::Lint.label(), "lint");
    }

    #[test]
    fn max_severity_and_counts() {
        let mut report = Report::new();
        assert_eq!(report.max_severity(), None);
        assert!(!report.has_errors());
        report.push(diag("CM003", Severity::Warn, "m", "a"));
        report.push(diag("CM001", Severity::Error, "m", "b"));
        report.push(diag("CM005", Severity::Lint, "m", "c"));
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert!(report.has_errors());
        assert_eq!(report.count_of(Severity::Warn), 1);
        assert_eq!(report.len(), 3);
    }

    #[test]
    fn sort_is_canonical() {
        let mut report = Report::new();
        report.push(diag("CM003", Severity::Warn, "b", "z"));
        report.push(diag("CM001", Severity::Error, "b", "a"));
        report.push(diag("CM001", Severity::Error, "a", "q"));
        report.sort();
        let order: Vec<(&str, &str, &str)> = report
            .diagnostics()
            .iter()
            .map(|d| (d.model(), d.code(), d.path()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a", "CM001", "q"),
                ("b", "CM001", "a"),
                ("b", "CM003", "z")
            ]
        );
    }

    #[test]
    fn text_rendering_has_one_line_per_finding_plus_summary() {
        let mut report = Report::new();
        report.push(diag("CM010", Severity::Error, "qpid", "item:x"));
        let text = report.render_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("error[CM010] qpid/item:x"));
        assert!(text.contains("1 error(s), 0 warning(s), 0 lint(s)"));
    }

    #[test]
    fn json_rendering_escapes_and_lists() {
        let mut report = Report::new();
        report.push(Diagnostic::new(
            "CM001",
            Severity::Error,
            "m\"x",
            "p",
            "line\nbreak",
            "h",
        ));
        let json = report.render_json();
        assert!(
            json.starts_with("{\"schema\":\"cmfuzz.diagnostics.v1\",\"findings\":["),
            "{json}"
        );
        assert!(json.contains("\"model\":\"m\\\"x\""));
        assert!(json.contains("line\\nbreak"));
        assert_eq!(
            Report::new().render_json(),
            "{\"schema\":\"cmfuzz.diagnostics.v1\",\"findings\":[]}"
        );
    }

    #[test]
    fn merge_and_from_iterator() {
        let mut a: Report = vec![diag("CM001", Severity::Error, "m", "p")]
            .into_iter()
            .collect();
        let b: Report = vec![diag("CM003", Severity::Warn, "m", "q")]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.into_diagnostics().len(), 2);
    }
}
