//! Checks over the configuration model and declared startup constraints.

use cmfuzz_config_model::{ConfigEntity, ConfigModel, ConstraintSet, ResolvedConfig};

use crate::{Diagnostic, Report, Severity};

/// Runs every configuration-model check for one subject.
///
/// Emitted codes: `CM010` (empty value domain), `CM011` (default value
/// type mismatch), `CM012` (the model's own defaults violate a declared
/// startup constraint), `CM013` (a value domain is statically
/// unsatisfiable under a single-item constraint: every choice conflicts).
#[must_use]
pub fn analyze_config(subject: &str, model: &ConfigModel, constraints: &ConstraintSet) -> Report {
    let mut report = Report::new();
    check_domains(subject, model, &mut report);
    check_defaults(subject, model, constraints, &mut report);
    check_satisfiability(subject, model, constraints, &mut report);
    report
}

/// Checks one concrete configuration (an instance's initial bindings)
/// against the declared constraints (`CM014`). This is the preflight
/// mirror of the boot-time `StartError::ConfigConflict`.
#[must_use]
pub fn analyze_resolved(
    subject: &str,
    location: &str,
    config: &ResolvedConfig,
    constraints: &ConstraintSet,
) -> Report {
    let mut report = Report::new();
    for constraint in constraints.violations(config) {
        report.push(Diagnostic::new(
            "CM014",
            Severity::Error,
            subject,
            location,
            &format!("configuration violates startup constraint: {constraint}"),
            "change the conflicting values or drop one of the conflicting bindings",
        ));
    }
    report
}

fn check_domains(subject: &str, model: &ConfigModel, report: &mut Report) {
    for entity in model.entities() {
        if entity.values().is_empty() {
            report.push(Diagnostic::new(
                "CM010",
                Severity::Error,
                subject,
                &format!("item:{}", entity.name()),
                "config item has an empty value domain; scheduling it would panic",
                "give the item at least its default value",
            ));
            continue;
        }
        let default_type = entity.default_value().value_type();
        if default_type != entity.value_type() {
            report.push(Diagnostic::new(
                "CM011",
                Severity::Warn,
                subject,
                &format!("item:{}", entity.name()),
                &format!(
                    "default value is {default_type:?} but the item is typed {:?}",
                    entity.value_type()
                ),
                "align the declared type with the default value's type",
            ));
        }
    }
}

fn check_defaults(
    subject: &str,
    model: &ConfigModel,
    constraints: &ConstraintSet,
    report: &mut Report,
) {
    // An entity with an empty domain already got CM010; defaults_of would
    // panic on it, so bind defaults only for populated entities.
    let mut defaults = ResolvedConfig::new();
    for entity in model.entities() {
        if let Some(value) = entity.values().first() {
            defaults.set(entity.name(), value.clone());
        }
    }
    for constraint in constraints.violations(&defaults) {
        report.push(Diagnostic::new(
            "CM012",
            Severity::Error,
            subject,
            &format!("constraint:{}", constraint.reason()),
            &format!("the model's default values violate a startup constraint: {constraint}"),
            "change the defaults of the referenced items so the stock configuration boots",
        ));
    }
}

fn check_satisfiability(
    subject: &str,
    model: &ConfigModel,
    constraints: &ConstraintSet,
    report: &mut Report,
) {
    for constraint in constraints.constraints() {
        // Only single-condition, single-item constraints can be decided
        // item-locally; conjunctions and cross-item relations depend on
        // the values chosen for the other items.
        let [condition] = constraint.conditions() else {
            continue;
        };
        if condition.referenced_items().len() != 1 {
            continue;
        }
        let Some(entity) = model.entity(condition.key()) else {
            continue;
        };
        if entity.values().is_empty() {
            continue;
        }
        let all_conflict = entity.values().iter().all(|value| {
            let mut config = ResolvedConfig::new();
            config.set(condition.key(), value.clone());
            condition.matches(&config)
        });
        if all_conflict {
            report.push(Diagnostic::new(
                "CM013",
                Severity::Error,
                subject,
                &format!("item:{}", entity.name()),
                &format!(
                    "every value in the domain violates startup constraint \"{}\"",
                    constraint.reason()
                ),
                "add at least one value satisfying the constraint to the domain",
            ));
        }
    }
}

/// Convenience used by fixtures and docs: a one-entity model.
#[must_use]
pub fn single_entity_model(entity: ConfigEntity) -> ConfigModel {
    ConfigModel::from_entities([entity])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_config_model::{
        Condition, ConfigConstraint, ConfigEntity, ConfigValue, Mutability, ValueType,
    };

    fn entity(name: &str, values: Vec<ConfigValue>) -> ConfigEntity {
        ConfigEntity::new(name, ValueType::Number, Mutability::Mutable, values)
    }

    #[test]
    fn empty_domain_is_cm010() {
        let model = single_entity_model(entity("port", vec![]));
        let report = analyze_config("t", &model, &ConstraintSet::new());
        assert_eq!(report.len(), 1);
        assert_eq!(report.diagnostics()[0].code(), "CM010");
        assert_eq!(report.diagnostics()[0].severity(), Severity::Error);
    }

    #[test]
    fn default_type_mismatch_is_cm011() {
        let model = single_entity_model(ConfigEntity::new(
            "mode",
            ValueType::Number,
            Mutability::Mutable,
            vec![ConfigValue::Str("fast".into())],
        ));
        let report = analyze_config("t", &model, &ConstraintSet::new());
        assert_eq!(report.diagnostics()[0].code(), "CM011");
        assert_eq!(report.diagnostics()[0].severity(), Severity::Warn);
    }

    #[test]
    fn defaults_violating_a_constraint_is_cm012() {
        let model = single_entity_model(entity(
            "port",
            vec![ConfigValue::Int(99999), ConfigValue::Int(80)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "invalid listen port",
            vec![Condition::int_outside("port", 1, 65535, 80)],
        ));
        let report = analyze_config("t", &model, &constraints);
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM012"));
    }

    #[test]
    fn unsatisfiable_domain_is_cm013() {
        let model = single_entity_model(entity(
            "mtu",
            vec![ConfigValue::Int(100), ConfigValue::Int(200)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "mtu below minimum datagram size",
            vec![Condition::int_below("mtu", 256, 1400)],
        ));
        let report = analyze_config("t", &model, &constraints);
        let codes: Vec<&str> = report.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&"CM013"), "got {codes:?}");
        // The default (first value) also violates, so CM012 fires too.
        assert!(codes.contains(&"CM012"));
    }

    #[test]
    fn satisfiable_domain_is_clean() {
        let model = single_entity_model(entity(
            "mtu",
            vec![ConfigValue::Int(1400), ConfigValue::Int(100)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "mtu below minimum datagram size",
            vec![Condition::int_below("mtu", 256, 1400)],
        ));
        assert!(analyze_config("t", &model, &constraints).is_empty());
    }

    #[test]
    fn conjunctions_are_skipped_by_cm013() {
        // Both values of `a` satisfy their condition, but the constraint
        // needs `b` too — not decidable item-locally.
        let model = single_entity_model(entity("a", vec![ConfigValue::Int(1)]));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "a and b conflict",
            vec![
                Condition::int_equals("a", 1, 0),
                Condition::int_equals("b", 1, 0),
            ],
        ));
        let report = analyze_config("t", &model, &constraints);
        assert!(!report.diagnostics().iter().any(|d| d.code() == "CM013"));
    }

    #[test]
    fn resolved_violations_are_cm014() {
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "invalid listen port",
            vec![Condition::int_outside("port", 1, 65535, 80)],
        ));
        let mut config = ResolvedConfig::new();
        config.set("port", ConfigValue::Int(0));
        let report = analyze_resolved("t", "instance:0:initial-config", &config, &constraints);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), "CM014");
        assert_eq!(d.path(), "instance:0:initial-config");

        config.set("port", ConfigValue::Int(8080));
        assert!(analyze_resolved("t", "x", &config, &constraints).is_empty());
    }
}
