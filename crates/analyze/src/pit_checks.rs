//! Checks over the parsed pit: data models, state model, session plans.

use std::collections::{BTreeSet, HashSet, VecDeque};

use cmfuzz_fuzzer::pit::PitDefinition;
use cmfuzz_fuzzer::{DataModel, Field, FieldKind, StateModel};

use crate::{Diagnostic, Report, Severity};

/// Runs every pit-level check over one subject's parsed pit.
///
/// Emitted codes: `CM001` (transition references an undefined data
/// model), `CM002` (missing initial state / dangling next-state),
/// `CM003` (unreachable state), `CM004` (data model never referenced by
/// any transition), `CM005` (`LengthOf` measures an unknown field),
/// `CM006` (duplicate model or state names).
#[must_use]
pub fn analyze_pit(subject: &str, pit: &PitDefinition) -> Report {
    let mut report = Report::new();
    check_duplicate_model_names(subject, pit, &mut report);
    for model in pit.data_models() {
        check_length_targets(subject, model, &mut report);
    }
    if let Some(states) = pit.state_model() {
        check_transition_models(subject, pit, states, &mut report);
        check_state_shape(subject, states, &mut report);
        check_reachability(subject, states, &mut report);
        check_dead_models(subject, pit, states, &mut report);
    }
    report
}

/// Checks campaign session plans against the pit: every planned message
/// must name a defined data model (`CM040`).
#[must_use]
pub fn analyze_session_plans(subject: &str, pit: &PitDefinition, plans: &[Vec<String>]) -> Report {
    let mut report = Report::new();
    for (instance, plan) in plans.iter().enumerate() {
        for name in plan {
            if pit.data_model(name).is_none() {
                report.push(Diagnostic::new(
                    "CM040",
                    Severity::Error,
                    subject,
                    &format!("instance:{instance}:plan:{name}"),
                    &format!("session plan references undefined data model \"{name}\""),
                    "name a data model defined in the pit or drop the plan entry",
                ));
            }
        }
    }
    report
}

fn check_duplicate_model_names(subject: &str, pit: &PitDefinition, report: &mut Report) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for model in pit.data_models() {
        if !seen.insert(model.name()) {
            report.push(Diagnostic::new(
                "CM006",
                Severity::Warn,
                subject,
                &format!("data:{}", model.name()),
                &format!(
                    "duplicate data model name \"{}\"; only the first definition is reachable",
                    model.name()
                ),
                "rename or remove the shadowed definition",
            ));
        }
    }
    if let Some(states) = pit.state_model() {
        let mut seen_states: BTreeSet<&str> = BTreeSet::new();
        for state in states.states() {
            if !seen_states.insert(state.name.as_str()) {
                report.push(Diagnostic::new(
                    "CM006",
                    Severity::Warn,
                    subject,
                    &format!("state:{}", state.name),
                    &format!(
                        "duplicate state name \"{}\"; only the first definition is reachable",
                        state.name
                    ),
                    "rename or remove the shadowed definition",
                ));
            }
        }
    }
}

fn check_transition_models(
    subject: &str,
    pit: &PitDefinition,
    states: &StateModel,
    report: &mut Report,
) {
    for state in states.states() {
        for (index, transition) in state.transitions.iter().enumerate() {
            if pit.data_model(&transition.input_model).is_none() {
                report.push(Diagnostic::new(
                    "CM001",
                    Severity::Error,
                    subject,
                    &format!("state:{}:transition:{index}", state.name),
                    &format!(
                        "transition references undefined data model \"{}\"",
                        transition.input_model
                    ),
                    "define the data model in the pit or point the transition at an existing one",
                ));
            }
        }
    }
}

fn check_state_shape(subject: &str, states: &StateModel, report: &mut Report) {
    if states.state_by_name(states.initial()).is_none() {
        report.push(Diagnostic::new(
            "CM002",
            Severity::Error,
            subject,
            &format!("state:{}", states.initial()),
            &format!("initial state \"{}\" is not defined", states.initial()),
            "define the initial state or change the initialState attribute",
        ));
    }
    for state in states.states() {
        for (index, transition) in state.transitions.iter().enumerate() {
            if states.state_by_name(&transition.next_state).is_none() {
                report.push(Diagnostic::new(
                    "CM002",
                    Severity::Error,
                    subject,
                    &format!("state:{}:transition:{index}", state.name),
                    &format!(
                        "transition targets undefined state \"{}\"",
                        transition.next_state
                    ),
                    "define the target state or fix the transition's next-state name",
                ));
            }
        }
    }
}

fn check_reachability(subject: &str, states: &StateModel, report: &mut Report) {
    // A missing initial state would make every state "unreachable";
    // CM002 already reports the root cause, so skip the cascade.
    if states.state_by_name(states.initial()).is_none() {
        return;
    }
    let mut reached: HashSet<&str> = HashSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    reached.insert(states.initial());
    queue.push_back(states.initial());
    while let Some(name) = queue.pop_front() {
        let Some(state) = states.state_by_name(name) else {
            continue;
        };
        for transition in &state.transitions {
            let next = transition.next_state.as_str();
            if states.state_by_name(next).is_some() && reached.insert(next) {
                queue.push_back(next);
            }
        }
    }
    for state in states.states() {
        if !reached.contains(state.name.as_str()) {
            report.push(Diagnostic::new(
                "CM003",
                Severity::Warn,
                subject,
                &format!("state:{}", state.name),
                "state is unreachable from the initial state",
                "add a transition into it or remove the state",
            ));
        }
    }
}

fn check_dead_models(subject: &str, pit: &PitDefinition, states: &StateModel, report: &mut Report) {
    let used: HashSet<&str> = states
        .states()
        .iter()
        .flat_map(|s| s.transitions.iter())
        .map(|t| t.input_model.as_str())
        .collect();
    for model in pit.data_models() {
        if !used.contains(model.name()) {
            report.push(Diagnostic::new(
                "CM004",
                Severity::Warn,
                subject,
                &format!("data:{}", model.name()),
                "data model is never rendered: no transition uses it as an input model",
                "reference it from a transition or remove it from the pit",
            ));
        }
    }
}

fn check_length_targets(subject: &str, model: &DataModel, report: &mut Report) {
    fn collect_names<'a>(fields: &'a [Field], names: &mut HashSet<&'a str>) {
        for field in fields {
            names.insert(field.name());
            match field.kind() {
                FieldKind::Block(inner) => collect_names(inner, names),
                FieldKind::Choice { options, .. } => collect_names(options, names),
                _ => {}
            }
        }
    }
    fn walk(
        subject: &str,
        model_name: &str,
        prefix: &str,
        fields: &[Field],
        names: &HashSet<&str>,
        report: &mut Report,
    ) {
        for field in fields {
            let path = if prefix.is_empty() {
                field.name().to_owned()
            } else {
                format!("{prefix}.{}", field.name())
            };
            match field.kind() {
                FieldKind::LengthOf { of, .. } if !names.contains(of.as_str()) => {
                    report.push(Diagnostic::new(
                        "CM005",
                        Severity::Lint,
                        subject,
                        &format!("data:{model_name}:field:{path}"),
                        &format!("LengthOf measures unknown field \"{of}\" (renders as zero)"),
                        "point it at a field defined in this data model",
                    ));
                }
                FieldKind::Block(inner) => {
                    walk(subject, model_name, &path, inner, names, report);
                }
                FieldKind::Choice { options, .. } => {
                    walk(subject, model_name, &path, options, names, report);
                }
                _ => {}
            }
        }
    }
    let mut names = HashSet::new();
    collect_names(model.fields(), &mut names);
    walk(subject, model.name(), "", model.fields(), &names, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_fuzzer::{Endian, State, Transition};

    fn model(name: &str) -> DataModel {
        DataModel::new(name).field(Field::uint("byte", 8, 0))
    }

    fn pit_with_states(states: StateModel) -> PitDefinition {
        PitDefinition::new(vec![model("Connect"), model("Publish")], Some(states))
    }

    #[test]
    fn clean_pit_produces_no_diagnostics() {
        let states = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Connect", "Up")))
            .state(State::new("Up").transition(Transition::new("Publish", "Up")));
        let report = analyze_pit("t", &pit_with_states(states));
        assert!(report.is_empty(), "unexpected: {}", report.render_text());
    }

    #[test]
    fn dangling_input_model_is_cm001() {
        let states = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Ghost", "Init")));
        let report = analyze_pit(
            "t",
            &PitDefinition::new(vec![model("Connect")], Some(states)),
        );
        let codes: Vec<&str> = report.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&"CM001"), "got {codes:?}");
        // "Connect" is now dead, so CM004 also fires — but no CM002/3.
        assert!(!codes.contains(&"CM002"));
        assert!(!codes.contains(&"CM003"));
    }

    #[test]
    fn missing_initial_and_dangling_next_state_are_cm002() {
        let ghost_initial = StateModel::new("m", "Nowhere")
            .state(State::new("Init").transition(Transition::new("Connect", "Init")));
        let report = analyze_pit("t", &pit_with_states(ghost_initial));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code() == "CM002" && d.message().contains("initial state")));

        let dangling = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Connect", "Ghost")));
        let report = analyze_pit("t", &pit_with_states(dangling));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code() == "CM002" && d.message().contains("undefined state")));
    }

    #[test]
    fn unreachable_state_is_cm003() {
        let states = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Connect", "Init")))
            .state(State::new("Orphan").transition(Transition::new("Publish", "Init")));
        let report = analyze_pit("t", &pit_with_states(states));
        let hits: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code() == "CM003")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path(), "state:Orphan");
    }

    #[test]
    fn dead_data_model_is_cm004_only_with_a_state_model() {
        let states = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Connect", "Init")));
        let report = analyze_pit("t", &pit_with_states(states));
        let hits: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code() == "CM004")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path(), "data:Publish");

        // Without a state model every data model is driven directly.
        let free = PitDefinition::new(vec![model("Connect"), model("Publish")], None);
        assert!(analyze_pit("t", &free).is_empty());
    }

    #[test]
    fn dangling_length_target_is_cm005_lint() {
        let broken = DataModel::new("Frame")
            .field(Field::length_of("len", "payload", 16, Endian::Big))
            .field(Field::bytes("body", b"x"));
        let report = analyze_pit("t", &PitDefinition::new(vec![broken], None));
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), "CM005");
        assert_eq!(d.severity(), Severity::Lint);
        assert!(d.path().contains("field:len"));
    }

    #[test]
    fn length_targets_resolve_inside_blocks_and_choices() {
        let nested = DataModel::new("Frame")
            .field(Field::length_of("len", "inner", 16, Endian::Big))
            .field(Field::block(
                "body",
                vec![Field::choice(
                    "variant",
                    vec![Field::bytes("inner", b"x"), Field::bytes("other", b"y")],
                )],
            ));
        assert!(analyze_pit("t", &PitDefinition::new(vec![nested], None)).is_empty());
    }

    #[test]
    fn duplicate_names_are_cm006() {
        let dup_models = PitDefinition::new(vec![model("A"), model("A")], None);
        let report = analyze_pit("t", &dup_models);
        assert_eq!(report.len(), 1);
        assert_eq!(report.diagnostics()[0].code(), "CM006");

        let dup_states = StateModel::new("m", "Init")
            .state(State::new("Init").transition(Transition::new("Connect", "Init")))
            .state(State::new("Init"));
        let report = analyze_pit(
            "t",
            &PitDefinition::new(vec![model("Connect")], Some(dup_states)),
        );
        assert!(report.diagnostics().iter().any(|d| d.code() == "CM006"));
    }

    #[test]
    fn session_plans_check_is_cm040() {
        let pit = PitDefinition::new(vec![model("Connect")], None);
        let plans = vec![
            vec!["Connect".to_owned()],
            vec!["Connect".to_owned(), "Ghost".to_owned()],
        ];
        let report = analyze_session_plans("t", &pit, &plans);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), "CM040");
        assert_eq!(d.path(), "instance:1:plan:Ghost");
    }
}
