//! Static verification of CMFuzz models (`cmfuzz-analyze`).
//!
//! CMFuzz's contribution rides on three hand-authored models — the data
//! model and state model (the pit) and the extracted configuration model
//! — plus a relation graph derived from startup-coverage probes. A
//! mistake in any of them historically surfaced *mid-campaign*: a
//! dangling model reference as a wasted session, a contradictory
//! configuration as a boot-time `ConfigConflict`, a bad partition as an
//! instance silently burning its whole budget on a fixed configuration.
//!
//! This crate walks those models *statically* and emits structured
//! [`Diagnostic`]s: a stable `CM0xx` code, a [`Severity`], a source
//! location (model name plus item path), and a one-line fix hint. It is
//! surfaced three ways:
//!
//! - the `cmfuzz-lint` binary (text or `--format json`, exit code = max
//!   severity),
//! - the campaign preflight in the core crate (`CampaignError::Preflight`
//!   aborts on errors before any instance starts),
//! - per-diagnostic telemetry counters.
//!
//! # Check catalogue
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | CM001 | Error | transition references an undefined data model |
//! | CM002 | Error | missing initial state / dangling next-state |
//! | CM003 | Warn  | state unreachable from the initial state |
//! | CM004 | Warn  | data model never rendered by any transition |
//! | CM005 | Lint  | `LengthOf` measures an unknown field |
//! | CM006 | Warn  | duplicate data-model or state names |
//! | CM010 | Error | config item with an empty value domain |
//! | CM011 | Warn  | default value type mismatches the item type |
//! | CM012 | Error | model defaults violate a startup constraint |
//! | CM013 | Error | value domain statically unsatisfiable under a constraint |
//! | CM014 | Error | concrete configuration violates a startup constraint |
//! | CM020 | Error | relation node/edge references a non-mutable or unknown item |
//! | CM021 | Lint  | relation edge closes a cycle |
//! | CM030 | Warn  | partition leaves an instance with zero mutable items |
//! | CM031 | Error | config item assigned to multiple instances |
//! | CM032 | Error | partition references an unknown config item |
//! | CM040 | Error | session plan references an undefined data model |
//! | CM050 | Error | fleet schedule reuses a campaign id |
//! | CM051 | Warn  | fleet campaign has a zero budget |
//! | CM052 | Error | fleet subject's pit does not parse |
//! | CM060 | Warn  | branch statically dead in a campaign partition |
//! | CM061 | Error | branch statically dead under every configuration |
//! | CM062 | Error | branch guard references an unknown config item |
//! | CM063 | Error | branch guard index outside the branch space |
//! | CM064 | Warn  | branch reachability not certified (solver limit) |
//!
//! The `CM05x` fleet-schedule checks are emitted by the core crate's
//! `preflight::analyze_fleet_schedule` (the fleet schedule types live
//! above this crate in the dependency graph). The `CM06x` reachability
//! checks come from [`analyze_reachability`] in this crate; the core
//! crate's preflight runs them per campaign partition.
//!
//! The machine-readable twin of this table is [`CATALOGUE`]; a golden
//! test keeps the `DESIGN.md` catalogue, this doc table, and the
//! constant in lockstep.
//!
//! # Examples
//!
//! ```
//! use cmfuzz_analyze::analyze_pit;
//! use cmfuzz_fuzzer::pit::PitDefinition;
//! use cmfuzz_fuzzer::{DataModel, Field, State, StateModel, Transition};
//!
//! let pit = PitDefinition::new(
//!     vec![DataModel::new("Connect").field(Field::uint("op", 8, 1))],
//!     Some(
//!         StateModel::new("demo", "Init")
//!             .state(State::new("Init").transition(Transition::new("Ghost", "Init"))),
//!     ),
//! );
//! let report = analyze_pit("demo", &pit);
//! assert!(report.diagnostics().iter().any(|d| d.code() == "CM001"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config_checks;
mod diag;
mod graph_checks;
mod pit_checks;
mod reach;
mod solve;

pub use config_checks::{analyze_config, analyze_resolved, single_entity_model};
pub use diag::{Diagnostic, Report, Severity, DIAGNOSTICS_SCHEMA};
pub use graph_checks::{analyze_graph, analyze_partitions, GraphView, PartitionView};
pub use pit_checks::{analyze_pit, analyze_session_plans};
pub use reach::{analyze_reachability, BranchReach, ReachAnalysis, ReachSpace, ReachStatus};

use cmfuzz_config_model::{ConfigModel, ConstraintSet};
use cmfuzz_fuzzer::pit::PitDefinition;

/// The authoritative check catalogue: every stable code the analysis
/// subsystem (this crate plus the core crate's fleet preflight) can
/// emit, with its severity and a one-line meaning. The `DESIGN.md`
/// catalogue table is validated against this constant by a golden test.
pub const CATALOGUE: &[(&str, Severity, &str)] = &[
    (
        "CM001",
        Severity::Error,
        "transition references an undefined data model",
    ),
    (
        "CM002",
        Severity::Error,
        "missing initial state / dangling next-state",
    ),
    (
        "CM003",
        Severity::Warn,
        "state unreachable from the initial state",
    ),
    (
        "CM004",
        Severity::Warn,
        "data model never rendered by any transition",
    ),
    (
        "CM005",
        Severity::Lint,
        "`LengthOf` measures an unknown field",
    ),
    (
        "CM006",
        Severity::Warn,
        "duplicate data-model or state names",
    ),
    (
        "CM010",
        Severity::Error,
        "config item with an empty value domain",
    ),
    (
        "CM011",
        Severity::Warn,
        "default value type mismatches the item type",
    ),
    (
        "CM012",
        Severity::Error,
        "model defaults violate a startup constraint",
    ),
    (
        "CM013",
        Severity::Error,
        "value domain statically unsatisfiable under a constraint",
    ),
    (
        "CM014",
        Severity::Error,
        "concrete configuration violates a startup constraint",
    ),
    (
        "CM020",
        Severity::Error,
        "relation node/edge references a non-mutable or unknown item",
    ),
    ("CM021", Severity::Lint, "relation edge closes a cycle"),
    (
        "CM030",
        Severity::Warn,
        "partition leaves an instance with zero mutable items",
    ),
    (
        "CM031",
        Severity::Error,
        "config item assigned to multiple instances",
    ),
    (
        "CM032",
        Severity::Error,
        "partition references an unknown config item",
    ),
    (
        "CM040",
        Severity::Error,
        "session plan references an undefined data model",
    ),
    (
        "CM050",
        Severity::Error,
        "fleet schedule reuses a campaign id",
    ),
    ("CM051", Severity::Warn, "fleet campaign has a zero budget"),
    (
        "CM052",
        Severity::Error,
        "fleet subject's pit does not parse",
    ),
    (
        "CM060",
        Severity::Warn,
        "branch statically dead in a campaign partition",
    ),
    (
        "CM061",
        Severity::Error,
        "branch statically dead under every configuration",
    ),
    (
        "CM062",
        Severity::Error,
        "branch guard references an unknown config item",
    ),
    (
        "CM063",
        Severity::Error,
        "branch guard index outside the branch space",
    ),
    (
        "CM064",
        Severity::Warn,
        "branch reachability not certified (solver limit)",
    ),
];

/// Runs the pit- and configuration-level checks for one subject and
/// returns a canonically-sorted report (graph and partition checks need
/// scheduler state and run separately via [`analyze_graph`] /
/// [`analyze_partitions`]).
#[must_use]
pub fn analyze_models(
    subject: &str,
    pit: &PitDefinition,
    model: &ConfigModel,
    constraints: &ConstraintSet,
) -> Report {
    let mut report = analyze_pit(subject, pit);
    report.merge(analyze_config(subject, model, constraints));
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmfuzz_config_model::{
        Condition, ConfigConstraint, ConfigEntity, ConfigValue, Mutability, ValueType,
    };
    use cmfuzz_fuzzer::{DataModel, Field, State, StateModel, Transition};

    #[test]
    fn analyze_models_merges_and_sorts() {
        let pit = PitDefinition::new(
            vec![DataModel::new("Connect").field(Field::uint("op", 8, 1))],
            Some(
                StateModel::new("demo", "Init")
                    .state(State::new("Init").transition(Transition::new("Ghost", "Init"))),
            ),
        );
        let model = single_entity_model(ConfigEntity::new(
            "port",
            ValueType::Number,
            Mutability::Mutable,
            vec![ConfigValue::Int(0)],
        ));
        let constraints = ConstraintSet::new().with(ConfigConstraint::new(
            "invalid listen port",
            vec![Condition::int_outside("port", 1, 65535, 0)],
        ));
        let report = analyze_models("demo", &pit, &model, &constraints);
        let codes: Vec<&str> = report.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&"CM001"), "pit checks ran: {codes:?}");
        assert!(codes.contains(&"CM012"), "config checks ran: {codes:?}");
        let mut sorted = report.clone();
        sorted.sort();
        assert_eq!(sorted, report, "analyze_models returns sorted output");
    }

    #[test]
    fn catalogue_is_sorted_unique_and_complete() {
        let codes: Vec<&str> = CATALOGUE.iter().map(|(code, _, _)| *code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "catalogue codes are sorted and unique");
        for family in ["CM060", "CM061", "CM062", "CM063", "CM064"] {
            assert!(
                codes.contains(&family),
                "missing reachability code {family}"
            );
        }
    }
}
